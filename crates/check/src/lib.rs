//! Independent verifier for AQUA split reassembly certificates.
//!
//! The engine's `split` operator decomposes a tree extent into a
//! context, a matched piece, and cut-off descendant subtrees, and can
//! emit a certificate: canonical bytes + SHA-256 of every piece, the
//! concatenation labels, and the merkle root of the extent the match
//! came from. This crate re-verifies that claim **from the published
//! specification alone** — it depends on no engine crate, carries its
//! own SHA-256, parser, reassembly, and merkle fold — so a bug in the
//! engine's hashing or concatenation cannot vouch for itself.
//!
//! Verification steps, per certificate:
//!
//! 1. every piece's hash is SHA-256 of its canonical bytes;
//! 2. the pieces decode as well-formed trees (preorder + child counts);
//! 3. reassembly `context ∘_α matched ∘_{cut_i} descendant_i` (where
//!    `∘_l` replaces *every* hole labeled `l`) yields a tree;
//! 4. the reassembled tree's interval numbering, leaf hashes, and
//!    merkle fold reproduce the certified extent root.
//!
//! ## The specification being checked against
//!
//! Canonical tree bytes: `nnodes:u32le`, then per node in preorder its
//! payload bytes and `nchildren:u32le`. Payload bytes are either a cell
//! — `0x01 oid:u64le class:u32le nvals:u32le value*` (a dangling OID is
//! class `u32::MAX` with zero values) — or a hole, `0x02 len:u32le
//! label`. Values: `0x00` null; `0x01 b` bool; `0x02 i64le`;
//! `0x03 f64-bits-le`; `0x04 len:u32le utf8`; `0x05 oid:u64le`.
//!
//! Tree leaf hash: `SHA256(0x00 "TL" pre:u32le post:u32le payload)`
//! where `(pre, post)` are the node's interval numbers from a single
//! clock starting at 0 (`entry(n) = clock++`, children in order,
//! `exit(n) = clock++`), leaves in preorder. Merkle fold: pairwise
//! `SHA256(0x01 left right)`, an odd last node promoted unchanged; an
//! empty column folds to `SHA256("AQUA-EMPTY")`.

pub mod sha;

use sha::sha256;

// ---------------------------------------------------------------------
// Certificate parsing
// ---------------------------------------------------------------------

/// One piece: its role, claimed hash, and canonical bytes.
#[derive(Debug, Clone)]
pub struct Piece {
    /// `"context"`, `"matched"`, or `"descendant"`.
    pub role: String,
    /// The claimed SHA-256 of `bytes`.
    pub hash: [u8; 32],
    /// Canonical tree bytes.
    pub bytes: Vec<u8>,
}

/// A parsed certificate.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Extent label, e.g. `tree:doc`.
    pub extent: String,
    /// Claimed merkle root of the extent.
    pub extent_root: [u8; 32],
    /// The context↔matched concatenation label (raw bytes).
    pub alpha: Vec<u8>,
    /// The matched↔descendant labels, in cut order.
    pub cuts: Vec<Vec<u8>>,
    /// Context, matched, then descendants.
    pub pieces: Vec<Piece>,
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex: {s:?}"));
    }
    s.as_bytes()
        .chunks(2)
        .map(|c| {
            let d = |b: u8| {
                (b as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("bad hex byte in {s:?}"))
            };
            Ok((d(c[0])? * 16 + d(c[1])?) as u8)
        })
        .collect()
}

fn unhex32(s: &str) -> Result<[u8; 32], String> {
    let v = unhex(s)?;
    v.try_into().map_err(|_| "hash is not 32 bytes".to_string())
}

/// Parse the `AQUA-SPLIT-CERT v1` text format.
pub fn parse(text: &str) -> Result<Certificate, String> {
    let mut lines = text.lines();
    if lines.next() != Some("AQUA-SPLIT-CERT v1") {
        return Err("missing AQUA-SPLIT-CERT v1 header".into());
    }
    let mut field = |key: &str| -> Result<String, String> {
        lines
            .next()
            .and_then(|l| l.strip_prefix(key))
            .map(|v| v.trim().to_string())
            .ok_or_else(|| format!("missing {key} line"))
    };
    let extent = field("extent:")?;
    let extent_root = unhex32(&field("extent-root:")?)?;
    let alpha = unhex(&field("alpha:")?)?;
    let cuts_raw = field("cuts:")?;
    let cuts = if cuts_raw == "-" {
        Vec::new()
    } else {
        cuts_raw.split(',').map(unhex).collect::<Result<_, _>>()?
    };
    let mut pieces = Vec::new();
    for line in lines {
        if line == "end" {
            return Ok(Certificate {
                extent,
                extent_root,
                alpha,
                cuts,
                pieces,
            });
        }
        let rest = line
            .strip_prefix("piece ")
            .ok_or_else(|| format!("expected piece or end, got {line:?}"))?;
        let mut parts = rest.splitn(3, ' ');
        let role = parts.next().unwrap_or_default().to_string();
        if !matches!(role.as_str(), "context" | "matched" | "descendant") {
            return Err(format!("unknown piece role {role:?}"));
        }
        let hash = unhex32(parts.next().ok_or("piece line missing hash")?)?;
        let bytes = unhex(parts.next().ok_or("piece line missing tree bytes")?)?;
        pieces.push(Piece { role, hash, bytes });
    }
    Err("missing end line".into())
}

// ---------------------------------------------------------------------
// Canonical tree decoding
// ---------------------------------------------------------------------

/// A decoded tree node: verbatim payload bytes plus child links.
#[derive(Debug, Clone)]
pub struct Node {
    /// The payload bytes exactly as serialized (they feed leaf hashes).
    pub payload: Vec<u8>,
    /// Children, in order, as indices into [`DecodedTree::nodes`].
    pub children: Vec<usize>,
}

/// A tree decoded from canonical bytes. Arena indices are arbitrary;
/// only `root` + `children` define the shape.
#[derive(Debug, Clone)]
pub struct DecodedTree {
    /// The node arena.
    pub nodes: Vec<Node>,
    /// Index of the root node.
    pub root: usize,
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.b.len() {
            return Err(format!("truncated at byte {} (wanted {n} more)", self.pos));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// Consume one payload (cell or hole) from `cur`, returning its bytes.
fn take_payload(cur: &mut Cursor) -> Result<Vec<u8>, String> {
    let start = cur.pos;
    match cur.u8()? {
        0x01 => {
            cur.take(8)?; // oid
            cur.take(4)?; // class
            let nvals = cur.u32()?;
            for _ in 0..nvals {
                match cur.u8()? {
                    0x00 => {}
                    0x01 => {
                        cur.take(1)?;
                    }
                    0x02 | 0x03 => {
                        cur.take(8)?;
                    }
                    0x04 => {
                        let len = cur.u32()? as usize;
                        cur.take(len)?;
                    }
                    0x05 => {
                        cur.take(8)?;
                    }
                    t => return Err(format!("unknown value tag 0x{t:02x}")),
                }
            }
        }
        0x02 => {
            let len = cur.u32()? as usize;
            cur.take(len)?;
        }
        t => return Err(format!("unknown payload tag 0x{t:02x}")),
    }
    Ok(cur.b[start..cur.pos].to_vec())
}

/// Decode canonical tree bytes (preorder payloads + child counts).
pub fn decode_tree(bytes: &[u8]) -> Result<DecodedTree, String> {
    let mut cur = Cursor { b: bytes, pos: 0 };
    let nnodes = cur.u32()? as usize;
    if nnodes == 0 {
        return Err("empty tree".into());
    }
    if nnodes > (1 << 26) {
        return Err(format!("implausible node count {nnodes}"));
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(nnodes);
    // (node index, children still to attach)
    let mut stack: Vec<(usize, u32)> = Vec::new();
    for _ in 0..nnodes {
        let payload = take_payload(&mut cur)?;
        let nchildren = cur.u32()?;
        let idx = nodes.len();
        nodes.push(Node {
            payload,
            children: Vec::with_capacity(nchildren as usize),
        });
        match stack.last_mut() {
            Some(top) => {
                top.1 -= 1;
                let parent = top.0;
                nodes[parent].children.push(idx);
            }
            None if idx == 0 => {}
            None => return Err("node after the root's subtree closed".into()),
        }
        stack.push((idx, nchildren));
        while matches!(stack.last(), Some(&(_, 0))) {
            stack.pop();
        }
    }
    if !stack.is_empty() {
        return Err("child counts exceed node count".into());
    }
    if cur.pos != bytes.len() {
        return Err(format!("{} trailing bytes", bytes.len() - cur.pos));
    }
    Ok(DecodedTree { nodes, root: 0 })
}

/// The hole label of a node's payload, if it is a hole.
fn hole_label(payload: &[u8]) -> Option<&[u8]> {
    if payload.first() == Some(&0x02) {
        Some(&payload[5..])
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Reassembly
// ---------------------------------------------------------------------

/// `a ∘_label b`: copy `a`, replacing every hole labeled `label` by a
/// copy of `b`. Iterative — certificate trees can be deep.
pub fn graft(a: &DecodedTree, label: &[u8], b: &DecodedTree) -> DecodedTree {
    let mut nodes = Vec::with_capacity(a.nodes.len() + b.nodes.len());
    let root = copy_replacing(a, a.root, Some((label, b)), &mut nodes);
    DecodedTree { nodes, root }
}

/// Copy the subtree of `src` at `from` into `out`, substituting holes
/// when `repl` is set. Returns the copy's index. Post-order iterative:
/// children are copied before their parent is allocated.
fn copy_replacing(
    src: &DecodedTree,
    from: usize,
    repl: Option<(&[u8], &DecodedTree)>,
    out: &mut Vec<Node>,
) -> usize {
    // Explicit two-phase stack: Visit expands, Build pops its
    // children's finished indices off `done`.
    enum Step {
        Visit(usize),
        Build(usize),
    }
    let mut stack = vec![Step::Visit(from)];
    let mut done: Vec<usize> = Vec::new();
    while let Some(step) = stack.pop() {
        match step {
            Step::Visit(n) => {
                if let Some((label, b)) = repl {
                    if hole_label(&src.nodes[n].payload) == Some(label) {
                        let idx = copy_replacing(b, b.root, None, out);
                        done.push(idx);
                        continue;
                    }
                }
                stack.push(Step::Build(n));
                for &k in src.nodes[n].children.iter().rev() {
                    stack.push(Step::Visit(k));
                }
            }
            Step::Build(n) => {
                let nk = src.nodes[n].children.len();
                let children = done.split_off(done.len() - nk);
                let idx = out.len();
                out.push(Node {
                    payload: src.nodes[n].payload.clone(),
                    children,
                });
                done.push(idx);
            }
        }
    }
    done.pop().expect("copy produced a root")
}

// ---------------------------------------------------------------------
// Hashing the reassembled tree
// ---------------------------------------------------------------------

/// Preorder node indices of `t`.
pub fn preorder(t: &DecodedTree) -> Vec<usize> {
    let mut order = Vec::with_capacity(t.nodes.len());
    let mut stack = vec![t.root];
    while let Some(n) = stack.pop() {
        order.push(n);
        for &k in t.nodes[n].children.iter().rev() {
            stack.push(k);
        }
    }
    order
}

/// Interval numbers `(entry, exit)` per arena index: one clock from 0,
/// `entry(n) = clock++`, children in order, `exit(n) = clock++`.
pub fn intervals(t: &DecodedTree) -> Vec<(u32, u32)> {
    let mut iv = vec![(0u32, 0u32); t.nodes.len()];
    let mut clock = 0u32;
    enum Ev {
        Enter(usize),
        Exit(usize),
    }
    let mut stack = vec![Ev::Enter(t.root)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(n) => {
                iv[n].0 = clock;
                clock += 1;
                stack.push(Ev::Exit(n));
                for &k in t.nodes[n].children.iter().rev() {
                    stack.push(Ev::Enter(k));
                }
            }
            Ev::Exit(n) => {
                iv[n].1 = clock;
                clock += 1;
            }
        }
    }
    iv
}

/// Leaf-hash column of `t`: preorder, each leaf
/// `SHA256(0x00 "TL" pre post payload)`.
pub fn tree_leaves(t: &DecodedTree) -> Vec<[u8; 32]> {
    let iv = intervals(t);
    preorder(t)
        .into_iter()
        .map(|n| {
            let mut b = Vec::with_capacity(11 + t.nodes[n].payload.len());
            b.push(0x00);
            b.extend_from_slice(b"TL");
            b.extend_from_slice(&iv[n].0.to_le_bytes());
            b.extend_from_slice(&iv[n].1.to_le_bytes());
            b.extend_from_slice(&t.nodes[n].payload);
            sha256(&b)
        })
        .collect()
}

/// Merkle fold: pairwise `SHA256(0x01 left right)`, odd last promoted.
pub fn merkle_root(leaves: &[[u8; 32]]) -> [u8; 32] {
    if leaves.is_empty() {
        return sha256(b"AQUA-EMPTY");
    }
    let mut level = leaves.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    let mut b = Vec::with_capacity(65);
                    b.push(0x01);
                    b.extend_from_slice(&pair[0]);
                    b.extend_from_slice(&pair[1]);
                    sha256(&b)
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    level[0]
}

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

/// What [`verify`] concluded. `failures` empty ⇔ the certificate holds.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Extent label from the certificate.
    pub extent: String,
    /// Piece count.
    pub pieces: usize,
    /// Node count of the reassembled tree (0 if reassembly failed).
    pub nodes: usize,
    /// Every independent check that failed, in check order.
    pub failures: Vec<String>,
}

impl Report {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Verify a certificate end to end. `Err` means the text is not even a
/// parseable certificate; `Ok` with failures means it parsed but lied.
pub fn verify(text: &str) -> Result<Report, String> {
    let cert = parse(text)?;
    let mut rep = Report {
        extent: cert.extent.clone(),
        pieces: cert.pieces.len(),
        ..Report::default()
    };

    // 1. Hashes vouch for the bytes.
    for (i, p) in cert.pieces.iter().enumerate() {
        if sha256(&p.bytes) != p.hash {
            rep.failures
                .push(format!("piece {i} ({}) hash mismatch", p.role));
        }
    }

    // 2. Structure: tree extent, one context, one matched, one
    //    descendant per cut, in order.
    if !cert.extent.starts_with("tree:") {
        rep.failures
            .push(format!("unsupported extent kind {:?}", cert.extent));
    }
    let roles: Vec<&str> = cert.pieces.iter().map(|p| p.role.as_str()).collect();
    let expected_roles: Vec<&str> = ["context", "matched"]
        .into_iter()
        .chain(std::iter::repeat_n("descendant", cert.cuts.len()))
        .collect();
    if roles != expected_roles {
        rep.failures.push(format!(
            "piece roles {roles:?} do not match cuts (expected {expected_roles:?})"
        ));
        return Ok(rep);
    }

    // 3. Decode and reassemble.
    let mut trees = Vec::with_capacity(cert.pieces.len());
    for (i, p) in cert.pieces.iter().enumerate() {
        match decode_tree(&p.bytes) {
            Ok(t) => trees.push(t),
            Err(e) => {
                rep.failures
                    .push(format!("piece {i} ({}) malformed: {e}", p.role));
                return Ok(rep);
            }
        }
    }
    let mut acc = graft(&trees[0], &cert.alpha, &trees[1]);
    for (label, desc) in cert.cuts.iter().zip(&trees[2..]) {
        acc = graft(&acc, label, desc);
    }
    rep.nodes = acc.nodes.len();

    // 4. The reassembled tree reproduces the extent root.
    let root = merkle_root(&tree_leaves(&acc));
    if root != cert.extent_root {
        let hex: String = root.iter().map(|b| format!("{b:02x}")).collect();
        rep.failures.push(format!(
            "reassembled root {hex} does not match the certified extent root"
        ));
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-build canonical bytes for a hole node.
    fn hole(label: &[u8], nchildren: u32) -> Vec<u8> {
        let mut b = vec![0x02];
        b.extend_from_slice(&(label.len() as u32).to_le_bytes());
        b.extend_from_slice(label);
        b.extend_from_slice(&nchildren.to_le_bytes());
        b
    }

    /// Canonical bytes for a dangling-OID cell node.
    fn cell(oid: u64, nchildren: u32) -> Vec<u8> {
        let mut b = vec![0x01];
        b.extend_from_slice(&oid.to_le_bytes());
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        b.extend_from_slice(&0u32.to_le_bytes());
        b.extend_from_slice(&nchildren.to_le_bytes());
        b
    }

    fn tree_bytes(nodes: &[Vec<u8>]) -> Vec<u8> {
        let mut b = (nodes.len() as u32).to_le_bytes().to_vec();
        for n in nodes {
            b.extend_from_slice(n);
        }
        b
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_tree(&[]).is_err());
        assert!(decode_tree(&0u32.to_le_bytes()).is_err(), "empty tree");
        // Claimed 2 nodes, one present.
        let mut b = 2u32.to_le_bytes().to_vec();
        b.extend_from_slice(&cell(1, 0));
        assert!(decode_tree(&b).is_err());
        // Trailing garbage.
        let mut b = tree_bytes(&[cell(1, 0)]);
        b.push(0xff);
        assert!(decode_tree(&b).is_err());
        // Two roots: child count 0 on the first of two nodes.
        let b = tree_bytes(&[cell(1, 0), cell(2, 0)]);
        assert!(decode_tree(&b).is_err());
    }

    #[test]
    fn decode_roundtrips_shape() {
        // a(b(d f) c) — a has 2 children, b has 2.
        let b = tree_bytes(&[cell(0, 2), cell(1, 2), cell(2, 0), cell(3, 0), cell(4, 0)]);
        let t = decode_tree(&b).unwrap();
        assert_eq!(t.nodes.len(), 5);
        assert_eq!(t.nodes[t.root].children.len(), 2);
        let b_node = t.nodes[t.root].children[0];
        assert_eq!(t.nodes[b_node].children.len(), 2);
        // Preorder is arena order here (decode is preorder).
        assert_eq!(preorder(&t), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn intervals_follow_the_single_clock() {
        // a(b c): a=(0,5), b=(1,2), c=(3,4).
        let t = decode_tree(&tree_bytes(&[cell(0, 2), cell(1, 0), cell(2, 0)])).unwrap();
        assert_eq!(intervals(&t), vec![(0, 5), (1, 2), (3, 4)]);
    }

    #[test]
    fn graft_replaces_every_matching_hole() {
        // a(@x b @x) grafted with leaf c: both @x holes replaced.
        let host = decode_tree(&tree_bytes(&[
            cell(0, 3),
            hole(b"x", 0),
            cell(1, 0),
            hole(b"x", 0),
        ]))
        .unwrap();
        let sub = decode_tree(&tree_bytes(&[cell(9, 0)])).unwrap();
        let joined = graft(&host, b"x", &sub);
        assert_eq!(joined.nodes.len(), 4);
        let kids = &joined.nodes[joined.root].children;
        let c9 = cell(9, 0);
        let c9_payload = &c9[..c9.len() - 4]; // strip the child count
        assert_eq!(joined.nodes[kids[0]].payload, c9_payload);
        assert_eq!(joined.nodes[kids[2]].payload, joined.nodes[kids[0]].payload);
        // An unrelated label is untouched.
        let untouched = graft(&host, b"y", &sub);
        assert_eq!(untouched.nodes.len(), 4);
        assert!(
            hole_label(&untouched.nodes[untouched.nodes[untouched.root].children[0]].payload)
                .is_some()
        );
    }

    #[test]
    fn verify_accepts_a_true_certificate_and_rejects_tampering() {
        // Original tree a(b c); split b out: context a(@a c),
        // matched b, no cuts.
        let full = decode_tree(&tree_bytes(&[cell(0, 2), cell(1, 0), cell(2, 0)])).unwrap();
        let root = merkle_root(&tree_leaves(&full));
        let hexs = |b: &[u8]| -> String { b.iter().map(|x| format!("{x:02x}")).collect() };
        let context = tree_bytes(&[cell(0, 2), hole(b"a", 0), cell(2, 0)]);
        let matched = tree_bytes(&[cell(1, 0)]);
        let text = format!(
            "AQUA-SPLIT-CERT v1\nextent: tree:t\nextent-root: {}\nalpha: {}\ncuts: -\n\
             piece context {} {}\npiece matched {} {}\nend\n",
            hexs(&root),
            hexs(b"a"),
            hexs(&sha256(&context)),
            hexs(&context),
            hexs(&sha256(&matched)),
            hexs(&matched),
        );
        let rep = verify(&text).unwrap();
        assert!(rep.ok(), "true certificate rejected: {:?}", rep.failures);
        assert_eq!(rep.nodes, 3);

        // Tamper 1: flip a piece hash → hash mismatch.
        let bad_hash = text.replacen(&hexs(&sha256(&context)), &hexs(&sha256(b"x")), 1);
        assert!(!verify(&bad_hash).unwrap().ok());

        // Tamper 2: claim a different extent root → reassembly mismatch.
        let bad_root = text.replacen(&hexs(&root), &hexs(&sha256(b"lie")), 1);
        let rep = verify(&bad_root).unwrap();
        assert!(!rep.ok());
        assert!(
            rep.failures[0].contains("extent root"),
            "{:?}",
            rep.failures
        );

        // Tamper 3: swap the matched piece for a different subtree with
        // a correct hash — bytes and hashes cohere, reassembly does not.
        let other = tree_bytes(&[cell(7, 0)]);
        let forged = text.replacen(
            &format!("{} {}", hexs(&sha256(&matched)), hexs(&matched)),
            &format!("{} {}", hexs(&sha256(&other)), hexs(&other)),
            1,
        );
        let rep = verify(&forged).unwrap();
        assert!(!rep.ok());
        assert!(
            rep.failures[0].contains("extent root"),
            "{:?}",
            rep.failures
        );

        // Garbage is a parse error, not a verdict.
        assert!(verify("not a cert").is_err());
    }
}
