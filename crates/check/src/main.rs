//! `aqua-check` — verify AQUA split reassembly certificates.
//!
//! Usage: `aqua-check CERT-FILE...`
//!
//! Each file is parsed and verified independently of the engine that
//! emitted it. Exit status: 0 if every certificate holds, 1 if any
//! fails verification or cannot be read/parsed.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: aqua-check CERT-FILE...");
        return ExitCode::from(2);
    }
    let mut all_ok = true;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                println!("{path}: UNREADABLE ({e})");
                all_ok = false;
                continue;
            }
        };
        match aqua_check::verify(&text) {
            Ok(rep) if rep.ok() => {
                println!(
                    "{path}: OK ({} pieces reassemble {} nodes of {})",
                    rep.pieces, rep.nodes, rep.extent
                );
            }
            Ok(rep) => {
                println!("{path}: FAIL ({})", rep.extent);
                for f in &rep.failures {
                    println!("  - {f}");
                }
                all_ok = false;
            }
            Err(e) => {
                println!("{path}: UNPARSEABLE ({e})");
                all_ok = false;
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
