//! NFA simulation and parse extraction.
//!
//! [`matches_exact`] / [`accepting_ends`] are a Pike-style thread
//! simulation: O(input × states) with no backtracking, which is what
//! keeps list-pattern matching tractable (the paper chose regular
//! expressions for exactly this property, §3.1). [`find_one_path`] and
//! [`enumerate_paths`] recover *parses* — which input position was
//! consumed by which pattern leaf — which the match layer turns into
//! prune extents and concatenation-point cuts (§3.4–3.5).
//!
//! Symbol tests are a callback: `test(leaf, pos)` answers "does input
//! element `pos` match interned leaf `leaf`?". For list patterns this is
//! an alphabet-predicate evaluation; for tree child lists it is a
//! recursive, memoized tree-pattern match.
//!
//! Every loop and recursion here accounts work against an optional
//! [`ExecGuard`] (the `*_guarded` variants), so runaway patterns
//! surface as [`GuardError`]s instead of hangs. The unguarded functions
//! are thin wrappers running with no guard.

use std::collections::HashSet;

use aqua_guard::{ExecGuard, GuardError};

use crate::nfa::{LeafId, Nfa, State, StateId};

/// Unwrap a guard-fallible result that ran with no guard installed.
pub(crate) fn infallible<T>(r: Result<T, GuardError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => unreachable!("guardless execution cannot trip a guard: {e}"),
    }
}

/// ε-closure insertion with duplicate suppression. A state is marked
/// when its `seen` slot holds the current generation, so a caller
/// starts a fresh closure round by bumping the generation instead of
/// clearing the whole array.
fn add_state(nfa: &Nfa, id: StateId, set: &mut Vec<StateId>, seen: &mut [u64], generation: u64) {
    if seen[id.0 as usize] == generation {
        return;
    }
    seen[id.0 as usize] = generation;
    match nfa.state(id) {
        State::Eps(next) => add_state(nfa, *next, set, seen, generation),
        State::Split(a, b) => {
            add_state(nfa, *a, set, seen, generation);
            add_state(nfa, *b, set, seen, generation);
        }
        State::Sym { .. } | State::Accept => set.push(id),
    }
}

/// Reusable Pike-VM simulation state: thread sets plus the
/// generation-stamped duplicate-suppression array. One scratch serves
/// any number of [`accepting_ends_scratch_guarded`] runs (e.g. every
/// start position of a sublist scan) with zero per-run allocation.
#[derive(Debug, Default)]
pub struct PikeScratch {
    current: Vec<StateId>,
    next: Vec<StateId>,
    seen: Vec<u64>,
    generation: u64,
}

impl PikeScratch {
    /// An empty scratch; it sizes itself to the automaton on first use.
    pub fn new() -> PikeScratch {
        PikeScratch::default()
    }

    /// Prepare for a fresh simulation over an `states`-state automaton.
    fn begin(&mut self, states: usize) {
        self.current.clear();
        self.next.clear();
        if self.seen.len() < states {
            self.seen.resize(states, 0);
        }
        self.generation += 1;
    }
}

/// The leaves reachable from the start state without consuming input —
/// i.e. the tests applied to the *first* element of any non-empty
/// match. A scan can skip every start position where none of these
/// pass.
pub(crate) fn initial_leaves(nfa: &Nfa) -> Vec<LeafId> {
    let mut set = Vec::new();
    let mut seen = vec![0u64; nfa.len()];
    add_state(nfa, nfa.start(), &mut set, &mut seen, 1);
    set.into_iter()
        .filter_map(|s| match nfa.state(s) {
            State::Sym { leaf, .. } => Some(*leaf),
            _ => None,
        })
        .collect()
}

/// Does the automaton accept exactly the input `[0, len)`?
pub fn matches_exact(nfa: &Nfa, len: usize, test: &mut impl FnMut(LeafId, usize) -> bool) -> bool {
    infallible(matches_exact_guarded(nfa, len, test, None))
}

/// [`matches_exact`] under an optional execution guard.
pub fn matches_exact_guarded(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    guard: Option<&ExecGuard>,
) -> Result<bool, GuardError> {
    Ok(accepting_ends_guarded(nfa, len, test, guard)?.last() == Some(&len))
}

/// Simulate from position 0 over `[0, len)` and return every prefix
/// length `j` such that the automaton accepts `[0, j)`. Sorted ascending.
pub fn accepting_ends(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
) -> Vec<usize> {
    infallible(accepting_ends_guarded(nfa, len, test, None))
}

/// [`accepting_ends`] under an optional execution guard. Each simulated
/// thread transition counts as one guard step.
pub fn accepting_ends_guarded(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    guard: Option<&ExecGuard>,
) -> Result<Vec<usize>, GuardError> {
    let mut ends = Vec::new();
    let mut scratch = PikeScratch::new();
    accepting_ends_scratch_guarded(nfa, len, test, guard, &mut scratch, &mut ends)?;
    Ok(ends)
}

/// [`accepting_ends_guarded`] writing into caller-owned scratch and
/// output: the zero-allocation core that sublist scans call once per
/// start position.
pub fn accepting_ends_scratch_guarded(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    guard: Option<&ExecGuard>,
    scratch: &mut PikeScratch,
    ends: &mut Vec<usize>,
) -> Result<(), GuardError> {
    ends.clear();
    scratch.begin(nfa.len());
    let PikeScratch {
        current,
        next,
        seen,
        generation,
    } = scratch;

    // Hoisted once: disarmed runs pay one branch per position.
    let obs = guard.and_then(ExecGuard::metrics);
    add_state(nfa, nfa.start(), current, seen, *generation);
    for pos in 0..=len {
        aqua_guard::steps_n(guard, current.len() as u64 + 1)?;
        if let Some(m) = obs {
            m.vm_steps.add(current.len() as u64 + 1);
            m.vm_state_set.record(current.len() as u64);
        }
        if current
            .iter()
            .any(|s| matches!(nfa.state(*s), State::Accept))
        {
            ends.push(pos);
        }
        if pos == len || current.is_empty() {
            break;
        }
        next.clear();
        // A fresh generation starts the next closure round with every
        // state unmarked — no O(states) clear per position.
        *generation += 1;
        for s in current.iter() {
            if let State::Sym { leaf, next: n, .. } = nfa.state(*s) {
                if test(*leaf, pos) {
                    add_state(nfa, *n, next, seen, *generation);
                }
            }
        }
        std::mem::swap(current, next);
    }
    Ok(())
}

/// One step of a parse: input element `pos` was consumed by pattern leaf
/// `leaf`; `pruned` records whether that leaf sits under a `!` group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    pub pos: usize,
    pub leaf: LeafId,
    pub pruned: bool,
}

/// Find the highest-priority (greedy, leftmost) accepting parse of
/// exactly `[0, len)`, if any.
pub fn find_one_path(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
) -> Option<Vec<Step>> {
    infallible(find_one_path_guarded(nfa, len, test, None))
}

/// [`find_one_path`] under an optional execution guard. Each DFS node
/// visit counts as one guard step.
pub fn find_one_path_guarded(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    guard: Option<&ExecGuard>,
) -> Result<Option<Vec<Step>>, GuardError> {
    // DFS in priority order with memoized failure: (state, pos) pairs
    // known not to reach acceptance consuming input[pos..len].
    let mut failed: HashSet<(u32, usize)> = HashSet::new();
    let mut path: Vec<Step> = Vec::new();
    let mut on_stack: HashSet<(u32, usize)> = HashSet::new();
    let found = dfs(
        nfa,
        nfa.start(),
        0,
        len,
        test,
        &mut failed,
        &mut on_stack,
        &mut path,
        guard,
    )?;
    Ok(if found { Some(path) } else { None })
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    nfa: &Nfa,
    state: StateId,
    pos: usize,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    failed: &mut HashSet<(u32, usize)>,
    on_stack: &mut HashSet<(u32, usize)>,
    path: &mut Vec<Step>,
    guard: Option<&ExecGuard>,
) -> Result<bool, GuardError> {
    aqua_guard::step(guard)?;
    if let Some(m) = guard.and_then(ExecGuard::metrics) {
        m.vm_path_visits.inc();
    }
    let key = (state.0, pos);
    if failed.contains(&key) || !on_stack.insert(key) {
        return Ok(false);
    }
    let result = (|| match nfa.state(state) {
        State::Accept => Ok(pos == len),
        State::Eps(n) => dfs(nfa, *n, pos, len, test, failed, on_stack, path, guard),
        State::Split(a, b) => {
            if dfs(nfa, *a, pos, len, test, failed, on_stack, path, guard)? {
                Ok(true)
            } else {
                dfs(nfa, *b, pos, len, test, failed, on_stack, path, guard)
            }
        }
        State::Sym { leaf, pruned, next } => {
            if pos < len && test(*leaf, pos) {
                path.push(Step {
                    pos,
                    leaf: *leaf,
                    pruned: *pruned,
                });
                if dfs(
                    nfa,
                    *next,
                    pos + 1,
                    len,
                    test,
                    failed,
                    on_stack,
                    path,
                    guard,
                )? {
                    Ok(true)
                } else {
                    path.pop();
                    Ok(false)
                }
            } else {
                Ok(false)
            }
        }
    })();
    on_stack.remove(&key);
    let ok = result?;
    if !ok {
        failed.insert(key);
    }
    Ok(ok)
}

/// Result of a bounded parse enumeration: the parses found plus whether
/// the `limit` clipped the search before it was exhaustive.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parses {
    /// Distinct accepting parses, in priority order.
    pub paths: Vec<Vec<Step>>,
    /// `true` if enumeration stopped because `limit` parses were
    /// collected while unexplored alternatives remained.
    pub truncated: bool,
}

/// Enumerate accepting parses of exactly `[0, len)`, deduplicated by
/// their step sequences, up to `limit` parses. Priority order: the first
/// returned parse equals [`find_one_path`]'s.
pub fn enumerate_paths(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    limit: usize,
) -> Vec<Vec<Step>> {
    infallible(enumerate_paths_guarded(nfa, len, test, limit, None)).paths
}

/// [`enumerate_paths`] under an optional execution guard, reporting
/// truncation. Each DFS node visit counts as one guard step.
pub fn enumerate_paths_guarded(
    nfa: &Nfa,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    limit: usize,
    guard: Option<&ExecGuard>,
) -> Result<Parses, GuardError> {
    let mut parses = Parses::default();
    let mut dedup: HashSet<Vec<Step>> = HashSet::new();
    let mut path: Vec<Step> = Vec::new();
    let mut on_stack: HashSet<(u32, usize)> = HashSet::new();
    // Failure memo is sound for enumeration too: if (state,pos) can never
    // reach acceptance, no parse goes through it.
    let mut failed: HashSet<(u32, usize)> = HashSet::new();
    enum_dfs(
        nfa,
        nfa.start(),
        0,
        len,
        test,
        &mut failed,
        &mut on_stack,
        &mut path,
        &mut dedup,
        &mut parses,
        limit,
        guard,
    )?;
    Ok(parses)
}

#[allow(clippy::too_many_arguments)]
fn enum_dfs(
    nfa: &Nfa,
    state: StateId,
    pos: usize,
    len: usize,
    test: &mut impl FnMut(LeafId, usize) -> bool,
    failed: &mut HashSet<(u32, usize)>,
    on_stack: &mut HashSet<(u32, usize)>,
    path: &mut Vec<Step>,
    dedup: &mut HashSet<Vec<Step>>,
    parses: &mut Parses,
    limit: usize,
    guard: Option<&ExecGuard>,
) -> Result<bool, GuardError> {
    if parses.paths.len() >= limit {
        // The search still had alternatives to explore here.
        parses.truncated = true;
        return Ok(false);
    }
    aqua_guard::step(guard)?;
    if let Some(m) = guard.and_then(ExecGuard::metrics) {
        m.vm_path_visits.inc();
    }
    let key = (state.0, pos);
    if failed.contains(&key) || !on_stack.insert(key) {
        return Ok(false);
    }
    let result = (|| {
        let mut any = false;
        match nfa.state(state) {
            State::Accept => {
                if pos == len {
                    any = true;
                    if dedup.insert(path.clone()) {
                        parses.paths.push(path.clone());
                    }
                }
            }
            State::Eps(n) => {
                any = enum_dfs(
                    nfa, *n, pos, len, test, failed, on_stack, path, dedup, parses, limit, guard,
                )?;
            }
            State::Split(a, b) => {
                let r1 = enum_dfs(
                    nfa, *a, pos, len, test, failed, on_stack, path, dedup, parses, limit, guard,
                )?;
                let r2 = enum_dfs(
                    nfa, *b, pos, len, test, failed, on_stack, path, dedup, parses, limit, guard,
                )?;
                any = r1 || r2;
            }
            State::Sym { leaf, pruned, next } => {
                if pos < len && test(*leaf, pos) {
                    path.push(Step {
                        pos,
                        leaf: *leaf,
                        pruned: *pruned,
                    });
                    let r = enum_dfs(
                        nfa,
                        *next,
                        pos + 1,
                        len,
                        test,
                        failed,
                        on_stack,
                        path,
                        dedup,
                        parses,
                        limit,
                        guard,
                    );
                    path.pop();
                    any = r?;
                }
            }
        }
        Ok(any)
    })();
    on_stack.remove(&key);
    let any = result?;
    if !any && parses.paths.len() < limit {
        failed.insert(key);
    }
    Ok(any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Re;
    use aqua_guard::{Budget, Resource};

    fn compile(re: &Re<char>) -> (Nfa, Vec<char>) {
        let mut leaves = Vec::new();
        let nfa = Nfa::compile(re, &mut |c: &char| {
            leaves.push(*c);
            (LeafId(leaves.len() as u32 - 1), false)
        });
        (nfa, leaves)
    }

    fn l(c: char) -> Re<char> {
        Re::Leaf(c)
    }

    fn tester<'a>(leaves: &'a [char], input: &'a [char]) -> impl FnMut(LeafId, usize) -> bool + 'a {
        move |leaf, pos| leaves[leaf.0 as usize] == input[pos] || leaves[leaf.0 as usize] == '?'
    }

    #[test]
    fn accepting_ends_reports_all_prefixes() {
        // a+ on "aaa" accepts at 1, 2, 3
        let (nfa, leaves) = compile(&l('a').plus());
        let input: Vec<char> = "aaa".chars().collect();
        let ends = accepting_ends(&nfa, input.len(), &mut tester(&leaves, &input));
        assert_eq!(ends, vec![1, 2, 3]);
    }

    #[test]
    fn accepting_ends_includes_zero_for_nullable() {
        let (nfa, leaves) = compile(&l('a').star());
        let input: Vec<char> = "aa".chars().collect();
        let ends = accepting_ends(&nfa, input.len(), &mut tester(&leaves, &input));
        assert_eq!(ends, vec![0, 1, 2]);
    }

    #[test]
    fn find_one_path_prefers_greedy() {
        // (!?)* b (!?)* over "xbx": greedy prune-star grabs leading x.
        let re = l('?')
            .prune()
            .star()
            .then(l('b'))
            .then(l('?').prune().star());
        let (nfa, leaves) = compile(&re);
        let input: Vec<char> = "xbx".chars().collect();
        let path = find_one_path(&nfa, input.len(), &mut tester(&leaves, &input)).unwrap();
        let pruned: Vec<usize> = path.iter().filter(|s| s.pruned).map(|s| s.pos).collect();
        assert_eq!(pruned, vec![0, 2]);
        let kept: Vec<usize> = path.iter().filter(|s| !s.pruned).map(|s| s.pos).collect();
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn find_one_path_none_on_mismatch() {
        let (nfa, leaves) = compile(&l('a').then(l('b')));
        let input: Vec<char> = "ac".chars().collect();
        assert!(find_one_path(&nfa, input.len(), &mut tester(&leaves, &input)).is_none());
    }

    #[test]
    fn enumerate_finds_all_distinct_parses() {
        // ?* b ?* over "bb": two parses (either b is the literal).
        let re = l('?').star().then(l('b')).then(l('?').star());
        let (nfa, leaves) = compile(&re);
        let input: Vec<char> = "bb".chars().collect();
        let paths = enumerate_paths(&nfa, input.len(), &mut tester(&leaves, &input), 100);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn enumerate_respects_limit_and_reports_truncation() {
        let re = l('?').star().then(l('?').star());
        let (nfa, leaves) = compile(&re);
        let input: Vec<char> = "aaaa".chars().collect();
        let parses =
            enumerate_paths_guarded(&nfa, input.len(), &mut tester(&leaves, &input), 3, None)
                .unwrap();
        assert_eq!(parses.paths.len(), 3);
        assert!(parses.truncated, "clipped enumeration must say so");
        // A generous limit enumerates everything and reports no clipping.
        let all =
            enumerate_paths_guarded(&nfa, input.len(), &mut tester(&leaves, &input), 1000, None)
                .unwrap();
        assert_eq!(all.paths.len(), 5);
        assert!(!all.truncated);
    }

    #[test]
    fn eps_cycles_do_not_hang_enumeration() {
        // (a*)* has ε-cycles; enumeration must terminate.
        let re = l('a').star().star();
        let (nfa, leaves) = compile(&re);
        let input: Vec<char> = "aa".chars().collect();
        let paths = enumerate_paths(&nfa, input.len(), &mut tester(&leaves, &input), 1000);
        assert!(!paths.is_empty());
        assert!(paths.len() < 1000);
    }

    #[test]
    fn matches_exact_is_full_span() {
        let (nfa, leaves) = compile(&l('a').then(l('b')));
        let input: Vec<char> = "ab".chars().collect();
        assert!(matches_exact(
            &nfa,
            input.len(),
            &mut tester(&leaves, &input)
        ));
        let shorter: Vec<char> = "a".chars().collect();
        assert!(!matches_exact(
            &nfa,
            shorter.len(),
            &mut tester(&leaves, &shorter)
        ));
    }

    #[test]
    fn tiny_budget_trips_simulation() {
        let re = l('?').star().then(l('?').star()).then(l('?').star());
        let (nfa, leaves) = compile(&re);
        let input: Vec<char> = "aaaaaaaa".chars().collect();
        let guard = ExecGuard::new(Budget::unlimited().with_steps(4));
        let err = enumerate_paths_guarded(
            &nfa,
            input.len(),
            &mut tester(&leaves, &input),
            usize::MAX,
            Some(&guard),
        )
        .unwrap_err();
        match err {
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                limit: 4,
                progress,
            } => assert!(progress.steps > 4),
            other => panic!("expected step-budget trip, got {other:?}"),
        }
    }
}
