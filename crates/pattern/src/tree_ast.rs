//! Tree patterns with concatenation points (paper §3.3).
//!
//! Tree patterns generalize regular expressions to trees. Concatenation
//! and its derived operators (Kleene closure) are parameterized by
//! *concatenation points* `α_i` (after Doner and Thatcher–Wright) which
//! say where the concatenation occurs:
//!
//! * `tp1 ∘_α tp2` — replace each occurrence of `α` in `tp1` by `tp2`
//!   (if `tp1` has no `α`, the result is just `tp1`).
//! * `tp^{*α}` / `tp^{+α}` — iterative self-concatenation at `α`; the
//!   last iteration concatenates NULL to the remaining points (§3.3).
//!
//! A pattern node's children are described by a regular expression whose
//! alphabet is tree patterns (the shared [`Re`] machinery), so
//! variable-arity nodes fall out naturally (§5's `printf` query).
//!
//! Surface patterns ([`TreePat`]) are compiled ([`TreePattern::compile`])
//! into an arena form ([`CompiledTreePattern`]): `∘_α` is eliminated by
//! substitution, closures become explicit recursion points, and
//! alphabet-predicates are bound to a class. The matcher in
//! [`crate::tree_match`] runs over the compiled form.

use std::fmt;

use aqua_object::{ClassDef, ClassId};

use crate::alphabet::{Pred, PredExpr};
use crate::ast::Re;
use crate::error::Result;
use crate::nfa::{LeafId, Nfa};

/// A concatenation point label (`α`, `α_1`, … — written `@a`, `@1` in the
/// text syntax).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CcLabel(pub String);

impl CcLabel {
    /// Make a label from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        CcLabel(s.into())
    }
}

impl fmt::Display for CcLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<&str> for CcLabel {
    fn from(s: &str) -> Self {
        CcLabel(s.to_owned())
    }
}

/// The test a pattern node applies to a tree node's object.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// `?` — matches any object.
    Any,
    /// An alphabet-predicate.
    Pred(PredExpr),
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Any => write!(f, "?"),
            NodeTest::Pred(p) => write!(f, "{{{p}}}"),
        }
    }
}

/// A surface tree pattern (paper §3.3 grammar `tp`).
#[derive(Debug, Clone, PartialEq)]
pub enum TreePat {
    /// A single-node pattern: matches one node; the node's children in
    /// the tree (if any) are cut off at fresh concatenation points.
    Leaf(NodeTest),
    /// A node pattern with a child-list regex that must consume the
    /// node's complete child sequence.
    Node(NodeTest, Box<Re<TreePat>>),
    /// A concatenation point `α`. Bound occurrences are eliminated at
    /// compile time (by `∘_α` substitution or closure recursion); a free
    /// occurrence matches a labeled NULL in the instance (paper §3.5).
    Point(CcLabel),
    /// Disjunction of tree patterns.
    Alt(Vec<TreePat>),
    /// `left ∘_label right`.
    Concat {
        left: Box<TreePat>,
        label: CcLabel,
        right: Box<TreePat>,
    },
    /// `body^{*label}` (`plus: false`) or `body^{+label}` (`plus: true`).
    Closure {
        body: Box<TreePat>,
        label: CcLabel,
        plus: bool,
    },
}

impl TreePat {
    /// A single-node pattern testing `pred`.
    pub fn pred(pred: PredExpr) -> Self {
        TreePat::Leaf(NodeTest::Pred(pred))
    }

    /// The `?` wildcard single-node pattern.
    pub fn any() -> Self {
        TreePat::Leaf(NodeTest::Any)
    }

    /// A node pattern whose children are the concatenation of `children`.
    pub fn node(test: NodeTest, children: Vec<Re<TreePat>>) -> Self {
        TreePat::Node(test, Box::new(Re::Concat(children)))
    }

    /// A node testing `pred` with the given child-list regex.
    pub fn pred_node(pred: PredExpr, children: Re<TreePat>) -> Self {
        TreePat::Node(NodeTest::Pred(pred), Box::new(children))
    }

    /// A wildcard node with the given child-list regex.
    pub fn any_node(children: Re<TreePat>) -> Self {
        TreePat::Node(NodeTest::Any, Box::new(children))
    }

    /// A concatenation point.
    pub fn point(label: impl Into<CcLabel>) -> Self {
        TreePat::Point(label.into())
    }

    /// `self ∘_label right`.
    pub fn concat_at(self, label: impl Into<CcLabel>, right: TreePat) -> Self {
        TreePat::Concat {
            left: Box::new(self),
            label: label.into(),
            right: Box::new(right),
        }
    }

    /// `self^{*label}`.
    pub fn star_at(self, label: impl Into<CcLabel>) -> Self {
        TreePat::Closure {
            body: Box::new(self),
            label: label.into(),
            plus: false,
        }
    }

    /// `self^{+label}`.
    pub fn plus_at(self, label: impl Into<CcLabel>) -> Self {
        TreePat::Closure {
            body: Box::new(self),
            label: label.into(),
            plus: true,
        }
    }

    /// `self | other`.
    pub fn or(self, other: TreePat) -> Self {
        match self {
            TreePat::Alt(mut xs) => {
                xs.push(other);
                TreePat::Alt(xs)
            }
            s => TreePat::Alt(vec![s, other]),
        }
    }

    /// The node test at this pattern's root, when it is statically a
    /// single node test (not an alternation/closure). Used by the
    /// optimizer to find an index-usable root predicate.
    pub fn root_test(&self) -> Option<&NodeTest> {
        match self {
            TreePat::Leaf(t) | TreePat::Node(t, _) => Some(t),
            TreePat::Concat { left, .. } => left.root_test(),
            TreePat::Point(_) | TreePat::Alt(_) | TreePat::Closure { .. } => None,
        }
    }
}

impl fmt::Display for TreePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreePat::Leaf(t) => write!(f, "{t}"),
            TreePat::Node(t, children) => write!(f, "{t}({children})"),
            TreePat::Point(l) => write!(f, "{l}"),
            TreePat::Alt(xs) => {
                // Bracketed so embedding in a child list cannot regroup
                // (`a|b c` would otherwise parse as `a | (b c)`).
                write!(f, "[[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]]")
            }
            TreePat::Concat { left, label, right } => write!(f, "[[{left} .{label} {right}]]"),
            TreePat::Closure { body, label, plus } => {
                write!(f, "[[{body}]]{}{label}", if *plus { "+" } else { "*" })
            }
        }
    }
}

/// A complete tree pattern: a [`TreePat`] plus the anchors of §3.3 —
/// `⊤tp` (match only at the tree root) and `tp⊥` (pattern leaves must
/// match tree leaves).
#[derive(Debug, Clone, PartialEq)]
pub struct TreePattern {
    pub pat: TreePat,
    pub at_root: bool,
    pub at_leaves: bool,
}

impl TreePattern {
    /// An unanchored pattern.
    pub fn new(pat: TreePat) -> Self {
        TreePattern {
            pat,
            at_root: false,
            at_leaves: false,
        }
    }

    /// Anchor at the root (`⊤tp`).
    pub fn anchored_root(mut self) -> Self {
        self.at_root = true;
        self
    }

    /// Anchor at the leaves (`tp⊥`).
    pub fn anchored_leaves(mut self) -> Self {
        self.at_leaves = true;
        self
    }

    /// Compile against a class: resolve alphabet-predicates, eliminate
    /// `∘_α` by substitution, turn closures into recursion points, and
    /// build the child-list NFAs.
    pub fn compile(&self, class_id: ClassId, class: &ClassDef) -> Result<CompiledTreePattern> {
        let mut c = Compiler {
            class_id,
            class,
            pats: Vec::new(),
            preds: Vec::new(),
            cc_labels: Vec::new(),
            nullable: Vec::new(),
        };
        let root = c.compile(&self.pat, &Env::Empty)?;
        let mut compiled = CompiledTreePattern {
            pats: c.pats,
            preds: c.preds,
            cc_labels: c.cc_labels,
            root,
            at_root: self.at_root,
            at_leaves: self.at_leaves,
            nullable: Vec::new(),
        };
        compiled.nullable = compiled.compute_nullable();
        Ok(compiled)
    }
}

impl fmt::Display for TreePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.at_root {
            write!(f, "^")?;
        }
        write!(f, "{}", self.pat)?;
        if self.at_leaves {
            write!(f, "$")?;
        }
        Ok(())
    }
}

/// Index of a compiled subpattern in the pattern arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatId(pub u32);

/// Index of a compiled predicate in the predicate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredId(pub u32);

/// Index of an interned concatenation-point label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CcId(pub u32);

/// Compiled node test.
#[derive(Debug, Clone, PartialEq)]
pub enum CTest {
    Any,
    Pred(PredId),
}

/// Compiled child-list regex: an NFA whose leaf table maps to subpattern
/// ids.
#[derive(Debug, Clone)]
pub struct ChildList {
    pub nfa: Nfa,
    pub syms: Vec<PatId>,
}

/// A compiled subpattern.
#[derive(Debug, Clone)]
pub enum CPat {
    /// Node test with optional child-list regex. `children: None` is a
    /// single-node pattern (pattern leaf): the matched node's children
    /// are frontier cuts.
    Node {
        test: CTest,
        children: Option<ChildList>,
    },
    /// A free concatenation point: matches a labeled NULL (hole) node.
    Hole(CcId),
    /// Disjunction.
    Alt(Vec<PatId>),
    /// A closure: a chain of one or more `body` instances. The zero-
    /// iteration case of `*` closures appears as symbol nullability in
    /// the enclosing child list.
    Closure { body: PatId, plus: bool },
    /// Recursion point inside a closure body: matching it continues the
    /// chain (≥1 more instance) or, because it is nullable, terminates
    /// with NULL when no child is present.
    Continue { closure: PatId },
}

/// A tree pattern compiled for matching (see [`crate::tree_match`]).
#[derive(Debug, Clone)]
pub struct CompiledTreePattern {
    pub(crate) pats: Vec<CPat>,
    pub(crate) preds: Vec<Pred>,
    pub(crate) cc_labels: Vec<CcLabel>,
    pub(crate) root: PatId,
    pub at_root: bool,
    pub at_leaves: bool,
    /// Per-subpattern: can it match "nothing" (NULL)?
    pub(crate) nullable: Vec<bool>,
}

impl CompiledTreePattern {
    /// The root subpattern.
    pub fn root(&self) -> PatId {
        self.root
    }

    /// The compiled subpattern arena entry.
    pub(crate) fn pat(&self, id: PatId) -> &CPat {
        &self.pats[id.0 as usize]
    }

    /// Compiled predicate lookup.
    pub(crate) fn pred(&self, id: PredId) -> &Pred {
        &self.preds[id.0 as usize]
    }

    /// Interned concatenation-point label lookup.
    pub fn cc_label(&self, id: CcId) -> &CcLabel {
        &self.cc_labels[id.0 as usize]
    }

    /// Number of compiled subpatterns (pattern-size proxy for the cost
    /// model).
    pub fn size(&self) -> usize {
        self.pats.len()
    }

    /// Whether subpattern `id` can match NULL (zero-width at a child
    /// position).
    pub fn is_nullable(&self, id: PatId) -> bool {
        self.nullable[id.0 as usize]
    }

    /// Fixpoint nullability: `Continue` and `*`-closures are nullable;
    /// `Alt` is nullable if a branch is; everything else is not. The
    /// pattern graph may contain cycles (closure recursion), so iterate
    /// to a fixpoint starting from `false`.
    fn compute_nullable(&self) -> Vec<bool> {
        let mut nullable = vec![false; self.pats.len()];
        loop {
            let mut changed = false;
            for (i, p) in self.pats.iter().enumerate() {
                if nullable[i] {
                    continue;
                }
                let v = match p {
                    CPat::Continue { .. } => true,
                    CPat::Closure { plus: false, .. } => true,
                    CPat::Closure { body, plus: true } => nullable[body.0 as usize],
                    CPat::Alt(xs) => xs.iter().any(|x| nullable[x.0 as usize]),
                    CPat::Node { .. } | CPat::Hole(_) => false,
                };
                if v {
                    nullable[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return nullable;
            }
        }
    }
}

/// Compile-time binding environment for concatenation-point labels.
enum Env<'a> {
    Empty,
    /// Label bound by `∘_α` substitution to a surface fragment.
    Subst {
        label: &'a CcLabel,
        to: &'a TreePat,
        /// Environment in which `to` itself must be compiled (the label
        /// is *not* re-substituted inside `to`; paper §5 relies on
        /// chained concatenations).
        outer: &'a Env<'a>,
        rest: &'a Env<'a>,
    },
    /// Label bound by an enclosing closure to a recursion point.
    Loop {
        label: &'a CcLabel,
        closure: PatId,
        rest: &'a Env<'a>,
    },
}

struct Compiler<'c> {
    class_id: ClassId,
    class: &'c ClassDef,
    pats: Vec<CPat>,
    preds: Vec<Pred>,
    cc_labels: Vec<CcLabel>,
    nullable: Vec<bool>,
}

impl<'c> Compiler<'c> {
    fn push(&mut self, p: CPat) -> PatId {
        let id = PatId(self.pats.len() as u32);
        self.pats.push(p);
        self.nullable.push(false);
        id
    }

    fn intern_pred(&mut self, e: &PredExpr) -> Result<PredId> {
        let compiled = e.compile(self.class_id, self.class)?;
        if let Some(i) = self.preds.iter().position(|p| *p == compiled) {
            return Ok(PredId(i as u32));
        }
        self.preds.push(compiled);
        Ok(PredId(self.preds.len() as u32 - 1))
    }

    fn intern_cc(&mut self, l: &CcLabel) -> CcId {
        if let Some(i) = self.cc_labels.iter().position(|x| x == l) {
            return CcId(i as u32);
        }
        self.cc_labels.push(l.clone());
        CcId(self.cc_labels.len() as u32 - 1)
    }

    fn compile_test(&mut self, t: &NodeTest) -> Result<CTest> {
        Ok(match t {
            NodeTest::Any => CTest::Any,
            NodeTest::Pred(e) => CTest::Pred(self.intern_pred(e)?),
        })
    }

    fn compile(&mut self, pat: &TreePat, env: &Env<'_>) -> Result<PatId> {
        Ok(match pat {
            TreePat::Leaf(t) => {
                let test = self.compile_test(t)?;
                self.push(CPat::Node {
                    test,
                    children: None,
                })
            }
            TreePat::Node(t, child_re) => {
                let test = self.compile_test(t)?;
                // Reserve the node slot first so child compilation can't
                // reorder; fill the child list after.
                let id = self.push(CPat::Node {
                    test,
                    children: None,
                });
                // Compile each leaf of the child regex to a subpattern,
                // indexing leaves left-to-right so NFA construction order
                // (which differs) cannot scramble the symbol table.
                let mut syms: Vec<PatId> = Vec::new();
                let mut err: Option<crate::error::PatternError> = None;
                let indexed: Re<usize> = child_re.map_leaves(&mut |leaf: &TreePat| {
                    if err.is_none() {
                        match self.compile(leaf, env) {
                            Ok(pid) => syms.push(pid),
                            Err(e) => {
                                err = Some(e);
                                syms.push(PatId(0));
                            }
                        }
                    } else {
                        syms.push(PatId(0));
                    }
                    syms.len() - 1
                });
                if let Some(e) = err {
                    return Err(e);
                }
                let nfa = Nfa::compile(&indexed, &mut |i: &usize| {
                    (LeafId(*i as u32), self.shallow_nullable(syms[*i]))
                });
                self.pats[id.0 as usize] = CPat::Node {
                    test: match &self.pats[id.0 as usize] {
                        CPat::Node { test, .. } => test.clone(),
                        _ => unreachable!(),
                    },
                    children: Some(ChildList { nfa, syms }),
                };
                id
            }
            TreePat::Point(label) => match lookup(env, label) {
                Some(Lookup::Subst { to, outer }) => self.compile(to, outer)?,
                Some(Lookup::Loop { closure }) => self.push(CPat::Continue { closure }),
                None => {
                    let cc = self.intern_cc(label);
                    self.push(CPat::Hole(cc))
                }
            },
            TreePat::Alt(xs) => {
                let ids = xs
                    .iter()
                    .map(|x| self.compile(x, env))
                    .collect::<Result<Vec<_>>>()?;
                self.push(CPat::Alt(ids))
            }
            TreePat::Concat { left, label, right } => {
                let env2 = Env::Subst {
                    label,
                    to: right,
                    outer: env,
                    rest: env,
                };
                self.compile(left, &env2)?
            }
            TreePat::Closure { body, label, plus } => {
                // Reserve the closure slot, bind the label to it, then
                // compile the body.
                let id = self.push(CPat::Closure {
                    body: PatId(u32::MAX),
                    plus: *plus,
                });
                let env2 = Env::Loop {
                    label,
                    closure: id,
                    rest: env,
                };
                let body_id = self.compile(body, &env2)?;
                self.pats[id.0 as usize] = CPat::Closure {
                    body: body_id,
                    plus: *plus,
                };
                id
            }
        })
    }

    /// Conservative nullability available *during* compilation (before
    /// the fixpoint): `Continue` and already-filled `*`-closures are
    /// nullable. This is exact for every shape the surface syntax can
    /// produce as a child symbol, because a child symbol's nullability
    /// never depends on a forward reference other than its own closure.
    fn shallow_nullable(&self, id: PatId) -> bool {
        match &self.pats[id.0 as usize] {
            CPat::Continue { .. } => true,
            CPat::Closure { plus, .. } => !*plus,
            CPat::Alt(xs) => xs.iter().any(|x| self.shallow_nullable(*x)),
            CPat::Node { .. } | CPat::Hole(_) => false,
        }
    }
}

enum Lookup<'a> {
    Subst { to: &'a TreePat, outer: &'a Env<'a> },
    Loop { closure: PatId },
}

fn lookup<'a>(env: &'a Env<'a>, label: &CcLabel) -> Option<Lookup<'a>> {
    match env {
        Env::Empty => None,
        Env::Subst {
            label: l,
            to,
            outer,
            rest,
        } => {
            if *l == label {
                Some(Lookup::Subst { to, outer })
            } else {
                lookup(rest, label)
            }
        }
        Env::Loop {
            label: l,
            closure,
            rest,
        } => {
            if *l == label {
                Some(Lookup::Loop { closure: *closure })
            } else {
                lookup(rest, label)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType, ObjectStore};

    fn setup() -> (ObjectStore, ClassId) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(
                ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        (s, c)
    }

    fn label_pred(l: &str) -> PredExpr {
        PredExpr::eq("label", l)
    }

    #[test]
    fn leaf_pattern_compiles() {
        let (s, c) = setup();
        let p = TreePattern::new(TreePat::pred(label_pred("a")));
        let cp = p.compile(c, s.class(c)).unwrap();
        assert_eq!(cp.size(), 1);
        assert!(matches!(
            cp.pat(cp.root()),
            CPat::Node { children: None, .. }
        ));
    }

    #[test]
    fn concat_substitutes() {
        // a(@1) o_@1 b  ==> a(b)
        let (s, c) = setup();
        let pat = TreePat::pred_node(label_pred("a"), Re::Leaf(TreePat::point("1")))
            .concat_at("1", TreePat::pred(label_pred("b")));
        let cp = TreePattern::new(pat).compile(c, s.class(c)).unwrap();
        // root is a Node with a one-symbol child list whose symbol is a leaf Node.
        match cp.pat(cp.root()) {
            CPat::Node {
                children: Some(cl), ..
            } => {
                assert_eq!(cl.syms.len(), 1);
                assert!(matches!(
                    cp.pat(cl.syms[0]),
                    CPat::Node { children: None, .. }
                ));
            }
            other => panic!("unexpected root {other:?}"),
        }
        // no free holes remain
        assert!(cp.cc_labels.is_empty());
    }

    #[test]
    fn concat_without_label_leaves_left_untouched() {
        // a o_@1 b — no @1 in a, result is a (paper §3.3).
        let (s, c) = setup();
        let pat = TreePat::pred(label_pred("a")).concat_at("1", TreePat::pred(label_pred("b")));
        let cp = TreePattern::new(pat).compile(c, s.class(c)).unwrap();
        assert!(matches!(
            cp.pat(cp.root()),
            CPat::Node { children: None, .. }
        ));
    }

    #[test]
    fn free_point_becomes_hole() {
        let (s, c) = setup();
        let pat = TreePat::pred_node(label_pred("a"), Re::Leaf(TreePat::point("x")));
        let cp = TreePattern::new(pat).compile(c, s.class(c)).unwrap();
        assert_eq!(cp.cc_labels, vec![CcLabel::new("x")]);
    }

    #[test]
    fn closure_creates_recursion_point() {
        // [[a(b c @x)]]*@x  (Figure 2's pattern shape)
        let (s, c) = setup();
        let body = TreePat::pred_node(
            label_pred("a"),
            Re::Leaf(TreePat::pred(label_pred("b")))
                .then(Re::Leaf(TreePat::pred(label_pred("c"))))
                .then(Re::Leaf(TreePat::point("x"))),
        );
        let pat = body.star_at("x");
        let cp = TreePattern::new(pat).compile(c, s.class(c)).unwrap();
        let closure = cp.root();
        assert!(matches!(cp.pat(closure), CPat::Closure { plus: false, .. }));
        // The recursion point is nullable; the closure itself is too.
        assert!(cp.is_nullable(closure));
        let has_continue = cp
            .pats
            .iter()
            .any(|p| matches!(p, CPat::Continue { closure: cl } if *cl == closure));
        assert!(has_continue);
        // No free labels: @x was bound by the closure.
        assert!(cp.cc_labels.is_empty());
    }

    #[test]
    fn plus_closure_not_nullable() {
        let (s, c) = setup();
        let body = TreePat::pred_node(label_pred("a"), Re::Leaf(TreePat::point("x")));
        let cp = TreePattern::new(body.plus_at("x"))
            .compile(c, s.class(c))
            .unwrap();
        assert!(!cp.is_nullable(cp.root()));
    }

    #[test]
    fn predicates_are_interned() {
        let (s, c) = setup();
        let pat = TreePat::pred_node(
            label_pred("a"),
            Re::Leaf(TreePat::pred(label_pred("a"))).then(Re::Leaf(TreePat::pred(label_pred("a")))),
        );
        let cp = TreePattern::new(pat).compile(c, s.class(c)).unwrap();
        assert_eq!(cp.preds.len(), 1);
    }

    #[test]
    fn root_test_extraction() {
        let p = TreePat::pred_node(label_pred("a"), Re::Leaf(TreePat::any()));
        assert!(matches!(p.root_test(), Some(NodeTest::Pred(_))));
        assert!(TreePat::point("x").root_test().is_none());
        let c = TreePat::pred(label_pred("a")).concat_at("1", TreePat::any());
        assert!(c.root_test().is_some());
    }

    #[test]
    fn display_forms() {
        let p = TreePattern::new(TreePat::pred_node(
            label_pred("a"),
            Re::Leaf(TreePat::any()).then(Re::Leaf(TreePat::point("1"))),
        ))
        .anchored_root();
        let s = p.to_string();
        assert!(s.starts_with('^'));
        assert!(s.contains("@1"));
    }

    #[test]
    fn anchors_carry_through_compile() {
        let (s, c) = setup();
        let cp = TreePattern::new(TreePat::any())
            .anchored_root()
            .anchored_leaves()
            .compile(c, s.class(c))
            .unwrap();
        assert!(cp.at_root && cp.at_leaves);
    }
}
