//! Batched alphabet-predicate evaluation over OID columns.
//!
//! The scalar path ([`Pred::eval`]) dereferences one object, walks the
//! `Box`-recursive predicate tree, and returns one bool — fine for a
//! single probe, wasteful in a bulk scan where the same tree is walked
//! once *per element*. This module flattens the compiled predicate into
//! a postfix [`BatchProgram`] once, then evaluates it over contiguous
//! runs of OIDs: each comparison leaf becomes one tight loop over a
//! column slice producing a [`BitRow`], and the boolean connectives
//! combine rows word-wise (64 elements per instruction).
//!
//! Semantics are *bit-identical* to the scalar evaluator, including its
//! class discipline:
//!
//! * an object of a different class never satisfies a non-trivial
//!   predicate (the final row is ANDed with a class mask, so `NOT`
//!   cannot resurrect a wrong-class element);
//! * comparison leaves never touch the attribute columns of wrong-class
//!   objects (their row slots stay 0 without dereferencing `values`);
//! * the bare `true` predicate (the `?` metacharacter) stays
//!   class-agnostic: a root-`True` program is an all-ones row.
//!
//! Guard accounting is chunked: one [`aqua_guard::steps_n`]
//! charge per [`CHUNK`]-element run instead of one per element. Totals
//! stay exact (`n` steps per full evaluation, same as the scalar loop)
//! and a budget/deadline/cancel verdict still lands within one chunk of
//! its limit, because `steps_n` checks the budget on every call and
//! checkpoints at least every `CHUNK <= CHECK_PERIOD` steps.

use aqua_guard::{steps_n, ExecGuard, GuardError};
use aqua_object::{AttrId, ClassId, ObjectStore, Oid, Value};

use crate::alphabet::{CmpOp, Pred, PredNode};

/// Elements evaluated per guard charge; at most the guard's checkpoint
/// period so trip latency stays bounded by one chunk.
pub const CHUNK: usize = 1024;

/// A packed boolean column: bit `i` is the verdict for element `i`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitRow {
    words: Vec<u64>,
    len: usize,
}

impl BitRow {
    /// An all-zeros row over `len` elements.
    pub fn zeros(len: usize) -> BitRow {
        BitRow {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to `len` elements, all zeros.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// The backing words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of all set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// `self &= other` (rows must be the same length).
    pub fn and_assign(&mut self, other: &BitRow) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other` (rows must be the same length).
    pub fn or_assign(&mut self, other: &BitRow) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Zero any tail bits beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// One postfix instruction of a flattened predicate.
#[derive(Debug, Clone, PartialEq)]
enum BatchOp {
    /// Push all-ones.
    True,
    /// Push the column verdicts of `attr op constant`.
    Cmp {
        attr: AttrId,
        op: CmpOp,
        constant: Value,
    },
    /// Pop two, push AND.
    And,
    /// Pop two, push OR.
    Or,
    /// Pop one, push NOT.
    Not,
}

/// A comparison leaf pre-dispatched on its constant's type, so the hot
/// loop is a monomorphic compare instead of a [`Value::try_cmp`] double
/// dispatch. Cross-type comparisons are undefined and therefore `false`
/// (for every operator, including `Ne` — matching [`CmpOp::apply`]).
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    /// `attr op k` against an integer constant.
    IntCmp { attr: AttrId, op: CmpOp, k: i64 },
    /// `attr = k` / `attr != k` against a string constant.
    StrEq { attr: AttrId, k: String, want: bool },
    /// Ordered string comparison.
    StrOrd { attr: AttrId, op: CmpOp, k: String },
    /// Everything else falls back to the generic compare.
    Any { attr: AttrId, op: CmpOp, k: Value },
}

impl Leaf {
    fn new(attr: AttrId, op: CmpOp, constant: &Value) -> Leaf {
        match constant {
            Value::Int(k) => Leaf::IntCmp { attr, op, k: *k },
            Value::Str(k) if matches!(op, CmpOp::Eq | CmpOp::Ne) => Leaf::StrEq {
                attr,
                k: k.clone(),
                want: op == CmpOp::Eq,
            },
            Value::Str(k) => Leaf::StrOrd {
                attr,
                op,
                k: k.clone(),
            },
            other => Leaf::Any {
                attr,
                op,
                k: other.clone(),
            },
        }
    }

    /// Verdict on one (right-class) value row.
    #[inline(always)]
    fn test(&self, vals: &[Value]) -> bool {
        match self {
            Leaf::IntCmp { attr, op, k } => match &vals[attr.index()] {
                Value::Int(v) => ord_holds(*op, v.cmp(k)),
                _ => false,
            },
            Leaf::StrEq { attr, k, want } => match &vals[attr.index()] {
                Value::Str(v) => bytes_eq(v.as_bytes(), k.as_bytes()) == *want,
                _ => false,
            },
            Leaf::StrOrd { attr, op, k } => match &vals[attr.index()] {
                Value::Str(v) => ord_holds(*op, v.as_str().cmp(k)),
                _ => false,
            },
            Leaf::Any { attr, op, k } => op.apply(&vals[attr.index()], k),
        }
    }
}

/// A flattened, reusable evaluation plan for one compiled [`Pred`].
///
/// Compile once per (pattern, class) — [`ListPattern`](crate::list::ListPattern)
/// does this at pattern-compile time, so cached patterns carry their
/// batch programs and bulk member loops never rebuild them.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchProgram {
    class: ClassId,
    ops: Vec<BatchOp>,
    /// Stack slots needed by the postfix program.
    depth: usize,
    /// When the whole predicate is a conjunction of comparison leaves
    /// (the shape every extent-scan select and most alphabet symbols
    /// take), evaluation fuses into a single short-circuiting pass —
    /// one dereference per element, verdict words written straight into
    /// the output row, no gather scratch.
    conj: Option<Vec<Leaf>>,
}

impl BatchProgram {
    /// Flatten `pred` into a postfix program.
    pub fn compile(pred: &Pred) -> BatchProgram {
        let mut ops = Vec::new();
        flatten(pred.node(), &mut ops);
        let mut depth = 0usize;
        let mut cur = 0usize;
        for op in &ops {
            match op {
                BatchOp::True | BatchOp::Cmp { .. } => cur += 1,
                BatchOp::And | BatchOp::Or => cur -= 1,
                BatchOp::Not => {}
            }
            depth = depth.max(cur);
        }
        let mut leaves = Vec::new();
        let conj = conjunction_of(pred.node(), &mut leaves).then_some(leaves);
        BatchProgram {
            class: pred.class(),
            ops,
            depth,
            conj,
        }
    }

    /// The class this program tests against.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Whether this is the class-agnostic `?` program (root `True`).
    pub fn is_always(&self) -> bool {
        self.ops == [BatchOp::True]
    }

    /// Evaluate over `oids`, writing one verdict bit per element into
    /// `out` (resized to `oids.len()`). Bit-identical to calling
    /// [`Pred::eval`] per element. Charges `oids.len()` guard steps in
    /// [`CHUNK`]-sized batches.
    pub fn eval_into(
        &self,
        store: &ObjectStore,
        oids: &[Oid],
        guard: Option<&ExecGuard>,
        out: &mut BitRow,
    ) -> Result<(), GuardError> {
        out.reset(oids.len());
        if self.is_always() {
            // `?` is class-agnostic: every element passes.
            steps_n(guard, oids.len() as u64)?;
            for w in out.words.iter_mut() {
                *w = u64::MAX;
            }
            out.mask_tail();
            return Ok(());
        }
        if let Some(leaves) = &self.conj {
            for (chunk_idx, chunk) in oids.chunks(CHUNK).enumerate() {
                steps_n(guard, chunk.len() as u64)?;
                let base = chunk_idx * (CHUNK / 64);
                eval_conj_chunk(store, self.class, leaves, chunk, &mut out.words[base..]);
            }
            out.mask_tail();
            return Ok(());
        }
        let mut scratch = EvalScratch::new(self.depth);
        for (chunk_idx, chunk) in oids.chunks(CHUNK).enumerate() {
            steps_n(guard, chunk.len() as u64)?;
            let verdicts = self.eval_chunk(store, chunk, &mut scratch);
            let base = chunk_idx * (CHUNK / 64);
            out.words[base..base + chunk.len().div_ceil(64)]
                .copy_from_slice(&verdicts[..chunk.len().div_ceil(64)]);
        }
        out.mask_tail();
        Ok(())
    }

    /// Evaluate over `oids` into a fresh row.
    pub fn eval(
        &self,
        store: &ObjectStore,
        oids: &[Oid],
        guard: Option<&ExecGuard>,
    ) -> Result<BitRow, GuardError> {
        let mut out = BitRow::default();
        self.eval_into(store, oids, guard, &mut out)?;
        Ok(out)
    }

    /// Run the postfix program over one chunk; returns the top of stack
    /// ANDed with the class mask.
    fn eval_chunk<'a, 's>(
        &self,
        store: &'a ObjectStore,
        chunk: &[Oid],
        scratch: &'s mut EvalScratch<'a>,
    ) -> &'s [u64; WORDS] {
        // Dereference each element once: the attribute columns of every
        // comparison leaf come from the same object row.
        scratch.values.clear();
        let mut class_ok = [0u64; WORDS];
        for (i, &oid) in chunk.iter().enumerate() {
            let obj = store.deref(oid);
            if obj.class() == self.class {
                class_ok[i / 64] |= 1u64 << (i % 64);
                scratch.values.push(Some(obj.values()));
            } else {
                scratch.values.push(None);
            }
        }
        let mut sp = 0usize;
        for op in &self.ops {
            match op {
                BatchOp::True => {
                    scratch.stack[sp] = [u64::MAX; WORDS];
                    sp += 1;
                }
                BatchOp::Cmp { attr, op, constant } => {
                    let row = &mut scratch.stack[sp];
                    *row = [0u64; WORDS];
                    cmp_column(&scratch.values, attr.index(), *op, constant, row);
                    sp += 1;
                }
                BatchOp::And => {
                    sp -= 1;
                    let (lo, hi) = scratch.stack.split_at_mut(sp);
                    let dst = &mut lo[sp - 1];
                    for (a, b) in dst.iter_mut().zip(hi[0].iter()) {
                        *a &= b;
                    }
                }
                BatchOp::Or => {
                    sp -= 1;
                    let (lo, hi) = scratch.stack.split_at_mut(sp);
                    let dst = &mut lo[sp - 1];
                    for (a, b) in dst.iter_mut().zip(hi[0].iter()) {
                        *a |= b;
                    }
                }
                BatchOp::Not => {
                    for w in scratch.stack[sp - 1].iter_mut() {
                        *w = !*w;
                    }
                }
            }
        }
        debug_assert_eq!(sp, 1);
        // Scalar semantics: a wrong-class element fails every
        // non-trivial predicate, however the connectives fold — mask
        // last so `NOT` cannot resurrect one.
        let top = &mut scratch.stack[0];
        for (a, b) in top.iter_mut().zip(class_ok.iter()) {
            *a &= b;
        }
        top
    }
}

/// Words per evaluation chunk.
const WORDS: usize = CHUNK / 64;

/// Reused per-call evaluation state: the postfix value stack and the
/// per-chunk dereferenced attribute rows (borrowed from the store for
/// the duration of one `eval_into`).
struct EvalScratch<'a> {
    stack: Vec<[u64; WORDS]>,
    values: Vec<Option<&'a [Value]>>,
}

impl<'a> EvalScratch<'a> {
    fn new(depth: usize) -> EvalScratch<'a> {
        EvalScratch {
            stack: vec![[0u64; WORDS]; depth.max(1)],
            values: Vec::with_capacity(CHUNK),
        }
    }
}

/// Collect the comparison leaves of a pure AND-tree into `out`;
/// `false` (and `out` garbage) if the predicate contains OR or NOT.
/// Bare `True` nodes contribute no leaf — an empty conjunction passes
/// every right-class element, which is exactly what the postfix program
/// computes for the same shape (class mask ANDed last).
fn conjunction_of(node: &PredNode, out: &mut Vec<Leaf>) -> bool {
    match node {
        PredNode::True => true,
        PredNode::Cmp { attr, op, constant } => {
            out.push(Leaf::new(*attr, *op, constant));
            true
        }
        PredNode::And(a, b) => conjunction_of(a, out) && conjunction_of(b, out),
        PredNode::Or(..) | PredNode::Not(..) => false,
    }
}

/// The fused conjunction pass over one chunk: dereference each element
/// once, short-circuit the leaves, pack verdicts into a register word
/// per 64-element group, store each word once. A wrong-class element
/// fails the (non-trivial) conjunction outright, which is the same
/// verdict the postfix path's final class mask produces.
fn eval_conj_chunk(
    store: &ObjectStore,
    class: ClassId,
    leaves: &[Leaf],
    chunk: &[Oid],
    out: &mut [u64],
) {
    // One- and two-leaf conjunctions (most alphabet symbols, most
    // extent-scan selects) get monomorphic loops: the leaf kinds are
    // loop-invariant, so the per-element dispatch hoists out.
    match leaves {
        [a] => conj_loop(store, class, chunk, out, |vals| a.test(vals)),
        [a, b] => conj_loop(store, class, chunk, out, |vals| {
            a.test(vals) && b.test(vals)
        }),
        _ => conj_loop(store, class, chunk, out, |vals| {
            leaves.iter().all(|l| l.test(vals))
        }),
    }
}

/// The fused loop body behind [`eval_conj_chunk`].
#[inline(always)]
fn conj_loop(
    store: &ObjectStore,
    class: ClassId,
    chunk: &[Oid],
    out: &mut [u64],
    test: impl Fn(&[Value]) -> bool,
) {
    for (w, group) in chunk.chunks(64).enumerate() {
        let mut bits = 0u64;
        for (j, &oid) in group.iter().enumerate() {
            let obj = store.deref(oid);
            let ok = obj.class() == class && test(obj.values());
            bits |= (ok as u64) << j;
        }
        out[w] = bits;
    }
}

/// One comparison leaf over a chunk's dereferenced value rows. The
/// constant's type is matched once out here, so the per-element loop is
/// a monomorphic compare instead of a [`Value::try_cmp`] double
/// dispatch. Wrong-class rows (`None`) are skipped entirely: their
/// attribute layout need not contain `ai`.
fn cmp_column(
    values: &[Option<&[Value]>],
    ai: usize,
    op: CmpOp,
    constant: &Value,
    row: &mut [u64; WORDS],
) {
    match constant {
        Value::Int(k) => fill(values, row, |vals| match &vals[ai] {
            Value::Int(v) => ord_holds(op, v.cmp(k)),
            other => op.apply(other, constant),
        }),
        Value::Str(k) if matches!(op, CmpOp::Eq | CmpOp::Ne) => {
            let kb = k.as_bytes();
            let want_eq = op == CmpOp::Eq;
            fill(values, row, |vals| match &vals[ai] {
                Value::Str(v) => bytes_eq(v.as_bytes(), kb) == want_eq,
                other => op.apply(other, constant),
            })
        }
        Value::Str(k) => fill(values, row, |vals| match &vals[ai] {
            Value::Str(v) => ord_holds(op, v.as_str().cmp(k.as_str())),
            other => op.apply(other, constant),
        }),
        _ => fill(values, row, |vals| op.apply(&vals[ai], constant)),
    }
}

/// Byte-slice equality as an inlinable loop: alphabet labels are short
/// (often one character), where a `memcmp` call costs more than the
/// compare itself.
#[inline(always)]
fn bytes_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut eq = true;
    for i in 0..a.len() {
        eq &= a[i] == b[i];
    }
    eq
}

/// Set bit `i` of `row` for every present row where `f` holds. Verdicts
/// accumulate in a register word per 64-element group — one store per
/// word instead of a read-modify-write per element.
#[inline(always)]
fn fill(values: &[Option<&[Value]>], row: &mut [u64; WORDS], f: impl Fn(&[Value]) -> bool) {
    for (w, group) in values.chunks(64).enumerate() {
        let mut bits = 0u64;
        for (j, vals) in group.iter().enumerate() {
            if let Some(vals) = vals {
                if f(vals) {
                    bits |= 1u64 << j;
                }
            }
        }
        row[w] = bits;
    }
}

/// Whether `ord` satisfies `op` — the tail of [`CmpOp::apply`] for a
/// comparison already known to be defined.
#[inline(always)]
fn ord_holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Postorder flattening of the predicate tree.
fn flatten(node: &PredNode, out: &mut Vec<BatchOp>) {
    match node {
        PredNode::True => out.push(BatchOp::True),
        PredNode::Cmp { attr, op, constant } => out.push(BatchOp::Cmp {
            attr: *attr,
            op: *op,
            constant: constant.clone(),
        }),
        PredNode::And(a, b) => {
            flatten(a, out);
            flatten(b, out);
            out.push(BatchOp::And);
        }
        PredNode::Or(a, b) => {
            flatten(a, out);
            flatten(b, out);
            out.push(BatchOp::Or);
        }
        PredNode::Not(a) => {
            flatten(a, out);
            out.push(BatchOp::Not);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::PredExpr;
    use aqua_guard::{Budget, Resource};
    use aqua_object::{AttrDef, AttrType, ClassDef};

    fn setup() -> (ObjectStore, ClassId) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(
                ClassDef::new(
                    "Person",
                    vec![
                        AttrDef::stored("name", AttrType::Str),
                        AttrDef::stored("age", AttrType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        (s, c)
    }

    fn people(s: &mut ObjectStore, n: usize) -> Vec<Oid> {
        (0..n)
            .map(|i| {
                s.insert_named(
                    "Person",
                    &[
                        ("name", Value::str(format!("p{i}"))),
                        ("age", Value::Int((i % 90) as i64)),
                    ],
                )
                .unwrap()
            })
            .collect()
    }

    /// Every predicate shape agrees with the scalar evaluator bit for
    /// bit, across chunk boundaries.
    #[test]
    fn batched_equals_scalar() {
        let (mut s, c) = setup();
        let oids = people(&mut s, 2500);
        let exprs = vec![
            PredExpr::True,
            PredExpr::cmp("age", CmpOp::Gt, 40),
            PredExpr::cmp("age", CmpOp::Gt, 10).and(PredExpr::cmp("age", CmpOp::Le, 60)),
            PredExpr::eq("name", "p7").or(PredExpr::cmp("age", CmpOp::Lt, 3)),
            PredExpr::cmp("age", CmpOp::Ge, 30).not(),
            PredExpr::cmp("age", CmpOp::Ne, 5)
                .and(PredExpr::eq("name", "p5").not())
                .or(PredExpr::True.not()),
        ];
        for e in exprs {
            let p = e.compile(c, s.class(c)).unwrap();
            let prog = BatchProgram::compile(&p);
            let row = prog.eval(&s, &oids, None).unwrap();
            for (i, &oid) in oids.iter().enumerate() {
                assert_eq!(row.get(i), p.eval(&s, oid), "expr {e:?} element {i}");
            }
            assert_eq!(row.count_ones(), row.ones().count());
        }
    }

    /// Wrong-class elements fail every non-trivial predicate — even
    /// under NOT — but pass the class-agnostic `?`.
    #[test]
    fn class_mask_matches_scalar() {
        let (mut s, c) = setup();
        s.define_class(ClassDef::new("Dog", vec![AttrDef::stored("tag", AttrType::Int)]).unwrap())
            .unwrap();
        let mut oids = people(&mut s, 70);
        let dog = s.insert_named("Dog", &[("tag", Value::Int(1))]).unwrap();
        oids.insert(33, dog);
        for e in [
            PredExpr::cmp("age", CmpOp::Ge, 0),
            // NOT(age >= 0): scalarly false for people, and must stay
            // false for the dog despite the inner row being 0 there.
            PredExpr::cmp("age", CmpOp::Ge, 0).not(),
            PredExpr::True,
        ] {
            let p = e.compile(c, s.class(c)).unwrap();
            let row = BatchProgram::compile(&p).eval(&s, &oids, None).unwrap();
            for (i, &oid) in oids.iter().enumerate() {
                assert_eq!(row.get(i), p.eval(&s, oid), "expr {e:?} element {i}");
            }
        }
    }

    /// Chunked guard accounting: totals exact, budget trips within one
    /// chunk of its limit.
    #[test]
    fn guard_charging_is_chunked_and_exact() {
        let (mut s, c) = setup();
        let oids = people(&mut s, 3000);
        let p = PredExpr::cmp("age", CmpOp::Gt, 1)
            .compile(c, s.class(c))
            .unwrap();
        let prog = BatchProgram::compile(&p);

        let g = ExecGuard::new(Budget::unlimited());
        prog.eval(&s, &oids, Some(&g)).unwrap();
        assert_eq!(g.snapshot().steps, 3000, "one step per element, exactly");

        let g = ExecGuard::new(Budget::unlimited().with_steps(1500));
        let err = prog.eval(&s, &oids, Some(&g)).unwrap_err();
        match err {
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                progress,
                ..
            } => {
                assert!(
                    progress.steps <= 1500 + CHUNK as u64,
                    "tripped within one chunk: {}",
                    progress.steps
                );
            }
            other => panic!("expected step-budget trip, got {other:?}"),
        }
    }

    #[test]
    fn bitrow_basics() {
        let mut r = BitRow::zeros(130);
        assert_eq!(r.len(), 130);
        assert!(!r.is_empty());
        r.set(0);
        r.set(64);
        r.set(129);
        assert_eq!(r.count_ones(), 3);
        assert_eq!(r.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut other = BitRow::zeros(130);
        other.set(64);
        let mut and = r.clone();
        and.and_assign(&other);
        assert_eq!(and.ones().collect::<Vec<_>>(), vec![64]);
        let mut or = other.clone();
        or.or_assign(&r);
        assert_eq!(or.count_ones(), 3);
    }
}
