//! # aqua-pattern — predicate languages for lists and trees
//!
//! Implements §3 of the AQUA paper: alphabet-predicates, list patterns
//! (regular expressions over alphabet-predicates, with anchors `^`/`$`
//! and the prune marker `!`), and tree patterns (regular tree
//! expressions with concatenation points `α_i`, the root anchor `⊤`, and
//! the leaf anchor `⊥`).
//!
//! Layering:
//!
//! * [`alphabet`] — alphabet-predicates: `λ(Person) Person.age > 25`,
//!   restricted to stored attributes / constants / comparisons / boolean
//!   connectives so evaluation is O(1).
//! * [`ast`] / [`nfa`] / [`pike`] — a generic regex engine: shared by
//!   list patterns and by the child lists of tree patterns.
//! * [`list`] — list patterns and sublist matching (§3.2, §6).
//! * [`tree_ast`] / [`tree_match`] — tree patterns with concatenation
//!   points and subgraph matching (§3.3–§3.5).
//! * [`parser`] — a text syntax for both pattern languages, mirroring the
//!   paper's notation in ASCII (`@a` for `α`, `^` for `⊤`, `$` for `⊥`).
//! * [`decompose`] — pattern decomposition hooks used by the optimizer
//!   (extract an index-usable root/prefix predicate, split conjunctions).

pub mod alphabet;
pub mod ast;
pub mod batch;
pub mod cache;
pub mod decompose;
pub mod dfa;
pub mod error;
pub mod list;
pub mod nfa;
pub mod parser;
pub mod pike;
pub mod tree_ast;
pub mod tree_match;

pub use alphabet::{CmpOp, Pred, PredExpr};
pub use ast::Re;
pub use batch::{BatchProgram, BitRow};
pub use cache::PatternCache;
pub use error::{PatternError, Result};
pub use list::{ListMatch, ListPattern, MatchMode};
pub use tree_ast::{CcLabel, TreePat, TreePattern};
