//! Generic regular-expression AST.
//!
//! Both pattern languages of the paper are regular expressions at heart:
//! list patterns are regexes whose alphabet is alphabet-predicates
//! (§3.2), and the children of a tree-pattern node are described by a
//! regex whose alphabet is tree patterns (§3.3: "Since we use the list
//! language to specify the children of any node…"). [`Re<L>`] is that
//! shared shape, generic over the leaf alphabet `L`.
//!
//! The `!` prune marker (§3.4) is represented structurally as
//! [`Re::Prune`]; during NFA compilation every leaf inherits a static
//! "inside a prune group" flag, because whether a consumed element is
//! pruned from the result is a syntactic property of the leaf that
//! matched it.

use std::fmt;

/// A regular expression over leaf alphabet `L`.
#[derive(Debug, Clone, PartialEq)]
pub enum Re<L> {
    /// A single alphabet symbol.
    Leaf(L),
    /// ε — matches the empty sequence.
    Empty,
    /// Concatenation, left to right (`∘`, usually written by juxtaposition).
    Concat(Vec<Re<L>>),
    /// Disjunction (`|`).
    Alt(Vec<Re<L>>),
    /// Kleene closure, zero or more (`*`).
    Star(Box<Re<L>>),
    /// One or more (`+`).
    Plus(Box<Re<L>>),
    /// `!` prefix: everything matched by the subexpression is pruned from
    /// the returned instance and reattached as a descendant piece.
    Prune(Box<Re<L>>),
}

impl<L> Re<L> {
    /// Concatenate, flattening nested concatenations.
    pub fn then(self, next: Re<L>) -> Re<L> {
        match (self, next) {
            (Re::Concat(mut a), Re::Concat(b)) => {
                a.extend(b);
                Re::Concat(a)
            }
            (Re::Concat(mut a), b) => {
                a.push(b);
                Re::Concat(a)
            }
            (a, Re::Concat(mut b)) => {
                b.insert(0, a);
                Re::Concat(b)
            }
            (a, b) => Re::Concat(vec![a, b]),
        }
    }

    /// Disjunction, flattening nested alternations.
    pub fn or(self, other: Re<L>) -> Re<L> {
        match (self, other) {
            (Re::Alt(mut a), Re::Alt(b)) => {
                a.extend(b);
                Re::Alt(a)
            }
            (Re::Alt(mut a), b) => {
                a.push(b);
                Re::Alt(a)
            }
            (a, Re::Alt(mut b)) => {
                b.insert(0, a);
                Re::Alt(b)
            }
            (a, b) => Re::Alt(vec![a, b]),
        }
    }

    /// Kleene closure (zero or more).
    pub fn star(self) -> Re<L> {
        Re::Star(Box::new(self))
    }

    /// One or more.
    pub fn plus(self) -> Re<L> {
        Re::Plus(Box::new(self))
    }

    /// Mark as pruned (`!`).
    pub fn prune(self) -> Re<L> {
        Re::Prune(Box::new(self))
    }

    /// Visit all leaves left to right.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a L)) {
        match self {
            Re::Leaf(l) => f(l),
            Re::Empty => {}
            Re::Concat(xs) | Re::Alt(xs) => xs.iter().for_each(|x| x.for_each_leaf(f)),
            Re::Star(x) | Re::Plus(x) | Re::Prune(x) => x.for_each_leaf(f),
        }
    }

    /// Map the leaf alphabet.
    pub fn map_leaves<M>(&self, f: &mut impl FnMut(&L) -> M) -> Re<M> {
        match self {
            Re::Leaf(l) => Re::Leaf(f(l)),
            Re::Empty => Re::Empty,
            Re::Concat(xs) => Re::Concat(xs.iter().map(|x| x.map_leaves(f)).collect()),
            Re::Alt(xs) => Re::Alt(xs.iter().map(|x| x.map_leaves(f)).collect()),
            Re::Star(x) => Re::Star(Box::new(x.map_leaves(f))),
            Re::Plus(x) => Re::Plus(Box::new(x.map_leaves(f))),
            Re::Prune(x) => Re::Prune(Box::new(x.map_leaves(f))),
        }
    }

    /// Whether the language of this expression contains the empty
    /// sequence, given per-leaf nullability (a leaf symbol may itself be
    /// able to match "nothing" — e.g. a concatenation point whose
    /// enclosing closure has terminated; see paper §3.5).
    pub fn nullable(&self, leaf_nullable: &impl Fn(&L) -> bool) -> bool {
        match self {
            Re::Leaf(l) => leaf_nullable(l),
            Re::Empty | Re::Star(_) => true,
            Re::Concat(xs) => xs.iter().all(|x| x.nullable(leaf_nullable)),
            Re::Alt(xs) => xs.iter().any(|x| x.nullable(leaf_nullable)),
            Re::Plus(x) | Re::Prune(x) => x.nullable(leaf_nullable),
        }
    }
}

impl<L: fmt::Display> Re<L> {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, ambient: u8) -> fmt::Result {
        // precedence: Alt=0, Concat=1, postfix/prefix=2
        let prec = match self {
            Re::Alt(_) => 0,
            Re::Concat(_) => 1,
            _ => 2,
        };
        let need_group = prec < ambient;
        if need_group {
            write!(f, "[[")?;
        }
        match self {
            Re::Leaf(l) => write!(f, "{l}")?,
            // The empty regex renders as nothing, matching the parser's
            // treatment of an empty child list `a()`.
            Re::Empty => {}
            Re::Concat(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    x.fmt_prec(f, 2)?;
                }
            }
            Re::Alt(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    x.fmt_prec(f, 1)?;
                }
            }
            Re::Star(x) => {
                x.fmt_prec(f, 2)?;
                write!(f, "*")?;
            }
            Re::Plus(x) => {
                x.fmt_prec(f, 2)?;
                write!(f, "+")?;
            }
            Re::Prune(x) => {
                write!(f, "!")?;
                x.fmt_prec(f, 2)?;
            }
        }
        if need_group {
            write!(f, "]]")?;
        }
        Ok(())
    }
}

impl<L: fmt::Display> fmt::Display for Re<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(c: char) -> Re<char> {
        Re::Leaf(c)
    }

    #[test]
    fn builders_flatten() {
        let e = leaf('a').then(leaf('b')).then(leaf('c'));
        assert!(matches!(&e, Re::Concat(xs) if xs.len() == 3));
        let o = leaf('a').or(leaf('b')).or(leaf('c'));
        assert!(matches!(&o, Re::Alt(xs) if xs.len() == 3));
    }

    #[test]
    fn nullability() {
        let never = |_: &char| false;
        assert!(Re::<char>::Empty.nullable(&never));
        assert!(leaf('a').star().nullable(&never));
        assert!(!leaf('a').plus().nullable(&never));
        assert!(!leaf('a').then(Re::Empty).nullable(&never));
        assert!(leaf('a').star().then(Re::Empty).nullable(&never));
        assert!(leaf('a').or(Re::Empty).nullable(&never));
        // leaf-level nullability propagates
        assert!(leaf('a').plus().nullable(&|_| true));
    }

    #[test]
    fn leaf_iteration_order() {
        let e = leaf('a')
            .then(leaf('b').or(leaf('c')).star())
            .then(leaf('d').prune());
        let mut seen = Vec::new();
        e.for_each_leaf(&mut |l| seen.push(*l));
        assert_eq!(seen, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn map_preserves_shape() {
        let e = leaf('a').then(leaf('b')).star();
        let m = e.map_leaves(&mut |c| c.to_ascii_uppercase());
        assert_eq!(m.to_string(), "[[A B]]*");
    }

    #[test]
    fn display_uses_paper_grouping() {
        let e = leaf('a').or(leaf('b')).then(leaf('c')).star();
        assert_eq!(e.to_string(), "[[[[a|b]] c]]*");
        assert_eq!(leaf('x').prune().to_string(), "!x");
    }
}
