//! A compiled-pattern cache.
//!
//! Compiling a pattern — resolving alphabet-predicates against the
//! class, eliminating `∘_α`, building the child-list NFAs (trees) or the
//! Pike-VM NFA (lists) — is pure per `(pattern, class)` and independent
//! of the subject data, so a bulk operator over a `Set[Tree]` /
//! `Set[List]` need compile each pattern exactly once, not once per
//! member. [`PatternCache`] memoizes compilations behind `Arc`s: the
//! serial loops reuse them across calls, and parallel workers share them
//! `&`-only across threads (compiled patterns are plain data — no
//! interior mutability).
//!
//! Keys are `(class, anchors, Debug-encoded AST)`. The *Debug* form —
//! not `Display` — because rendered pattern text is ambiguous: attr
//! names are arbitrary strings that `Display` interpolates raw, so an
//! attr literally named `x = 1} {y` renders the one-leaf pattern
//! `{x = 1} {y = 1}` byte-identical to the two-leaf concatenation
//! `{x = 1}{y = 1}`'s display. Debug encoding carries variant names and
//! escapes string literals, so structurally different ASTs never
//! collide; anchors travel as separate key fields rather than rendered
//! sigils for the same reason.
//!
//! When a [`Metrics`] sink is
//! [attached](PatternCache::attach_metrics), lookups/hits/misses are
//! mirrored into its `cache_*` counters so execution snapshots report
//! cache effectiveness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use aqua_object::{ClassDef, ClassId};
use aqua_obs::Metrics;

use crate::ast::Re;
use crate::error::Result;
use crate::list::{ListPattern, Sym};
use crate::tree_ast::{CompiledTreePattern, TreePattern};

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// List-pattern cache key: `(class, anchor_start, anchor_end, Debug AST)`.
type ListKey = (ClassId, bool, bool, String);

/// Thread-safe memo of compiled tree and list patterns.
///
/// Shareable across threads (`Mutex` inside); misses compile under the
/// lock, hits clone an `Arc`. Compilation is cheap relative to matching
/// but not free — the win is structural: bulk calls stop paying it per
/// member, repeated queries stop paying it at all.
#[derive(Debug, Default)]
pub struct PatternCache {
    trees: Mutex<HashMap<(ClassId, String), Arc<CompiledTreePattern>>>,
    lists: Mutex<HashMap<ListKey, Arc<ListPattern>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    lookups: AtomicU64,
    obs: OnceLock<Metrics>,
}

impl PatternCache {
    /// An empty cache.
    pub fn new() -> PatternCache {
        PatternCache::default()
    }

    /// Mirror this cache's traffic into `sink`'s `cache_*` counters.
    /// The first attached sink wins; returns `false` if one was already
    /// attached.
    pub fn attach_metrics(&self, sink: Metrics) -> bool {
        self.obs.set(sink).is_ok()
    }

    /// Account one lookup and its outcome, on both the local counters
    /// and any attached sink.
    fn account(&self, hit: bool) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let ctr = if hit { &self.hits } else { &self.misses };
        ctr.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.cache_lookups.inc();
            if hit {
                m.cache_hits.inc();
            } else {
                m.cache_misses.inc();
            }
        }
    }

    /// The compiled form of `pattern` against `class`, compiling on
    /// first sight. Anchors are part of the Debug encoding
    /// (`at_root`/`at_leaves` fields), so anchored variants key apart.
    pub fn tree(
        &self,
        pattern: &TreePattern,
        class_id: ClassId,
        class: &ClassDef,
    ) -> Result<Arc<CompiledTreePattern>> {
        let key = (class_id, format!("{pattern:?}"));
        let mut map = lock(&self.trees);
        if let Some(hit) = map.get(&key) {
            self.account(true);
            return Ok(Arc::clone(hit));
        }
        self.account(false);
        let compiled = Arc::new(pattern.compile(class_id, class)?);
        map.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// The compiled form of the list pattern `(re, anchors)` against
    /// `class`, compiling on first sight. Anchors are distinct key
    /// fields — never folded into the pattern text.
    pub fn list(
        &self,
        re: &Re<Sym>,
        anchor_start: bool,
        anchor_end: bool,
        class_id: ClassId,
        class: &ClassDef,
    ) -> Result<Arc<ListPattern>> {
        let key = (class_id, anchor_start, anchor_end, format!("{re:?}"));
        let mut map = lock(&self.lists);
        if let Some(hit) = map.get(&key) {
            self.account(true);
            return Ok(Arc::clone(hit));
        }
        self.account(false);
        let compiled = Arc::new(ListPattern::compile(
            re.clone(),
            anchor_start,
            anchor_end,
            class_id,
            class,
        )?);
        map.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total lookups so far (`hits() + misses()`, maintained exactly).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of distinct compiled patterns held.
    pub fn len(&self) -> usize {
        lock(&self.trees).len() + lock(&self.lists).len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
    use aqua_object::{AttrDef, AttrType, ObjectStore};

    fn store_with_class() -> (ObjectStore, ClassId) {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        (store, class)
    }

    #[test]
    fn tree_patterns_compile_once() {
        let (store, class) = store_with_class();
        let env = PredEnv::with_default_attr("label");
        let p = parse_tree_pattern("a(b c)", &env).unwrap();
        let cache = PatternCache::new();
        let c1 = cache.tree(&p, class, store.class(class)).unwrap();
        let c2 = cache.tree(&p, class, store.class(class)).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn anchors_are_distinct_keys() {
        let (store, class) = store_with_class();
        let env = PredEnv::with_default_attr("label");
        let plain = parse_tree_pattern("a", &env).unwrap();
        let rooted = parse_tree_pattern("a", &env).unwrap().anchored_root();
        let cache = PatternCache::new();
        cache.tree(&plain, class, store.class(class)).unwrap();
        cache.tree(&rooted, class, store.class(class)).unwrap();
        assert_eq!(cache.misses(), 2);

        let (re, _, _) = parse_list_pattern("[A B]", &env).unwrap();
        let l1 = cache
            .list(&re, false, false, class, store.class(class))
            .unwrap();
        let l2 = cache
            .list(&re, true, false, class, store.class(class))
            .unwrap();
        let l3 = cache
            .list(&re, false, false, class, store.class(class))
            .unwrap();
        assert!(!Arc::ptr_eq(&l1, &l2));
        assert!(Arc::ptr_eq(&l1, &l3));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn identical_render_distinct_ast_do_not_collide() {
        use crate::alphabet::PredExpr;
        use aqua_object::ObjectStore;

        // Attr names are arbitrary strings and `Display` interpolates
        // them raw, so an attr literally named `x = 1} {y` makes this
        // one-leaf pattern render byte-identical to the two-leaf
        // concatenation below. A text-keyed cache would hand one
        // compilation to both queries; Debug-encoded keys must not.
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new(
                    "N",
                    vec![
                        AttrDef::stored("x", AttrType::Int),
                        AttrDef::stored("y", AttrType::Int),
                        AttrDef::stored("x = 1} {y", AttrType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let leaf = |p: PredExpr| Re::Leaf(Sym::Pred(p));
        let one = leaf(PredExpr::eq("x = 1} {y", 1));
        let two = leaf(PredExpr::eq("x", 1)).then(leaf(PredExpr::eq("y", 1)));
        assert_eq!(one.to_string(), two.to_string(), "the trap is real");

        let cache = PatternCache::new();
        let c1 = cache
            .list(&one, false, false, class, store.class(class))
            .unwrap();
        let c2 = cache
            .list(&two, false, false, class, store.class(class))
            .unwrap();
        assert!(
            !Arc::ptr_eq(&c1, &c2),
            "identically-rendered patterns must not share a compilation"
        );
        assert_eq!(cache.misses(), 2, "two distinct compilations");
        assert_eq!(c1.leaves().len(), 1, "one-leaf NFA");
        assert_eq!(c2.leaves().len(), 2, "two-leaf NFA");
        assert_eq!(cache.lookups(), cache.hits() + cache.misses());
    }

    #[test]
    fn metrics_mirror_cache_traffic() {
        let (store, class) = store_with_class();
        let env = PredEnv::with_default_attr("label");
        let p = parse_tree_pattern("a(b)", &env).unwrap();
        let cache = PatternCache::new();
        let sink = Metrics::new();
        assert!(cache.attach_metrics(sink.clone()));
        assert!(!cache.attach_metrics(Metrics::new()), "first sink wins");
        for _ in 0..3 {
            cache.tree(&p, class, store.class(class)).unwrap();
        }
        let s = sink.snapshot();
        assert_eq!(s.cache_lookups, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_hits + s.cache_misses, s.cache_lookups);
    }

    #[test]
    fn shared_across_threads() {
        let (store, class) = store_with_class();
        let env = PredEnv::with_default_attr("label");
        let p = parse_tree_pattern("x(y*)", &env).unwrap();
        let cache = PatternCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (cache, p, store) = (&cache, &p, &store);
                s.spawn(move || {
                    for _ in 0..10 {
                        cache.tree(p, class, store.class(class)).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.misses(), 1, "one compilation across the fleet");
        assert_eq!(cache.hits(), 39);
    }
}
