//! A compiled-pattern cache.
//!
//! Compiling a pattern — resolving alphabet-predicates against the
//! class, eliminating `∘_α`, building the child-list NFAs (trees) or the
//! Pike-VM NFA (lists) — is pure per `(pattern, class)` and independent
//! of the subject data, so a bulk operator over a `Set[Tree]` /
//! `Set[List]` need compile each pattern exactly once, not once per
//! member. [`PatternCache`] memoizes compilations behind `Arc`s: the
//! serial loops reuse them across calls, and parallel workers share them
//! `&`-only across threads (compiled patterns are plain data — no
//! interior mutability).
//!
//! Keys are `(class, rendered pattern text)`: the `Display` forms of
//! [`TreePattern`] and list regexes are round-trip faithful (anchors
//! included), which makes them stable, hashable identities without
//! requiring `Hash` on the ASTs themselves.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use aqua_object::{ClassDef, ClassId};

use crate::ast::Re;
use crate::error::Result;
use crate::list::{ListPattern, Sym};
use crate::tree_ast::{CompiledTreePattern, TreePattern};

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Thread-safe memo of compiled tree and list patterns.
///
/// Shareable across threads (`Mutex` inside); misses compile under the
/// lock, hits clone an `Arc`. Compilation is cheap relative to matching
/// but not free — the win is structural: bulk calls stop paying it per
/// member, repeated queries stop paying it at all.
#[derive(Debug, Default)]
pub struct PatternCache {
    trees: Mutex<HashMap<(ClassId, String), Arc<CompiledTreePattern>>>,
    lists: Mutex<HashMap<(ClassId, String), Arc<ListPattern>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PatternCache {
    /// An empty cache.
    pub fn new() -> PatternCache {
        PatternCache::default()
    }

    /// The compiled form of `pattern` against `class`, compiling on
    /// first sight.
    pub fn tree(
        &self,
        pattern: &TreePattern,
        class_id: ClassId,
        class: &ClassDef,
    ) -> Result<Arc<CompiledTreePattern>> {
        let key = (class_id, pattern.to_string());
        let mut map = lock(&self.trees);
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(pattern.compile(class_id, class)?);
        map.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// The compiled form of the list pattern `(re, anchors)` against
    /// `class`, compiling on first sight.
    pub fn list(
        &self,
        re: &Re<Sym>,
        anchor_start: bool,
        anchor_end: bool,
        class_id: ClassId,
        class: &ClassDef,
    ) -> Result<Arc<ListPattern>> {
        let key = (
            class_id,
            format!(
                "{}{re}{}",
                if anchor_start { "^" } else { "" },
                if anchor_end { "$" } else { "" }
            ),
        );
        let mut map = lock(&self.lists);
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(ListPattern::compile(
            re.clone(),
            anchor_start,
            anchor_end,
            class_id,
            class,
        )?);
        map.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct compiled patterns held.
    pub fn len(&self) -> usize {
        lock(&self.trees).len() + lock(&self.lists).len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
    use aqua_object::{AttrDef, AttrType, ObjectStore};

    fn store_with_class() -> (ObjectStore, ClassId) {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        (store, class)
    }

    #[test]
    fn tree_patterns_compile_once() {
        let (store, class) = store_with_class();
        let env = PredEnv::with_default_attr("label");
        let p = parse_tree_pattern("a(b c)", &env).unwrap();
        let cache = PatternCache::new();
        let c1 = cache.tree(&p, class, store.class(class)).unwrap();
        let c2 = cache.tree(&p, class, store.class(class)).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn anchors_are_distinct_keys() {
        let (store, class) = store_with_class();
        let env = PredEnv::with_default_attr("label");
        let plain = parse_tree_pattern("a", &env).unwrap();
        let rooted = parse_tree_pattern("a", &env).unwrap().anchored_root();
        let cache = PatternCache::new();
        cache.tree(&plain, class, store.class(class)).unwrap();
        cache.tree(&rooted, class, store.class(class)).unwrap();
        assert_eq!(cache.misses(), 2);

        let (re, _, _) = parse_list_pattern("[A B]", &env).unwrap();
        let l1 = cache
            .list(&re, false, false, class, store.class(class))
            .unwrap();
        let l2 = cache
            .list(&re, true, false, class, store.class(class))
            .unwrap();
        let l3 = cache
            .list(&re, false, false, class, store.class(class))
            .unwrap();
        assert!(!Arc::ptr_eq(&l1, &l2));
        assert!(Arc::ptr_eq(&l1, &l3));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn shared_across_threads() {
        let (store, class) = store_with_class();
        let env = PredEnv::with_default_attr("label");
        let p = parse_tree_pattern("x(y*)", &env).unwrap();
        let cache = PatternCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (cache, p, store) = (&cache, &p, &store);
                s.spawn(move || {
                    for _ in 0..10 {
                        cache.tree(p, class, store.class(class)).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.misses(), 1, "one compilation across the fleet");
        assert_eq!(cache.hits(), 39);
    }
}
