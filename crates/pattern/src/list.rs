//! List patterns and sublist matching (paper §3.2).
//!
//! A list pattern is a regular expression over alphabet-predicates with
//! the metacharacter `?` (always true), grouping `[[ ]]`, the prune
//! marker `!`, and the anchors `^lp` (match at the beginning) and `lp$`
//! (match at the end). Matching a pattern against a list yields the
//! *sublists* (embedded lists of contiguous elements) in the pattern's
//! language; `sub_select`/`split` on lists are built on
//! [`ListPattern::find_matches`].

use std::fmt;

use aqua_guard::{ExecGuard, GuardError};
use aqua_object::{ClassDef, ClassId, ObjectStore, Oid};

use crate::alphabet::{Pred, PredExpr};
use crate::ast::Re;
use crate::batch::{BatchProgram, BitRow};
use crate::error::Result;
use crate::nfa::{LeafId, Nfa};
use crate::pike;
use crate::pike::infallible;

/// A list-pattern alphabet symbol: `?` or an alphabet-predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Sym {
    /// The `?` metacharacter — satisfied by every object.
    Any,
    /// An alphabet-predicate.
    Pred(PredExpr),
}

impl Sym {
    /// An alphabet-predicate symbol.
    pub fn pred(e: PredExpr) -> Re<Sym> {
        Re::Leaf(Sym::Pred(e))
    }

    /// The `?` symbol.
    pub fn any() -> Re<Sym> {
        Re::Leaf(Sym::Any)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Any => write!(f, "?"),
            Sym::Pred(p) => write!(f, "{{{p}}}"),
        }
    }
}

/// How [`ListPattern::find_matches`] enumerates matching sublists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Every matching (non-empty) sublist — the paper's `sub_select`
    /// semantics: "the set of sublists of L that match lp".
    #[default]
    All,
    /// Greedy left-to-right scan: leftmost-longest matches that do not
    /// overlap. Used where a linear pass is wanted (benchmark B3).
    Nonoverlapping,
}

/// One matching sublist: the half-open element range `[start, end)` and
/// the positions consumed by `!`-pruned pattern leaves (absolute indices
/// into the subject list, ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListMatch {
    pub start: usize,
    pub end: usize,
    pub pruned: Vec<usize>,
}

impl ListMatch {
    /// The kept (non-pruned) positions of the match, ascending.
    pub fn kept(&self) -> Vec<usize> {
        (self.start..self.end)
            .filter(|p| !self.pruned.contains(p))
            .collect()
    }
}

/// A compiled list pattern, bound to one element class.
///
/// Compilation also precomputes everything the batched scan needs —
/// one flattened [`BatchProgram`] per predicate leaf and the set of
/// *initial* leaves (those that can consume the first element of a
/// match) — so cached patterns carry their batch plans and bulk member
/// loops never rebuild them.
#[derive(Debug, Clone)]
pub struct ListPattern {
    re: Re<Sym>,
    /// `^lp` — the match must begin at the first element.
    pub anchor_start: bool,
    /// `lp$` — the match must end at the last element.
    pub anchor_end: bool,
    nfa: Nfa,
    leaves: Vec<Option<Pred>>,
    /// Batch programs parallel to `leaves`; `None` is the `?` wildcard.
    programs: Vec<Option<BatchProgram>>,
    /// Leaves reachable from the start without consuming input.
    initial: Vec<LeafId>,
}

/// Per-leaf packed truth rows over the subject items. Wildcard (`?`)
/// leaves carry no row and read as always-true.
#[derive(Debug)]
struct LeafTable {
    rows: Vec<Option<BitRow>>,
}

impl LeafTable {
    #[inline]
    fn test(&self, leaf: LeafId, pos: usize) -> bool {
        match &self.rows[leaf.0 as usize] {
            None => true,
            Some(r) => r.get(pos),
        }
    }
}

impl ListPattern {
    /// Compile `re` (with the given anchors) against the element class.
    pub fn compile(
        re: Re<Sym>,
        anchor_start: bool,
        anchor_end: bool,
        class_id: ClassId,
        class: &ClassDef,
    ) -> Result<ListPattern> {
        let mut leaves: Vec<Option<Pred>> = Vec::new();
        let mut err = None;
        let nfa = Nfa::compile(&re, &mut |s: &Sym| {
            let compiled = match s {
                Sym::Any => None,
                Sym::Pred(e) => match e.compile(class_id, class) {
                    Ok(p) => Some(p),
                    Err(e) => {
                        err.get_or_insert(e);
                        None
                    }
                },
            };
            leaves.push(compiled);
            (LeafId(leaves.len() as u32 - 1), false)
        });
        if let Some(e) = err {
            return Err(e);
        }
        let programs = leaves
            .iter()
            .map(|l| l.as_ref().map(BatchProgram::compile))
            .collect();
        let initial = pike::initial_leaves(&nfa);
        Ok(ListPattern {
            re,
            anchor_start,
            anchor_end,
            nfa,
            leaves,
            programs,
            initial,
        })
    }

    /// Compile an unanchored pattern.
    pub fn unanchored(re: Re<Sym>, class_id: ClassId, class: &ClassDef) -> Result<ListPattern> {
        Self::compile(re, false, false, class_id, class)
    }

    /// The surface regex (for display and for optimizer decomposition).
    pub fn re(&self) -> &Re<Sym> {
        &self.re
    }

    /// Number of NFA states (pattern-size proxy for the cost model).
    pub fn nfa_size(&self) -> usize {
        self.nfa.len()
    }

    /// The compiled NFA (consumed by the lazy DFA layer).
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The interned leaf tests, in [`LeafId`] order: `None` is the `?`
    /// wildcard.
    pub fn leaves(&self) -> &[Option<Pred>] {
        &self.leaves
    }

    /// Precompute the alphabet-predicate truth table over `items`, one
    /// packed [`BitRow`] per predicate leaf (`?` rows are skipped — they
    /// are always true). Each leaf runs its [`BatchProgram`] over the
    /// whole OID column; the guard is charged one step per evaluation,
    /// batched per chunk.
    fn eval_table_guarded(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        guard: Option<&ExecGuard>,
    ) -> std::result::Result<LeafTable, GuardError> {
        let mut rows = Vec::with_capacity(self.programs.len());
        for prog in &self.programs {
            rows.push(match prog {
                None => None,
                Some(p) => Some(p.eval(store, items, guard)?),
            });
        }
        Ok(LeafTable { rows })
    }

    /// Start positions worth simulating from: the OR of the initial
    /// leaves' truth rows. `None` means every position is viable (a `?`
    /// wildcard can open a match). Sound because zero-length matches are
    /// suppressed, so any reported match consumes its first element with
    /// one of the initial leaves.
    fn candidate_starts(&self, table: &LeafTable, n: usize) -> Option<BitRow> {
        let mut acc: Option<BitRow> = None;
        for l in &self.initial {
            match &table.rows[l.0 as usize] {
                None => return None,
                Some(row) => match &mut acc {
                    None => acc = Some(row.clone()),
                    Some(a) => a.or_assign(row),
                },
            }
        }
        // No initial predicate leaves at all: only the empty match is in
        // the language, and that is never reported.
        Some(acc.unwrap_or_else(|| BitRow::zeros(n)))
    }

    /// Does the *entire* list match the pattern (anchors at both ends)?
    pub fn is_match(&self, store: &ObjectStore, items: &[Oid]) -> bool {
        infallible(self.is_match_guarded(store, items, None))
    }

    /// [`is_match`](Self::is_match) under an optional execution guard.
    pub fn is_match_guarded(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        guard: Option<&ExecGuard>,
    ) -> std::result::Result<bool, GuardError> {
        let table = self.eval_table_guarded(store, items, guard)?;
        let n = items.len();
        pike::matches_exact_guarded(
            &self.nfa,
            n,
            &mut |leaf: LeafId, pos: usize| table.test(leaf, pos),
            guard,
        )
    }

    /// All matching sublists under `mode`, in (start, end) order.
    /// Zero-length matches are not reported (an empty sublist is not a
    /// useful query answer; patterns that are nullable still participate
    /// through their non-empty matches).
    pub fn find_matches(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        mode: MatchMode,
    ) -> Vec<ListMatch> {
        infallible(self.find_matches_guarded(store, items, mode, None))
    }

    /// [`find_matches`](Self::find_matches) under an optional execution
    /// guard. Each emitted match counts toward the guard's result cap.
    pub fn find_matches_guarded(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        mode: MatchMode,
        guard: Option<&ExecGuard>,
    ) -> std::result::Result<Vec<ListMatch>, GuardError> {
        let n = items.len();
        let table = self.eval_table_guarded(store, items, guard)?;
        let test_at = |leaf: LeafId, pos: usize| table.test(leaf, pos);
        // One simulation scratch + ends buffer for every start position:
        // the per-start allocations this scan used to pay are gone.
        let candidates = self.candidate_starts(&table, n);
        let viable = |start: usize| match &candidates {
            Some(c) if start < n => c.get(start),
            _ => true,
        };
        let mut scratch = pike::PikeScratch::new();
        let mut ends: Vec<usize> = Vec::new();
        let mut out = Vec::new();
        match mode {
            MatchMode::All => {
                let starts: Box<dyn Iterator<Item = usize>> = if self.anchor_start {
                    Box::new(std::iter::once(0))
                } else {
                    Box::new(0..n)
                };
                for start in starts {
                    if !viable(start) {
                        continue;
                    }
                    pike::accepting_ends_scratch_guarded(
                        &self.nfa,
                        n - start,
                        &mut |l, p| test_at(l, p + start),
                        guard,
                        &mut scratch,
                        &mut ends,
                    )?;
                    for &e in &ends {
                        let end = start + e;
                        if end == start {
                            continue;
                        }
                        if self.anchor_end && end != n {
                            continue;
                        }
                        out.push(self.extract_guarded(start, end, &test_at, guard)?);
                        aqua_guard::result_emitted(guard)?;
                    }
                }
            }
            MatchMode::Nonoverlapping => {
                let mut start = 0usize;
                while start < n {
                    if self.anchor_start && start != 0 {
                        break;
                    }
                    if !viable(start) {
                        start += 1;
                        continue;
                    }
                    pike::accepting_ends_scratch_guarded(
                        &self.nfa,
                        n - start,
                        &mut |l, p| test_at(l, p + start),
                        guard,
                        &mut scratch,
                        &mut ends,
                    )?;
                    let pick = ends
                        .iter()
                        .rev()
                        .map(|&e| start + e)
                        .find(|&end| end > start && (!self.anchor_end || end == n));
                    match pick {
                        Some(end) => {
                            out.push(self.extract_guarded(start, end, &test_at, guard)?);
                            aqua_guard::result_emitted(guard)?;
                            start = end;
                        }
                        None => start += 1,
                    }
                }
            }
        }
        Ok(out)
    }

    /// All matches beginning exactly at `start` — the entry point for
    /// index-driven plans (a positional index proposes candidate starts;
    /// the pattern is verified only there). Anchors are honored.
    pub fn find_matches_at(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        start: usize,
    ) -> Vec<ListMatch> {
        infallible(self.find_matches_at_guarded(store, items, start, None))
    }

    /// [`find_matches_at`](Self::find_matches_at) under an optional
    /// execution guard.
    pub fn find_matches_at_guarded(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        start: usize,
        guard: Option<&ExecGuard>,
    ) -> std::result::Result<Vec<ListMatch>, GuardError> {
        let n = items.len();
        if start > n || (self.anchor_start && start != 0) {
            return Ok(Vec::new());
        }
        let table = self.eval_table_guarded(store, items, guard)?;
        let test_at = |leaf: LeafId, pos: usize| table.test(leaf, pos);
        let ends = pike::accepting_ends_guarded(
            &self.nfa,
            n - start,
            &mut |l, p| test_at(l, p + start),
            guard,
        )?;
        let mut out = Vec::new();
        for end in ends.into_iter().map(|e| start + e) {
            if end > start && (!self.anchor_end || end == n) {
                out.push(self.extract_guarded(start, end, &test_at, guard)?);
                aqua_guard::result_emitted(guard)?;
            }
        }
        Ok(out)
    }

    /// [`find_matches_at`](Self::find_matches_at) over many candidate
    /// starts, sharing one predicate truth table. `starts` must be
    /// ascending; results come back in (start, end) order.
    pub fn find_matches_at_many(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        starts: &[usize],
    ) -> Vec<ListMatch> {
        infallible(self.find_matches_at_many_guarded(store, items, starts, None))
    }

    /// [`find_matches_at_many`](Self::find_matches_at_many) under an
    /// optional execution guard.
    pub fn find_matches_at_many_guarded(
        &self,
        store: &ObjectStore,
        items: &[Oid],
        starts: &[usize],
        guard: Option<&ExecGuard>,
    ) -> std::result::Result<Vec<ListMatch>, GuardError> {
        let n = items.len();
        let table = self.eval_table_guarded(store, items, guard)?;
        let test_at = |leaf: LeafId, pos: usize| table.test(leaf, pos);
        let mut scratch = pike::PikeScratch::new();
        let mut ends: Vec<usize> = Vec::new();
        let mut out = Vec::new();
        for &start in starts {
            if start > n || (self.anchor_start && start != 0) {
                continue;
            }
            aqua_guard::checkpoint(guard)?;
            pike::accepting_ends_scratch_guarded(
                &self.nfa,
                n - start,
                &mut |l, p| test_at(l, p + start),
                guard,
                &mut scratch,
                &mut ends,
            )?;
            for &e in &ends {
                let end = start + e;
                if end > start && (!self.anchor_end || end == n) {
                    out.push(self.extract_guarded(start, end, &test_at, guard)?);
                    aqua_guard::result_emitted(guard)?;
                }
            }
        }
        Ok(out)
    }

    /// Recover the pruned positions of the span `[start, end)` from the
    /// highest-priority parse.
    fn extract_guarded(
        &self,
        start: usize,
        end: usize,
        test_at: &impl Fn(LeafId, usize) -> bool,
        guard: Option<&ExecGuard>,
    ) -> std::result::Result<ListMatch, GuardError> {
        let path = pike::find_one_path_guarded(
            &self.nfa,
            end - start,
            &mut |l, p| test_at(l, p + start),
            guard,
        )?
        .expect("span reported as match must have a parse");
        let pruned = path
            .iter()
            .filter(|s| s.pruned)
            .map(|s| s.pos + start)
            .collect();
        Ok(ListMatch { start, end, pruned })
    }
}

impl fmt::Display for ListPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.anchor_start {
            write!(f, "^")?;
        }
        write!(f, "[{}]", self.re)?;
        if self.anchor_end {
            write!(f, "$")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType, ClassDef, Value};

    struct Fx {
        store: ObjectStore,
        class: ClassId,
    }

    impl Fx {
        fn new() -> Self {
            let mut store = ObjectStore::new();
            let class = store
                .define_class(
                    ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap(),
                )
                .unwrap();
            Fx { store, class }
        }

        /// One object per character.
        fn song(&mut self, s: &str) -> Vec<Oid> {
            s.chars()
                .map(|c| {
                    self.store
                        .insert_named("Note", &[("pitch", Value::str(c.to_string()))])
                        .unwrap()
                })
                .collect()
        }

        fn pitch(&self, c: char) -> Re<Sym> {
            Sym::pred(PredExpr::eq("pitch", c.to_string()))
        }

        fn compile(&self, re: Re<Sym>) -> ListPattern {
            ListPattern::unanchored(re, self.class, self.store.class(self.class)).unwrap()
        }
    }

    #[test]
    fn melody_paper_example() {
        // sub_select([A??F])(L) — paper §6's music query.
        let mut fx = Fx::new();
        let song = fx.song("GAXYFBACDF");
        let re = fx
            .pitch('A')
            .then(Sym::any())
            .then(Sym::any())
            .then(fx.pitch('F'));
        let p = fx.compile(re);
        let ms = p.find_matches(&fx.store, &song, MatchMode::All);
        assert_eq!(ms.len(), 2);
        assert_eq!((ms[0].start, ms[0].end), (1, 5)); // AXYF
        assert_eq!((ms[1].start, ms[1].end), (6, 10)); // ACDF
    }

    #[test]
    fn all_mode_reports_overlaps() {
        let mut fx = Fx::new();
        let song = fx.song("AAA");
        let p = fx.compile(fx.pitch('A').then(fx.pitch('A')));
        let ms = p.find_matches(&fx.store, &song, MatchMode::All);
        assert_eq!(ms.len(), 2); // [0,2) and [1,3)
    }

    #[test]
    fn nonoverlapping_is_leftmost_longest() {
        let mut fx = Fx::new();
        let song = fx.song("AAAA");
        let p = fx.compile(fx.pitch('A').plus());
        let ms = p.find_matches(&fx.store, &song, MatchMode::Nonoverlapping);
        assert_eq!(ms.len(), 1);
        assert_eq!((ms[0].start, ms[0].end), (0, 4));
    }

    #[test]
    fn anchors() {
        let mut fx = Fx::new();
        let song = fx.song("ABA");
        let start_anchored = ListPattern::compile(
            fx.pitch('A'),
            true,
            false,
            fx.class,
            fx.store.class(fx.class),
        )
        .unwrap();
        let ms = start_anchored.find_matches(&fx.store, &song, MatchMode::All);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].start, 0);

        let end_anchored = ListPattern::compile(
            fx.pitch('A'),
            false,
            true,
            fx.class,
            fx.store.class(fx.class),
        )
        .unwrap();
        let ms = end_anchored.find_matches(&fx.store, &song, MatchMode::All);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].end, 3);
    }

    #[test]
    fn full_match_with_both_anchors_equals_is_match() {
        let mut fx = Fx::new();
        let song = fx.song("AB");
        let re = fx.pitch('A').then(fx.pitch('B'));
        let p = ListPattern::compile(re.clone(), true, true, fx.class, fx.store.class(fx.class))
            .unwrap();
        assert!(p.is_match(&fx.store, &song));
        let ms = p.find_matches(&fx.store, &song, MatchMode::All);
        assert_eq!(ms.len(), 1);
        let other = fx.song("ABB");
        assert!(!p.is_match(&fx.store, &other));
    }

    #[test]
    fn pruned_positions_extracted() {
        let mut fx = Fx::new();
        let song = fx.song("XAY");
        // !? A !?
        let re = Sym::any()
            .prune()
            .then(fx.pitch('A'))
            .then(Sym::any().prune());
        let p = fx.compile(re);
        let ms = p.find_matches(&fx.store, &song, MatchMode::All);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].pruned, vec![0, 2]);
        assert_eq!(ms[0].kept(), vec![1]);
    }

    #[test]
    fn zero_length_matches_suppressed() {
        let mut fx = Fx::new();
        let song = fx.song("BB");
        let p = fx.compile(fx.pitch('A').star());
        assert!(p.find_matches(&fx.store, &song, MatchMode::All).is_empty());
        // But an empty *list* still matches a nullable pattern exactly.
        assert!(p.is_match(&fx.store, &[]));
    }

    #[test]
    fn disjunction_and_closure() {
        let mut fx = Fx::new();
        let song = fx.song("ABABC");
        // [[A|B]]+ C
        let re = fx.pitch('A').or(fx.pitch('B')).plus().then(fx.pitch('C'));
        let p = fx.compile(re);
        let ms = p.find_matches(&fx.store, &song, MatchMode::All);
        // Matches ending at C, starting at 0..=3.
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.end == 5));
    }

    #[test]
    fn eval_table_respects_class() {
        let mut fx = Fx::new();
        let song = fx.song("A");
        // An object of another class never satisfies a pitch predicate.
        let other_class = fx
            .store
            .define_class(ClassDef::new("X", vec![]).unwrap())
            .unwrap();
        let alien = fx.store.insert(other_class, vec![]).unwrap();
        let p = fx.compile(fx.pitch('A'));
        assert!(p.is_match(&fx.store, &song));
        assert!(!p.is_match(&fx.store, &[alien]));
    }
}
