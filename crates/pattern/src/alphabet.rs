//! Alphabet-predicates (paper §3.1).
//!
//! The alphabet of a list or tree pattern is a set of *alphabet-
//! predicates*: unary boolean functions applied to one object. To keep
//! every alphabet-predicate evaluable in constant time, the paper
//! restricts them to **stored attribute values, constants, comparison
//! operators, and the boolean connectives AND, OR, NOT** (§3.1,
//! footnote 2). This module provides:
//!
//! * [`PredExpr`] — the surface form, referencing attributes by name,
//!   e.g. `λ(Person) Person.age > 25`.
//! * [`Pred`] — the compiled form, bound to one class with attribute
//!   names resolved to positional [`AttrId`]s. Compilation performs the
//!   stored-attribute check the paper delegates to the query optimizer.
//! * [`PredExpr::conjuncts`] — top-level AND decomposition, the hook the
//!   optimizer uses to split a complex predicate into index-friendly
//!   pieces (paper §4, "Why Split?").

use std::fmt;

use aqua_object::{AttrId, AttrType, ClassDef, ClassId, ObjectStore, Oid, Value};

use crate::error::{PatternError, Result};

/// Comparison operators allowed in alphabet-predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply this comparison to two values. Undefined comparisons
    /// (cross-type, nulls, NaN) are `false`, except `Ne` which is the
    /// strict negation of `Eq` only when the comparison is defined.
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        match a.try_cmp(b) {
            Some(ord) => match self {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => ord.is_ne(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            },
            None => false,
        }
    }

    /// Parser/display token for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An unresolved alphabet-predicate: attributes referenced by name.
///
/// Build with the constructors and combinators:
///
/// ```
/// use aqua_pattern::alphabet::{PredExpr, CmpOp};
/// // λ(Person) Person.age > 25 AND NOT Person.citizen = "USA"
/// let p = PredExpr::cmp("age", CmpOp::Gt, 25)
///     .and(PredExpr::cmp("citizen", CmpOp::Eq, "USA").not());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PredExpr {
    /// Always true — the `?` metacharacter.
    True,
    /// `attr op constant`.
    Cmp {
        attr: String,
        op: CmpOp,
        constant: Value,
    },
    And(Box<PredExpr>, Box<PredExpr>),
    Or(Box<PredExpr>, Box<PredExpr>),
    Not(Box<PredExpr>),
}

impl PredExpr {
    /// `attr op constant`.
    pub fn cmp(attr: impl Into<String>, op: CmpOp, constant: impl Into<Value>) -> Self {
        PredExpr::Cmp {
            attr: attr.into(),
            op,
            constant: constant.into(),
        }
    }

    /// Shorthand for the ubiquitous `attr = constant`.
    pub fn eq(attr: impl Into<String>, constant: impl Into<Value>) -> Self {
        Self::cmp(attr, CmpOp::Eq, constant)
    }

    /// Conjunction.
    pub fn and(self, other: PredExpr) -> Self {
        PredExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: PredExpr) -> Self {
        PredExpr::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        PredExpr::Not(Box::new(self))
    }

    /// Split a top-level conjunction into its conjuncts, in left-to-right
    /// order. A non-conjunction is its own single conjunct. This is the
    /// decomposition the optimizer uses to rewrite
    /// `select(p1 AND p2)` into a cascade where one conjunct can use an
    /// index (paper §4).
    pub fn conjuncts(&self) -> Vec<&PredExpr> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a PredExpr, out: &mut Vec<&'a PredExpr>) {
            match p {
                PredExpr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a predicate as the conjunction of `conjuncts`; `True` for
    /// an empty slice.
    pub fn conjoin(conjuncts: &[PredExpr]) -> PredExpr {
        let mut it = conjuncts.iter().cloned();
        match it.next() {
            None => PredExpr::True,
            Some(first) => it.fold(first, |acc, c| acc.and(c)),
        }
    }

    /// If this predicate is a plain equality test `attr = constant`,
    /// return the pair. This is the index-usable shape.
    pub fn as_point_lookup(&self) -> Option<(&str, &Value)> {
        match self {
            PredExpr::Cmp {
                attr,
                op: CmpOp::Eq,
                constant,
            } => Some((attr, constant)),
            _ => None,
        }
    }

    /// Resolve attribute names against `class`, enforcing the paper's
    /// restrictions: attributes must be stored (footnote 2), and
    /// comparison constants must inhabit the attribute's declared type so
    /// that comparisons are well-defined.
    pub fn compile(&self, class_id: ClassId, class: &ClassDef) -> Result<Pred> {
        Ok(Pred {
            class: class_id,
            node: self.compile_node(class)?,
            batch: std::sync::OnceLock::new(),
        })
    }

    fn compile_node(&self, class: &ClassDef) -> Result<PredNode> {
        Ok(match self {
            PredExpr::True => PredNode::True,
            PredExpr::Cmp { attr, op, constant } => {
                let (id, def) = class.stored_attr(attr)?;
                if !constant.is_null() && !def.ty.admits(constant) {
                    return Err(PatternError::PredicateType {
                        class: class.name().to_owned(),
                        attr: attr.clone(),
                        expected: def.ty,
                        got: constant.type_name(),
                    });
                }
                PredNode::Cmp {
                    attr: id,
                    op: *op,
                    constant: constant.clone(),
                }
            }
            PredExpr::And(a, b) => PredNode::And(
                Box::new(a.compile_node(class)?),
                Box::new(b.compile_node(class)?),
            ),
            PredExpr::Or(a, b) => PredNode::Or(
                Box::new(a.compile_node(class)?),
                Box::new(b.compile_node(class)?),
            ),
            PredExpr::Not(a) => PredNode::Not(Box::new(a.compile_node(class)?)),
        })
    }
}

impl fmt::Display for PredExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredExpr::True => write!(f, "true"),
            PredExpr::Cmp { attr, op, constant } => write!(f, "{attr} {op} {constant}"),
            PredExpr::And(a, b) => write!(f, "({a} & {b})"),
            PredExpr::Or(a, b) => write!(f, "({a} | {b})"),
            PredExpr::Not(a) => write!(f, "!({a})"),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PredNode {
    True,
    Cmp {
        attr: AttrId,
        op: CmpOp,
        constant: Value,
    },
    And(Box<PredNode>, Box<PredNode>),
    Or(Box<PredNode>, Box<PredNode>),
    Not(Box<PredNode>),
}

/// A compiled alphabet-predicate: bound to one class, attribute lookups
/// resolved to positional offsets. Evaluation is constant-time in the
/// size of the database (it touches exactly one object), satisfying the
/// paper's tractability requirement.
pub struct Pred {
    class: ClassId,
    node: PredNode,
    /// The batched program, compiled on first use and shared from then
    /// on (including across clones) — bulk member loops never flatten
    /// the predicate twice.
    batch: std::sync::OnceLock<std::sync::Arc<crate::batch::BatchProgram>>,
}

impl Clone for Pred {
    fn clone(&self) -> Self {
        Pred {
            class: self.class,
            node: self.node.clone(),
            batch: self.batch.clone(),
        }
    }
}

impl PartialEq for Pred {
    fn eq(&self, other: &Self) -> bool {
        self.class == other.class && self.node == other.node
    }
}

impl std::fmt::Debug for Pred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pred")
            .field("class", &self.class)
            .field("node", &self.node)
            .finish()
    }
}

impl Pred {
    /// The class this predicate was compiled against.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Evaluate against the object behind `oid`. An object of a different
    /// class never satisfies the predicate (the pattern alphabet is typed).
    pub fn eval(&self, store: &ObjectStore, oid: Oid) -> bool {
        let obj = store.deref(oid);
        if obj.class() != self.class {
            return matches!(self.node, PredNode::True);
        }
        Self::eval_node(&self.node, obj.values())
    }

    fn eval_node(node: &PredNode, values: &[Value]) -> bool {
        match node {
            PredNode::True => true,
            PredNode::Cmp { attr, op, constant } => op.apply(&values[attr.index()], constant),
            PredNode::And(a, b) => Self::eval_node(a, values) && Self::eval_node(b, values),
            PredNode::Or(a, b) => Self::eval_node(a, values) || Self::eval_node(b, values),
            PredNode::Not(a) => !Self::eval_node(a, values),
        }
    }

    /// A compiled `true` predicate usable on any class (backs the `?`
    /// metacharacter).
    pub fn always(class: ClassId) -> Pred {
        Pred {
            class,
            node: PredNode::True,
            batch: std::sync::OnceLock::new(),
        }
    }

    /// The batched evaluation program for this predicate, compiled on
    /// first use and cached. Callers evaluating over OID columns should
    /// use this instead of
    /// [`BatchProgram::compile`](crate::batch::BatchProgram::compile)
    /// so bulk member loops share one flattening.
    pub fn batch(&self) -> &std::sync::Arc<crate::batch::BatchProgram> {
        self.batch
            .get_or_init(|| std::sync::Arc::new(crate::batch::BatchProgram::compile(self)))
    }

    /// The compiled predicate tree (crate-internal: the batched
    /// evaluator flattens it into a postfix program).
    pub(crate) fn node(&self) -> &PredNode {
        &self.node
    }
}

/// Expected attribute type mismatch details surfaced by compilation.
pub(crate) fn _type_mismatch_uses(_: AttrType) {}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, ObjectStore};

    fn setup() -> (ObjectStore, ClassId) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(
                ClassDef::new(
                    "Person",
                    vec![
                        AttrDef::stored("name", AttrType::Str),
                        AttrDef::stored("age", AttrType::Int),
                        AttrDef::stored("citizen", AttrType::Str),
                        AttrDef::computed("age_days", AttrType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        (s, c)
    }

    fn person(s: &mut ObjectStore, name: &str, age: i64, citizen: &str) -> Oid {
        s.insert_named(
            "Person",
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("citizen", Value::str(citizen)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_age_over_25() {
        let (mut s, c) = setup();
        let young = person(&mut s, "kid", 12, "USA");
        let old = person(&mut s, "elder", 70, "Brazil");
        let p = PredExpr::cmp("age", CmpOp::Gt, 25)
            .compile(c, s.class(c))
            .unwrap();
        assert!(!p.eval(&s, young));
        assert!(p.eval(&s, old));
    }

    #[test]
    fn boolean_connectives() {
        let (mut s, c) = setup();
        let a = person(&mut s, "a", 30, "USA");
        let b = person(&mut s, "b", 30, "Brazil");
        let e = PredExpr::cmp("age", CmpOp::Ge, 30).and(PredExpr::eq("citizen", "USA"));
        let p = e.compile(c, s.class(c)).unwrap();
        assert!(p.eval(&s, a));
        assert!(!p.eval(&s, b));
        let n = PredExpr::eq("citizen", "USA")
            .not()
            .compile(c, s.class(c))
            .unwrap();
        assert!(!n.eval(&s, a));
        assert!(n.eval(&s, b));
        let o = PredExpr::eq("citizen", "USA")
            .or(PredExpr::eq("citizen", "Brazil"))
            .compile(c, s.class(c))
            .unwrap();
        assert!(o.eval(&s, a) && o.eval(&s, b));
    }

    #[test]
    fn computed_attribute_rejected() {
        let (s, c) = setup();
        let err = PredExpr::cmp("age_days", CmpOp::Gt, 100)
            .compile(c, s.class(c))
            .unwrap_err();
        assert!(err.to_string().contains("computed"));
    }

    #[test]
    fn type_checked_constants() {
        let (s, c) = setup();
        let err = PredExpr::cmp("age", CmpOp::Eq, "thirty")
            .compile(c, s.class(c))
            .unwrap_err();
        assert!(matches!(err, PatternError::PredicateType { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let (s, c) = setup();
        assert!(PredExpr::eq("height", 1).compile(c, s.class(c)).is_err());
    }

    #[test]
    fn wrong_class_never_matches_nontrivial() {
        let (mut s, c) = setup();
        let other = s
            .define_class(
                ClassDef::new("Dog", vec![AttrDef::stored("name", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        let dog = s
            .insert_named("Dog", &[("name", Value::str("rex"))])
            .unwrap();
        let p = PredExpr::eq("name", "rex").compile(c, s.class(c)).unwrap();
        assert!(!p.eval(&s, dog));
        // but True matches anything (the ? wildcard is class-agnostic)
        assert!(Pred::always(other).eval(&s, dog));
    }

    #[test]
    fn conjunct_decomposition_round_trips() {
        let e = PredExpr::eq("a", 1)
            .and(PredExpr::eq("b", 2))
            .and(PredExpr::eq("c", 3).or(PredExpr::True));
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        let rebuilt = PredExpr::conjoin(&cs.into_iter().cloned().collect::<Vec<_>>());
        // Conjunction re-associates to the left; semantics preserved.
        assert_eq!(rebuilt.conjuncts().len(), 3);
    }

    #[test]
    fn point_lookup_detection() {
        assert!(PredExpr::eq("citizen", "USA").as_point_lookup().is_some());
        assert!(PredExpr::cmp("age", CmpOp::Gt, 3)
            .as_point_lookup()
            .is_none());
        assert!(PredExpr::True.as_point_lookup().is_none());
    }

    #[test]
    fn cmp_op_semantics_on_undefined() {
        // Cross-type and null comparisons are all false, including Ne.
        assert!(!CmpOp::Eq.apply(&Value::Int(1), &Value::str("1")));
        assert!(!CmpOp::Ne.apply(&Value::Int(1), &Value::str("1")));
        assert!(!CmpOp::Lt.apply(&Value::Null, &Value::Int(1)));
        assert!(CmpOp::Ne.apply(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Le.apply(&Value::Int(2), &Value::Int(2)));
    }

    #[test]
    fn display_round_trip_shape() {
        let e = PredExpr::cmp("age", CmpOp::Gt, 25).and(PredExpr::eq("citizen", "USA").not());
        assert_eq!(e.to_string(), "(age > 25 & !(citizen = \"USA\"))");
    }
}
