//! Lazy DFA for list patterns.
//!
//! The Pike VM (crate::pike) is O(input × NFA states). For hot scans the
//! classic next step — contemporaneous with the paper's regex lineage
//! (McNaughton–Yamada, Brzozowski) — is determinization. The alphabet of
//! a list pattern is not characters but *predicate outcomes*: an input
//! element is fully characterized by the bit-vector of which pattern
//! leaves it satisfies. The DFA therefore transitions on leaf-outcome
//! masks, determinized lazily and cached, giving O(input) scans after
//! warm-up (benchmark B3d measures the effect).
//!
//! The DFA answers span questions (is-match / accepting ends); parse
//! extraction (prune positions) stays on the NFA path.

use std::collections::HashMap;

use aqua_object::{ObjectStore, Oid};

use crate::list::{ListMatch, ListPattern};
use crate::nfa::{LeafId, Nfa, State, StateId};

/// Upper bound on distinct pattern leaves a DFA can handle (the outcome
/// mask is a `u64`).
pub const MAX_DFA_LEAVES: usize = 64;

/// A lazily determinized view of a compiled [`ListPattern`].
pub struct ListDfa<'p> {
    pattern: &'p ListPattern,
    /// DFA states: each is a sorted set of NFA states (closure).
    states: Vec<DfaState>,
    /// Interning map from NFA-state-set to DFA state index.
    interned: HashMap<Vec<u32>, u32>,
}

struct DfaState {
    set: Vec<u32>,
    accept: bool,
    trans: HashMap<u64, u32>,
}

impl<'p> ListDfa<'p> {
    /// Wrap a compiled pattern. Errors (returns `None`) when the pattern
    /// has more than [`MAX_DFA_LEAVES`] leaves.
    pub fn new(pattern: &'p ListPattern) -> Option<Self> {
        if pattern.leaf_count() > MAX_DFA_LEAVES {
            return None;
        }
        let mut dfa = ListDfa {
            pattern,
            states: Vec::new(),
            interned: HashMap::new(),
        };
        let start = closure_of(pattern.nfa(), &[pattern.nfa().start()]);
        dfa.intern(start);
        Some(dfa)
    }

    fn intern(&mut self, set: Vec<u32>) -> u32 {
        if let Some(&id) = self.interned.get(&set) {
            return id;
        }
        let nfa = self.pattern.nfa();
        let accept = set
            .iter()
            .any(|&s| matches!(nfa.state(StateId(s)), State::Accept));
        let id = self.states.len() as u32;
        self.states.push(DfaState {
            set: set.clone(),
            accept,
            trans: HashMap::new(),
        });
        self.interned.insert(set, id);
        id
    }

    /// Number of materialized DFA states (grows as inputs exercise new
    /// outcome combinations).
    pub fn materialized_states(&self) -> usize {
        self.states.len()
    }

    fn step(&mut self, state: u32, mask: u64) -> u32 {
        if let Some(&next) = self.states[state as usize].trans.get(&mask) {
            return next;
        }
        let nfa = self.pattern.nfa();
        let mut targets: Vec<StateId> = Vec::new();
        for &s in &self.states[state as usize].set {
            if let State::Sym { leaf, next, .. } = nfa.state(StateId(s)) {
                if mask & (1u64 << leaf.0) != 0 {
                    targets.push(*next);
                }
            }
        }
        let set = closure_of(nfa, &targets);
        let next = self.intern(set);
        self.states[state as usize].trans.insert(mask, next);
        next
    }

    /// Leaf-outcome mask for one element.
    fn mask(&self, store: &ObjectStore, oid: Oid) -> u64 {
        let mut m = 0u64;
        for (i, pred) in self.pattern.leaves().iter().enumerate() {
            let hit = match pred {
                None => true,
                Some(p) => p.eval(store, oid),
            };
            if hit {
                m |= 1u64 << i;
            }
        }
        m
    }

    /// Does the entire sequence match (anchors at both ends)?
    pub fn is_match(&mut self, store: &ObjectStore, items: &[Oid]) -> bool {
        let mut state = 0u32;
        for &oid in items {
            let m = self.mask(store, oid);
            state = self.step(state, m);
            if self.states[state as usize].set.is_empty() {
                return false;
            }
        }
        self.states[state as usize].accept
    }

    /// Leftmost-longest non-overlapping matches (the B3a scan), via the
    /// DFA. Prune extents are extracted through the NFA path, exactly as
    /// [`ListPattern::find_matches`] does, so results are identical.
    pub fn find_nonoverlapping(&mut self, store: &ObjectStore, items: &[Oid]) -> Vec<ListMatch> {
        let n = items.len();
        // Pre-compute masks once: O(n × leaves).
        let masks: Vec<u64> = items.iter().map(|&o| self.mask(store, o)).collect();
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < n {
            if self.pattern.anchor_start && start != 0 {
                break;
            }
            let mut state = 0u32;
            let mut last_accept: Option<usize> = None;
            for (i, &m) in masks[start..].iter().enumerate() {
                state = self.step(state, m);
                if self.states[state as usize].set.is_empty() {
                    break;
                }
                if self.states[state as usize].accept {
                    let end = start + i + 1;
                    if !self.pattern.anchor_end || end == n {
                        last_accept = Some(end);
                    }
                }
            }
            match last_accept {
                Some(end) => {
                    // Prune extraction via one NFA parse over the span,
                    // testing leaves against the precomputed masks (no
                    // predicate re-evaluation).
                    let path = crate::pike::find_one_path(
                        self.pattern.nfa(),
                        end - start,
                        &mut |leaf: LeafId, pos: usize| masks[start + pos] & (1u64 << leaf.0) != 0,
                    )
                    .expect("span accepted by the DFA has an NFA parse");
                    let pruned = path
                        .iter()
                        .filter(|s| s.pruned)
                        .map(|s| s.pos + start)
                        .collect();
                    out.push(ListMatch { start, end, pruned });
                    start = end;
                }
                None => start += 1,
            }
        }
        out
    }
}

fn closure_of(nfa: &Nfa, seeds: &[StateId]) -> Vec<u32> {
    let mut seen = vec![false; nfa.len()];
    let mut out: Vec<u32> = Vec::new();
    let mut stack: Vec<StateId> = seeds.to_vec();
    while let Some(s) = stack.pop() {
        if seen[s.0 as usize] {
            continue;
        }
        seen[s.0 as usize] = true;
        match nfa.state(s) {
            State::Eps(n) => stack.push(*n),
            State::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            State::Sym { .. } | State::Accept => out.push(s.0),
        }
    }
    out.sort_unstable();
    out
}

/// The leaf view the DFA needs; kept on `ListPattern` so the DFA module
/// has no private access.
impl ListPattern {
    /// Number of interned pattern leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves().len()
    }
}

// `LeafId` is used in doc positions above; silence the unused warning
// when docs are stripped.
const _: fn(LeafId) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Re;
    use crate::list::{MatchMode, Sym};
    use crate::PredExpr;
    use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, Value};

    struct Fx {
        store: ObjectStore,
        class: ClassId,
    }

    impl Fx {
        fn new() -> Self {
            let mut store = ObjectStore::new();
            let class = store
                .define_class(
                    ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap(),
                )
                .unwrap();
            Fx { store, class }
        }

        fn song(&mut self, s: &str) -> Vec<Oid> {
            s.chars()
                .map(|c| {
                    self.store
                        .insert_named("Note", &[("pitch", Value::str(c.to_string()))])
                        .unwrap()
                })
                .collect()
        }

        fn pitch(&self, c: char) -> Re<Sym> {
            Sym::pred(PredExpr::eq("pitch", c.to_string()))
        }

        fn compile(&self, re: Re<Sym>) -> ListPattern {
            ListPattern::unanchored(re, self.class, self.store.class(self.class)).unwrap()
        }
    }

    #[test]
    fn dfa_agrees_with_nfa_on_is_match() {
        let mut fx = Fx::new();
        let p = fx.compile(fx.pitch('A').or(fx.pitch('B')).plus().then(fx.pitch('C')));
        let mut dfa = ListDfa::new(&p).unwrap();
        for s in ["ABC", "C", "AABBC", "ABCB", "", "CC"] {
            let items = fx.song(s);
            assert_eq!(
                dfa.is_match(&fx.store, &items),
                p.is_match(&fx.store, &items),
                "{s}"
            );
        }
    }

    #[test]
    fn dfa_scan_equals_nfa_scan() {
        let mut fx = Fx::new();
        let p = fx.compile(fx.pitch('A').then(Sym::any()).then(fx.pitch('F')));
        let items = fx.song("AXFGAZFBAAF");
        let mut dfa = ListDfa::new(&p).unwrap();
        let via_dfa = dfa.find_nonoverlapping(&fx.store, &items);
        let via_nfa = p.find_matches(&fx.store, &items, MatchMode::Nonoverlapping);
        assert_eq!(via_dfa, via_nfa);
        assert!(!via_dfa.is_empty());
    }

    #[test]
    fn dfa_scan_with_prunes() {
        let mut fx = Fx::new();
        let p = fx.compile(Sym::any().prune().then(fx.pitch('A')));
        let items = fx.song("XA");
        let mut dfa = ListDfa::new(&p).unwrap();
        let ms = dfa.find_nonoverlapping(&fx.store, &items);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].pruned, vec![0]);
    }

    #[test]
    fn lazy_states_stay_small() {
        let mut fx = Fx::new();
        let p = fx.compile(fx.pitch('A').star().then(fx.pitch('B')));
        let items = fx.song("AAABAAB");
        let mut dfa = ListDfa::new(&p).unwrap();
        dfa.find_nonoverlapping(&fx.store, &items);
        // Only the mask combinations that actually occur materialize.
        assert!(dfa.materialized_states() <= 8);
    }

    #[test]
    fn rejects_oversized_patterns() {
        let fx = Fx::new();
        let mut re = fx.pitch('A');
        for _ in 0..70 {
            re = re.then(Sym::any());
        }
        let p = fx.compile(re);
        assert!(ListDfa::new(&p).is_none());
    }
}
