//! Thompson NFA construction for the generic regex AST.
//!
//! The regular-expression foundations the paper builds on (§3.1 cites
//! McNaughton–Yamada, Brzozowski, Thatcher–Wright) make pattern matching
//! tractable; we realize that with a classic Thompson construction whose
//! symbol transitions are *tests* resolved by the caller — an alphabet-
//! predicate evaluation for list patterns, a recursive (memoized) tree-
//! pattern match for the child lists of tree patterns.
//!
//! Leaves carry two static flags:
//! * `pruned` — the leaf sits under a `!` prune group (paper §3.4), so
//!   elements it consumes are cut from the returned instance;
//! * `nullable` — the leaf symbol may match "nothing" (a concatenation
//!   point whose enclosing closure terminated with NULL, paper §3.5);
//!   such leaves get an ε bypass.

use crate::ast::Re;

/// Index of an interned leaf symbol within a compiled pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeafId(pub u32);

/// NFA state index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// One NFA state. Split priority encodes greedy matching: the first
/// alternative is preferred when extracting a single parse.
#[derive(Debug, Clone, PartialEq)]
pub enum State {
    /// Unconditional move.
    Eps(StateId),
    /// Prioritized fork (first preferred).
    Split(StateId, StateId),
    /// Consume one input element if the leaf test succeeds.
    Sym {
        leaf: LeafId,
        pruned: bool,
        next: StateId,
    },
    /// Acceptance.
    Accept,
}

/// A compiled Thompson NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
    start: StateId,
}

impl Nfa {
    /// Compile `re`, interning each leaf via `intern`, which returns the
    /// leaf's id and whether it is nullable (may match zero elements).
    pub fn compile<L>(re: &Re<L>, intern: &mut impl FnMut(&L) -> (LeafId, bool)) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let accept = b.push(State::Accept);
        let start = b.build(re, false, accept, intern);
        Nfa {
            states: b.states,
            start,
        }
    }

    /// Entry state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Number of states (pattern-size proxy for the cost model).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the automaton has no states (never constructed).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state behind `id`.
    #[inline]
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.0 as usize]
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn push(&mut self, s: State) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(s);
        id
    }

    /// Compile `re` so that after consuming a matching sequence control
    /// reaches `cont`. Returns the fragment's entry state.
    fn build<L>(
        &mut self,
        re: &Re<L>,
        pruned: bool,
        cont: StateId,
        intern: &mut impl FnMut(&L) -> (LeafId, bool),
    ) -> StateId {
        match re {
            Re::Leaf(l) => {
                let (leaf, nullable) = intern(l);
                let sym = self.push(State::Sym {
                    leaf,
                    pruned,
                    next: cont,
                });
                if nullable {
                    // Prefer consuming (greedy); bypass second.
                    self.push(State::Split(sym, cont))
                } else {
                    sym
                }
            }
            Re::Empty => cont,
            Re::Concat(xs) => {
                let mut next = cont;
                for x in xs.iter().rev() {
                    next = self.build(x, pruned, next, intern);
                }
                next
            }
            Re::Alt(xs) => match xs.len() {
                0 => cont, // empty alternation ≡ ε
                1 => self.build(&xs[0], pruned, cont, intern),
                _ => {
                    let mut entry = self.build(xs.last().unwrap(), pruned, cont, intern);
                    for x in xs[..xs.len() - 1].iter().rev() {
                        let e = self.build(x, pruned, cont, intern);
                        entry = self.push(State::Split(e, entry));
                    }
                    entry
                }
            },
            Re::Star(x) => {
                // loop: Split(body, cont); body re-enters loop.
                let loop_state = self.push(State::Eps(cont)); // placeholder, patched below
                let body = self.build(x, pruned, loop_state, intern);
                self.states[loop_state.0 as usize] = State::Split(body, cont);
                loop_state
            }
            Re::Plus(x) => {
                let loop_state = self.push(State::Eps(cont)); // placeholder
                let body = self.build(x, pruned, loop_state, intern);
                self.states[loop_state.0 as usize] = State::Split(body, cont);
                body
            }
            Re::Prune(x) => self.build(x, true, cont, intern),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pike;

    /// Compile a regex over chars into an NFA plus its leaf table.
    fn compile(re: &Re<char>) -> (Nfa, Vec<char>) {
        let mut leaves = Vec::new();
        let nfa = Nfa::compile(re, &mut |c: &char| {
            leaves.push(*c);
            (LeafId(leaves.len() as u32 - 1), false)
        });
        (nfa, leaves)
    }

    fn accepts(re: &Re<char>, input: &str) -> bool {
        let (nfa, leaves) = compile(re);
        let chars: Vec<char> = input.chars().collect();
        pike::matches_exact(&nfa, chars.len(), &mut |leaf: LeafId, pos: usize| {
            leaves[leaf.0 as usize] == chars[pos]
        })
    }

    fn l(c: char) -> Re<char> {
        Re::Leaf(c)
    }

    #[test]
    fn literal_concat() {
        let re = l('a').then(l('b')).then(l('c'));
        assert!(accepts(&re, "abc"));
        assert!(!accepts(&re, "ab"));
        assert!(!accepts(&re, "abcd"));
        assert!(!accepts(&re, "abd"));
    }

    #[test]
    fn alternation() {
        let re = l('a').or(l('b')).or(l('c'));
        assert!(accepts(&re, "a"));
        assert!(accepts(&re, "c"));
        assert!(!accepts(&re, "d"));
        assert!(!accepts(&re, ""));
    }

    #[test]
    fn star_and_plus() {
        let re = l('a').star();
        assert!(accepts(&re, ""));
        assert!(accepts(&re, "aaaa"));
        assert!(!accepts(&re, "ab"));
        let re = l('a').plus();
        assert!(!accepts(&re, ""));
        assert!(accepts(&re, "a"));
        assert!(accepts(&re, "aaa"));
    }

    #[test]
    fn nested_closure() {
        // (ab|c)* d
        let re = l('a').then(l('b')).or(l('c')).star().then(l('d'));
        assert!(accepts(&re, "d"));
        assert!(accepts(&re, "abd"));
        assert!(accepts(&re, "cabcd"));
        assert!(!accepts(&re, "ad"));
    }

    #[test]
    fn empty_and_empty_alt() {
        assert!(accepts(&Re::Empty, ""));
        assert!(!accepts(&Re::Empty, "a"));
        assert!(accepts(&Re::Alt(vec![]), ""));
    }

    #[test]
    fn star_of_nullable_body_terminates() {
        // (a*)* must not hang the simulation.
        let re = l('a').star().star();
        assert!(accepts(&re, ""));
        assert!(accepts(&re, "aaa"));
        assert!(!accepts(&re, "b"));
    }

    #[test]
    fn nullable_leaf_gets_bypass() {
        // A leaf marked nullable may be skipped entirely.
        let mut leaves = Vec::new();
        let re = l('a').then(l('N')).then(l('b'));
        let nfa = Nfa::compile(&re, &mut |c: &char| {
            leaves.push(*c);
            (LeafId(leaves.len() as u32 - 1), *c == 'N')
        });
        let test = |input: &str| {
            let chars: Vec<char> = input.chars().collect();
            pike::matches_exact(&nfa, chars.len(), &mut |leaf: LeafId, pos: usize| {
                leaves[leaf.0 as usize] == chars[pos]
            })
        };
        assert!(test("aNb"));
        assert!(test("ab")); // N skipped
        assert!(!test("a"));
    }

    #[test]
    fn pathological_pattern_is_polynomial() {
        // (a|a)^16 a* on "a"*32 — exponential for backtrackers, fine here.
        let mut re = Re::Empty;
        for _ in 0..16 {
            re = re.then(l('a').or(l('a')));
        }
        re = re.then(l('a').star());
        let input: String = "a".repeat(32);
        assert!(accepts(&re, &input));
        assert!(!accepts(&re, &"a".repeat(8)));
    }
}
