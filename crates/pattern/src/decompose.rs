//! Pattern decomposition for optimization (paper §4, "Why Split?").
//!
//! The paper's central optimization idea is to mirror relational
//! predicate splitting: break a complex pattern into a cheap piece that
//! an index can answer (typically a single alphabet-predicate) plus a
//! residual pattern that only runs on the narrowed candidate set. This
//! module extracts those cheap pieces:
//!
//! * [`tree_root_pred`] — the alphabet-predicate every match root must
//!   satisfy, enabling `sub_select(tp)(T)` →
//!   `apply(sub_select(⊤tp))(split(root, …)(T))` with an index probe for
//!   the root predicate.
//! * [`list_required_pred`] — a predicate some element of every list
//!   match must satisfy, with its offset from the match start when that
//!   offset is fixed.
//! * [`PredExpr::conjuncts`] (in [`crate::alphabet`]) — conjunctive
//!   splitting of a single alphabet-predicate.

use crate::alphabet::PredExpr;
use crate::ast::Re;
use crate::list::Sym;
use crate::tree_ast::{NodeTest, TreePat};

/// The alphabet-predicate that the *root* of every match of `pat` must
/// satisfy, if one exists statically.
///
/// * A node/leaf pattern contributes its own test (`?` contributes
///   nothing — every node passes).
/// * An alternation contributes the disjunction of its branches' root
///   predicates, provided every branch has one.
/// * A closure contributes its body's root predicate **only** when the
///   closure requires at least one iteration (`+`); a `*` closure can
///   match without its body ever anchoring at the root… except that a
///   `*` closure *as the whole pattern* still needs one instance to be a
///   non-empty match, so we use the body's predicate there too.
/// * A concatenation contributes its left operand's root predicate
///   (concatenation substitutes into the left, so the root is the left
///   root).
pub fn tree_root_pred(pat: &TreePat) -> Option<PredExpr> {
    match pat {
        TreePat::Leaf(NodeTest::Pred(p)) | TreePat::Node(NodeTest::Pred(p), _) => Some(p.clone()),
        TreePat::Leaf(NodeTest::Any) | TreePat::Node(NodeTest::Any, _) => None,
        TreePat::Point(_) => None,
        TreePat::Alt(xs) => {
            let mut preds = Vec::with_capacity(xs.len());
            for x in xs {
                preds.push(tree_root_pred(x)?);
            }
            let mut it = preds.into_iter();
            let first = it.next()?;
            Some(it.fold(first, |acc, p| acc.or(p)))
        }
        TreePat::Concat { left, .. } => tree_root_pred(left),
        TreePat::Closure { body, .. } => tree_root_pred(body),
    }
}

/// A predicate that *some* element of every match of the list regex must
/// satisfy. `offset` is the element's distance from the match start when
/// it is statically fixed (usable with a positional index), `None` when
/// preceded by variable-length parts.
#[derive(Debug, Clone, PartialEq)]
pub struct RequiredPred {
    pub pred: PredExpr,
    pub offset: Option<usize>,
}

/// Extract one required predicate from a list regex, preferring the
/// earliest fixed-offset one.
pub fn list_required_pred(re: &Re<Sym>) -> Option<RequiredPred> {
    // Walk the top-level concatenation tracking whether the offset so far
    // is fixed, and by how much each part advances it.
    fn walk(re: &Re<Sym>, offset: Option<usize>) -> (Option<RequiredPred>, Option<usize>) {
        match re {
            Re::Leaf(Sym::Pred(p)) => (
                Some(RequiredPred {
                    pred: p.clone(),
                    offset,
                }),
                offset.map(|o| o + 1),
            ),
            Re::Leaf(Sym::Any) => (None, offset.map(|o| o + 1)),
            Re::Empty => (None, offset),
            Re::Prune(x) => walk(x, offset),
            Re::Concat(xs) => {
                let mut off = offset;
                let mut found: Option<RequiredPred> = None;
                for x in xs {
                    let (f, next) = walk(x, off);
                    if found.is_none() {
                        found = f;
                    } else if found.as_ref().is_some_and(|r| r.offset.is_none()) {
                        // Upgrade to a fixed-offset requirement if a later
                        // part provides one.
                        if let Some(better) = f {
                            if better.offset.is_some() {
                                found = Some(better);
                            }
                        }
                    }
                    off = next;
                }
                (found, off)
            }
            // Every branch of an alternation would have to require the
            // same predicate; do not attempt that analysis.
            Re::Alt(_) => (None, None),
            // Starred parts are optional: nothing required, offset lost.
            Re::Star(_) => (None, None),
            // A plus body occurs at least once.
            Re::Plus(x) => {
                let (f, _) = walk(x, offset);
                (f, None)
            }
        }
    }
    walk(re, Some(0)).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_ast::TreePat;

    fn p(name: &str) -> PredExpr {
        PredExpr::eq("label", name)
    }

    #[test]
    fn root_pred_of_node_pattern() {
        let pat = TreePat::pred_node(p("d"), Re::Leaf(TreePat::any()));
        assert_eq!(tree_root_pred(&pat), Some(p("d")));
    }

    #[test]
    fn root_pred_of_wildcard_is_none() {
        assert_eq!(tree_root_pred(&TreePat::any()), None);
        assert_eq!(tree_root_pred(&TreePat::point("x")), None);
    }

    #[test]
    fn root_pred_of_alt_is_disjunction() {
        let pat = TreePat::pred(p("a")).or(TreePat::pred(p("b")));
        let got = tree_root_pred(&pat).unwrap();
        assert_eq!(got, p("a").or(p("b")));
        // One wildcard branch poisons the disjunction.
        let pat = TreePat::pred(p("a")).or(TreePat::any());
        assert_eq!(tree_root_pred(&pat), None);
    }

    #[test]
    fn root_pred_through_concat_and_closure() {
        let pat = TreePat::pred_node(p("a"), Re::Leaf(TreePat::point("1")))
            .concat_at("1", TreePat::pred(p("b")));
        assert_eq!(tree_root_pred(&pat), Some(p("a")));
        let closure = TreePat::pred_node(p("a"), Re::Leaf(TreePat::point("x"))).star_at("x");
        assert_eq!(tree_root_pred(&closure), Some(p("a")));
    }

    #[test]
    fn list_required_first_fixed() {
        // [A ? B] — A required at offset 0.
        let re = Sym::pred(p("A")).then(Sym::any()).then(Sym::pred(p("B")));
        let r = list_required_pred(&re).unwrap();
        assert_eq!(r.pred, p("A"));
        assert_eq!(r.offset, Some(0));
    }

    #[test]
    fn list_required_after_wildcards() {
        // [? ? A] — A required at offset 2.
        let re = Sym::any().then(Sym::any()).then(Sym::pred(p("A")));
        let r = list_required_pred(&re).unwrap();
        assert_eq!(r.offset, Some(2));
    }

    #[test]
    fn star_erases_offset_but_later_pred_still_found() {
        // [?* A] — A required, offset unknown.
        let re = Sym::any().star().then(Sym::pred(p("A")));
        let r = list_required_pred(&re).unwrap();
        assert_eq!(r.pred, p("A"));
        assert_eq!(r.offset, None);
    }

    #[test]
    fn alternation_requires_nothing() {
        let re = Sym::pred(p("A")).or(Sym::pred(p("B")));
        assert_eq!(list_required_pred(&re), None);
    }

    #[test]
    fn plus_body_is_required() {
        let re = Sym::pred(p("A")).plus();
        let r = list_required_pred(&re).unwrap();
        assert_eq!(r.pred, p("A"));
        assert_eq!(r.offset, Some(0));
    }

    #[test]
    fn prune_is_transparent() {
        let re = Sym::pred(p("A")).prune().then(Sym::pred(p("B")));
        let r = list_required_pred(&re).unwrap();
        assert_eq!(r.pred, p("A"));
    }
}
