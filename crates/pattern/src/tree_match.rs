//! Tree-pattern matching and match extraction (paper §3.4).
//!
//! Matching is the two-step process of §3.4: first decide *whether* a
//! pattern matches at a node (a boolean, memoized per `(subpattern,
//! node)` pair so the whole-tree cost is bounded by `O(nodes × pattern
//! size × fan-out)`), then *extract* the match instances: which nodes
//! were matched, and where the instance was cut from the rest of the
//! tree. Cuts are the concatenation points `α_1 … α_n` that `split`
//! (in `aqua-algebra`) turns into the descendants list; they arise from
//!
//! * `!` pruning — the largest subtree rooted at the pruned node is cut
//!   ([`CutOrigin::Pruned`]), and
//! * pattern leaves matching internal tree nodes — the node's children
//!   are cut ([`CutOrigin::Frontier`]); the `⊥` anchor forbids these.
//!
//! The matcher is generic over [`TreeAccess`] so this crate stays
//! independent of the concrete arena tree in `aqua-algebra`.
//!
//! (`split` lives in `aqua-algebra`; this crate only produces the cuts.)

use std::collections::{HashMap, HashSet};

use aqua_guard::{ExecGuard, GuardError};
use aqua_object::{ObjectStore, Oid};

use crate::nfa::LeafId;
use crate::pike;
use crate::tree_ast::{CPat, CTest, CcLabel, CompiledTreePattern, PatId};

/// What a tree node contains: an object (via its cell) or a labeled NULL
/// (a concatenation point appearing in an instance, paper §3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodePayloadRef<'a> {
    /// A real element: the OID inside the node's cell.
    Obj(Oid),
    /// A labeled NULL left behind by `split`/concatenation.
    Hole(&'a CcLabel),
}

/// Read-only access to an ordered tree, as the matcher needs it.
///
/// Node handles are dense `u32` indices into the implementor's arena.
pub trait TreeAccess {
    /// Number of node slots (an upper bound on node handles).
    fn node_count(&self) -> usize;
    /// The root node.
    fn root(&self) -> u32;
    /// The ordered children of `node`.
    fn children(&self, node: u32) -> &[u32];
    /// The payload of `node`.
    fn payload(&self, node: u32) -> NodePayloadRef<'_>;
    /// The full preorder (document-order) sequence, if the implementor
    /// keeps it precomputed — a flat columnar arena does. `None` makes
    /// the matcher walk the tree on demand. Implementations must return
    /// exactly the order a root-down, children-left-to-right DFS
    /// produces.
    fn preorder_hint(&self) -> Option<&[u32]> {
        None
    }
}

/// Why a subtree was cut from a match instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutOrigin {
    /// Cut by a `!` prune group: the matched node and its whole subtree
    /// are removed from the instance.
    Pruned,
    /// Cut because a pattern leaf matched an internal node: the node
    /// stays, its children are cut.
    Frontier,
}

/// One cut point of a match: the subtree rooted at `root` (a child of
/// matched node `parent` at position `child_idx`) is not part of the
/// instance and reattaches at concatenation point `α_i`, where `i` is
/// this cut's position in [`TreeMatch::cuts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cut {
    pub parent: u32,
    pub child_idx: u32,
    pub root: u32,
    pub origin: CutOrigin,
}

/// A match instance: the matched (kept) nodes in document order and the
/// ordered cut points.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeMatch {
    /// Root node of the instance in the subject tree.
    pub root: u32,
    /// Matched nodes in document (preorder) encounter order; `nodes[0] ==
    /// root`.
    pub nodes: Vec<u32>,
    /// Cut points in document order: cut `i` corresponds to `α_{i+1}`.
    pub cuts: Vec<Cut>,
}

impl TreeMatch {
    /// Whether `node` is part of the kept instance.
    pub fn contains(&self, node: u32) -> bool {
        self.nodes.contains(&node)
    }
}

/// Limits for match enumeration. A single root can have several distinct
/// parses (e.g. `printf(?* LD ?* LD ?*)` over repeated arguments), and
/// closures can in principle generate exponentially many, so enumeration
/// is capped.
#[derive(Debug, Clone, Copy)]
pub struct MatchConfig {
    /// Maximum regex parses explored per child list.
    pub parse_limit: usize,
    /// Maximum match instances reported per match root.
    pub per_root_limit: usize,
    /// Maximum match instances reported overall.
    pub max_matches: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            parse_limit: 64,
            per_root_limit: 16,
            max_matches: usize::MAX,
        }
    }
}

impl MatchConfig {
    /// Keep only the first (highest-priority) instance per root.
    pub fn first_per_root() -> Self {
        MatchConfig {
            per_root_limit: 1,
            ..Default::default()
        }
    }
}

/// Result of a bounded match enumeration: the instances found plus an
/// account of everything the [`MatchConfig`] limits clipped. Truncation
/// is observable, never silent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchOutcome {
    /// Match instances, in document order of their roots.
    pub matches: Vec<TreeMatch>,
    /// `true` if any limit clipped enumeration (any counter below > 0).
    pub truncated: bool,
    /// Child-list parse enumerations clipped by [`MatchConfig::parse_limit`].
    pub clipped_parses: usize,
    /// Roots whose instance list was clipped by
    /// [`MatchConfig::per_root_limit`].
    pub clipped_roots: usize,
    /// `true` if the scan stopped early at [`MatchConfig::max_matches`].
    pub hit_max_matches: bool,
}

/// Truncation tallies accumulated while enumerating.
#[derive(Debug, Clone, Copy, Default)]
struct TruncCounters {
    parses: usize,
    roots: usize,
    global: bool,
}

impl TruncCounters {
    fn any(&self) -> bool {
        self.parses > 0 || self.roots > 0 || self.global
    }
}

/// A matching session over one tree. Holds the boolean memo table, so
/// reuse one matcher per (pattern, tree) pair.
pub struct TreeMatcher<'a, T: TreeAccess> {
    cp: &'a CompiledTreePattern,
    tree: &'a T,
    store: &'a ObjectStore,
    memo: HashMap<(u32, u32), bool>,
    in_progress: HashSet<(u32, u32)>,
    /// Disable memoization (benchmark ablation B7).
    pub memoize: bool,
    /// Optional execution guard; every matcher recursion accounts a step.
    guard: Option<&'a ExecGuard>,
    /// Side channel for guard verdicts: the recursive matcher returns
    /// plain bools, so a tripped guard is parked here and every
    /// subsequent recursion short-circuits until the entry point
    /// surfaces it as an `Err`.
    tripped: Option<GuardError>,
    /// Truncation tallies for the current enumeration.
    trunc: TruncCounters,
}

impl<'a, T: TreeAccess> TreeMatcher<'a, T> {
    /// A matcher for `pattern` over `tree`, dereferencing cells in
    /// `store`.
    pub fn new(pattern: &'a CompiledTreePattern, tree: &'a T, store: &'a ObjectStore) -> Self {
        TreeMatcher {
            cp: pattern,
            tree,
            store,
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            memoize: true,
            guard: None,
            tripped: None,
            trunc: TruncCounters::default(),
        }
    }

    /// Attach an execution guard: matcher recursions and child-list VM
    /// runs account steps against it, and the guarded entry points
    /// ([`matches_at_guarded`](Self::matches_at_guarded),
    /// [`find_matches_outcome`](Self::find_matches_outcome)) surface its
    /// verdicts.
    pub fn with_guard(mut self, guard: &'a ExecGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Account one matcher step; returns `false` (and parks the verdict)
    /// once the guard trips, so recursion unwinds quickly.
    #[inline]
    fn guard_step(&mut self) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if let Some(g) = self.guard {
            if let Some(m) = g.metrics() {
                m.match_visits.inc();
            }
            if let Err(e) = g.step() {
                self.tripped = Some(e);
                return false;
            }
        }
        true
    }

    /// Surface a parked guard verdict, if any.
    fn take_tripped(&mut self) -> Result<(), GuardError> {
        match self.tripped.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Does the pattern (ignoring anchors) match with its root at `node`?
    ///
    /// Must not be used with a guard attached (a tripped budget would be
    /// indistinguishable from "no match"); use
    /// [`matches_at_guarded`](Self::matches_at_guarded) instead.
    pub fn matches_at(&mut self, node: u32) -> bool {
        debug_assert!(
            self.guard.is_none(),
            "matches_at with a guard attached; use matches_at_guarded"
        );
        let root = self.cp.root();
        self.pat_matches(root, node)
    }

    /// [`matches_at`](Self::matches_at) under the attached guard:
    /// budget exhaustion, deadline, and cancellation surface as errors
    /// rather than being conflated with "no match".
    pub fn matches_at_guarded(&mut self, node: u32) -> Result<bool, GuardError> {
        let root = self.cp.root();
        let matched = self.pat_matches(root, node);
        self.take_tripped()?;
        Ok(matched)
    }

    fn test_node(&self, test: &CTest, node: u32) -> bool {
        match (test, self.tree.payload(node)) {
            (CTest::Any, NodePayloadRef::Obj(_)) => true,
            (CTest::Pred(p), NodePayloadRef::Obj(oid)) => self.cp.pred(*p).eval(self.store, oid),
            // `?` and alphabet-predicates match objects, never labeled
            // NULLs; only an explicit concatenation point matches a hole.
            (_, NodePayloadRef::Hole(_)) => false,
        }
    }

    fn pat_matches(&mut self, pat: PatId, node: u32) -> bool {
        if !self.guard_step() {
            return false;
        }
        let key = (pat.0, node);
        if self.memoize {
            if let Some(&v) = self.memo.get(&key) {
                if let Some(m) = self.guard.and_then(ExecGuard::metrics) {
                    m.match_memo_hits.inc();
                }
                return v;
            }
        }
        if !self.in_progress.insert(key) {
            // Recursive self-dependency (e.g. a closure whose body is its
            // own point): the least fixpoint is "no match".
            return false;
        }
        let tree = self.tree;
        let guard = self.guard;
        let result = match self.cp.pat(pat) {
            CPat::Node { test, children } => {
                let test = test.clone();
                if !self.test_node(&test, node) {
                    false
                } else {
                    match children {
                        None => true,
                        Some(cl) => {
                            let cl = cl.clone();
                            let kids = tree.children(node);
                            let run = pike::matches_exact_guarded(
                                &cl.nfa,
                                kids.len(),
                                &mut |leaf: LeafId, pos: usize| {
                                    self.pat_matches(cl.syms[leaf.0 as usize], kids[pos])
                                },
                                guard,
                            );
                            match run {
                                Ok(m) => m,
                                Err(e) => {
                                    if self.tripped.is_none() {
                                        self.tripped = Some(e);
                                    }
                                    false
                                }
                            }
                        }
                    }
                }
            }
            CPat::Hole(cc) => match tree.payload(node) {
                NodePayloadRef::Hole(l) => l == self.cp.cc_label(*cc),
                NodePayloadRef::Obj(_) => false,
            },
            CPat::Alt(xs) => {
                let xs = xs.clone();
                xs.into_iter().any(|x| self.pat_matches(x, node))
            }
            CPat::Closure { body, .. } => {
                let body = *body;
                self.pat_matches(body, node)
            }
            CPat::Continue { closure } => {
                let body = match self.cp.pat(*closure) {
                    CPat::Closure { body, .. } => *body,
                    _ => unreachable!("Continue must reference a Closure"),
                };
                self.pat_matches(body, node)
            }
        };
        self.in_progress.remove(&key);
        // A result computed while the guard was tripping is unreliable
        // (sub-evaluations short-circuited to false); keep it out of the
        // memo so the matcher stays reusable after an error.
        if self.memoize && self.tripped.is_none() {
            self.memo.insert(key, result);
        }
        result
    }

    /// Preorder traversal of the subject tree.
    fn preorder(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.tree.node_count());
        let mut stack = vec![self.tree.root()];
        while let Some(n) = stack.pop() {
            order.push(n);
            let kids = self.tree.children(n);
            stack.extend(kids.iter().rev().copied());
        }
        order
    }

    /// All match instances in the tree, in document order of their roots,
    /// respecting the pattern's anchors and the enumeration limits.
    ///
    /// Truncation by the limits is silent here; use
    /// [`find_matches_outcome`](Self::find_matches_outcome) to observe it.
    pub fn find_matches(&mut self, cfg: &MatchConfig) -> Vec<TreeMatch> {
        debug_assert!(
            self.guard.is_none(),
            "find_matches with a guard attached; use find_matches_outcome"
        );
        match self.find_matches_outcome(cfg) {
            Ok(outcome) => outcome.matches,
            Err(e) => unreachable!("guardless matching cannot trip a guard: {e}"),
        }
    }

    /// Match instances whose roots are drawn from `candidates` (in the
    /// given order). This is the entry point the optimizer uses after an
    /// index probe has produced a candidate set (paper §4, "Why Split?").
    pub fn find_matches_from(&mut self, candidates: &[u32], cfg: &MatchConfig) -> Vec<TreeMatch> {
        debug_assert!(
            self.guard.is_none(),
            "find_matches_from with a guard attached; use find_matches_from_outcome"
        );
        match self.find_matches_from_outcome(candidates, cfg) {
            Ok(outcome) => outcome.matches,
            Err(e) => unreachable!("guardless matching cannot trip a guard: {e}"),
        }
    }

    /// [`find_matches`](Self::find_matches) with observable truncation
    /// and guard support.
    pub fn find_matches_outcome(&mut self, cfg: &MatchConfig) -> Result<MatchOutcome, GuardError> {
        // `self.tree` is a shared reference independent of `self`, so a
        // precomputed preorder column borrows past the `&mut self` call.
        let tree = self.tree;
        let owned: Vec<u32>;
        let candidates: &[u32] = if self.cp.at_root {
            owned = vec![tree.root()];
            &owned
        } else if let Some(hint) = tree.preorder_hint() {
            hint
        } else {
            owned = self.preorder();
            &owned
        };
        self.find_matches_from_outcome(candidates, cfg)
    }

    /// [`find_matches_from`](Self::find_matches_from) with observable
    /// truncation and guard support: whenever `parse_limit`,
    /// `per_root_limit`, or `max_matches` clips enumeration, the
    /// [`MatchOutcome`] says so; a tripped guard aborts with its verdict.
    pub fn find_matches_from_outcome(
        &mut self,
        candidates: &[u32],
        cfg: &MatchConfig,
    ) -> Result<MatchOutcome, GuardError> {
        self.trunc = TruncCounters::default();
        let mut out = Vec::new();
        let mut candidates_left = candidates.len();
        // Hoisted once; `self.guard` holds a `&'a ExecGuard`, so the
        // borrow does not pin `self`.
        let obs = self.guard.and_then(ExecGuard::metrics);
        for &node in candidates {
            candidates_left -= 1;
            if let Some(m) = obs {
                m.match_candidates.inc();
            }
            if let Some(g) = self.guard {
                if let Err(e) = g.checkpoint() {
                    self.tripped = None;
                    return Err(e);
                }
            }
            if self.cp.at_root && node != self.tree.root() {
                if let Some(m) = obs {
                    m.match_candidates_pruned.inc();
                }
                continue;
            }
            let root_pat = self.cp.root();
            if !self.pat_matches(root_pat, node) {
                self.take_tripped()?;
                if let Some(m) = obs {
                    m.match_candidates_pruned.inc();
                }
                continue;
            }
            let mut partials = Vec::new();
            let mut stack = Vec::new();
            self.enum_pat(root_pat, node, cfg, &mut stack, &mut partials);
            self.take_tripped()?;
            /// Dedup key: kept nodes + (cut root, origin) pairs.
            type MatchKey = (Vec<u32>, Vec<(u32, CutOrigin)>);
            let mut seen: HashSet<MatchKey> = HashSet::new();
            let mut kept = 0usize;
            let mut partials_left = partials.len();
            for p in partials {
                partials_left -= 1;
                if self.cp.at_leaves && p.cuts.iter().any(|c| c.origin == CutOrigin::Frontier) {
                    continue;
                }
                let key = (
                    p.nodes.clone(),
                    p.cuts.iter().map(|c| (c.root, c.origin)).collect(),
                );
                if !seen.insert(key) {
                    continue;
                }
                out.push(TreeMatch {
                    root: node,
                    nodes: p.nodes,
                    cuts: p.cuts,
                });
                if let Some(m) = obs {
                    m.matches_found.inc();
                }
                kept += 1;
                if kept >= cfg.per_root_limit || out.len() >= cfg.max_matches {
                    if partials_left > 0 {
                        if kept >= cfg.per_root_limit {
                            self.trunc.roots += 1;
                        }
                        if out.len() >= cfg.max_matches {
                            self.trunc.global = true;
                        }
                    }
                    break;
                }
            }
            if out.len() >= cfg.max_matches {
                if candidates_left > 0 {
                    self.trunc.global = true;
                }
                break;
            }
        }
        Ok(MatchOutcome {
            matches: out,
            truncated: self.trunc.any(),
            clipped_parses: self.trunc.parses,
            clipped_roots: self.trunc.roots,
            hit_max_matches: self.trunc.global,
        })
    }

    fn enum_pat(
        &mut self,
        pat: PatId,
        node: u32,
        cfg: &MatchConfig,
        stack: &mut Vec<(u32, u32)>,
        out: &mut Vec<Partial>,
    ) {
        if !self.guard_step() {
            return;
        }
        let key = (pat.0, node);
        if stack.contains(&key) {
            return;
        }
        if !self.pat_matches(pat, node) {
            return;
        }
        stack.push(key);
        let tree = self.tree;
        let guard = self.guard;
        match self.cp.pat(pat) {
            CPat::Node { test: _, children } => match children {
                None => {
                    let kids = tree.children(node);
                    let cuts = kids
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| Cut {
                            parent: node,
                            child_idx: i as u32,
                            root: c,
                            origin: CutOrigin::Frontier,
                        })
                        .collect();
                    out.push(Partial {
                        nodes: vec![node],
                        cuts,
                    });
                }
                Some(cl) => {
                    let cl = cl.clone();
                    let kids = tree.children(node);
                    let parses = pike::enumerate_paths_guarded(
                        &cl.nfa,
                        kids.len(),
                        &mut |leaf: LeafId, pos: usize| {
                            self.pat_matches(cl.syms[leaf.0 as usize], kids[pos])
                        },
                        cfg.parse_limit,
                        guard,
                    );
                    let parses = match parses {
                        Ok(p) => p,
                        Err(e) => {
                            if self.tripped.is_none() {
                                self.tripped = Some(e);
                            }
                            stack.pop();
                            return;
                        }
                    };
                    if parses.truncated {
                        self.trunc.parses += 1;
                    }
                    let mut paths_left = parses.paths.len();
                    for path in parses.paths {
                        paths_left -= 1;
                        // Combine per-step options into instances
                        // (cartesian product, capped).
                        let mut acc = vec![Partial {
                            nodes: vec![node],
                            cuts: Vec::new(),
                        }];
                        for step in &path {
                            let child = kids[step.pos];
                            if step.pruned {
                                for p in &mut acc {
                                    p.cuts.push(Cut {
                                        parent: node,
                                        child_idx: step.pos as u32,
                                        root: child,
                                        origin: CutOrigin::Pruned,
                                    });
                                }
                            } else {
                                let sym = cl.syms[step.leaf.0 as usize];
                                let mut sub = Vec::new();
                                self.enum_pat(sym, child, cfg, stack, &mut sub);
                                if sub.is_empty() {
                                    acc.clear();
                                    break;
                                }
                                let mut next = Vec::with_capacity(acc.len().min(cfg.parse_limit));
                                'combine: for a in &acc {
                                    for s in &sub {
                                        let mut merged = a.clone();
                                        merged.nodes.extend_from_slice(&s.nodes);
                                        merged.cuts.extend_from_slice(&s.cuts);
                                        next.push(merged);
                                        if next.len() >= cfg.parse_limit {
                                            if next.len() < acc.len() * sub.len() {
                                                self.trunc.parses += 1;
                                            }
                                            break 'combine;
                                        }
                                    }
                                }
                                acc = next;
                            }
                        }
                        out.extend(acc);
                        if out.len() >= cfg.parse_limit {
                            if paths_left > 0 {
                                self.trunc.parses += 1;
                            }
                            break;
                        }
                    }
                }
            },
            CPat::Hole(_) => {
                out.push(Partial {
                    nodes: vec![node],
                    cuts: Vec::new(),
                });
            }
            CPat::Alt(xs) => {
                let xs = xs.clone();
                let mut arms_left = xs.len();
                for x in xs {
                    arms_left -= 1;
                    self.enum_pat(x, node, cfg, stack, out);
                    if out.len() >= cfg.parse_limit {
                        if arms_left > 0 {
                            self.trunc.parses += 1;
                        }
                        break;
                    }
                }
            }
            CPat::Closure { body, .. } => {
                let body = *body;
                self.enum_pat(body, node, cfg, stack, out);
            }
            CPat::Continue { closure } => {
                let body = match self.cp.pat(*closure) {
                    CPat::Closure { body, .. } => *body,
                    _ => unreachable!(),
                };
                self.enum_pat(body, node, cfg, stack, out);
            }
        }
        stack.pop();
    }
}

#[derive(Debug, Clone)]
struct Partial {
    nodes: Vec<u32>,
    cuts: Vec<Cut>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Re;
    use crate::tree_ast::{TreePat, TreePattern};
    use crate::PredExpr;
    use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, Value};

    /// A minimal arena tree for the tests; the real one lives in
    /// `aqua-algebra`.
    struct TestTree {
        payloads: Vec<TestPayload>,
        children: Vec<Vec<u32>>,
        root: u32,
    }

    enum TestPayload {
        Obj(Oid),
        Hole(CcLabel),
    }

    impl TreeAccess for TestTree {
        fn node_count(&self) -> usize {
            self.payloads.len()
        }
        fn root(&self) -> u32 {
            self.root
        }
        fn children(&self, node: u32) -> &[u32] {
            &self.children[node as usize]
        }
        fn payload(&self, node: u32) -> NodePayloadRef<'_> {
            match &self.payloads[node as usize] {
                TestPayload::Obj(o) => NodePayloadRef::Obj(*o),
                TestPayload::Hole(l) => NodePayloadRef::Hole(l),
            }
        }
    }

    struct Fixture {
        store: ObjectStore,
        class: ClassId,
    }

    impl Fixture {
        fn new() -> Self {
            let mut store = ObjectStore::new();
            let class = store
                .define_class(
                    ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
                )
                .unwrap();
            Fixture { store, class }
        }

        /// Build a tree from a preorder spec like `a(b(d f) c)` using
        /// single-char labels; every node gets a fresh object.
        fn tree(&mut self, spec: &str) -> TestTree {
            let chars: Vec<char> = spec.chars().filter(|c| !c.is_whitespace()).collect();
            let mut t = TestTree {
                payloads: Vec::new(),
                children: Vec::new(),
                root: 0,
            };
            let mut pos = 0usize;
            let root = self.parse_node(&chars, &mut pos, &mut t);
            t.root = root;
            t
        }

        fn new_node(&mut self, label: char, t: &mut TestTree) -> u32 {
            let oid = self
                .store
                .insert_named("N", &[("label", Value::str(label.to_string()))])
                .unwrap();
            t.payloads.push(TestPayload::Obj(oid));
            t.children.push(Vec::new());
            (t.payloads.len() - 1) as u32
        }

        fn parse_node(&mut self, chars: &[char], pos: &mut usize, t: &mut TestTree) -> u32 {
            let c = chars[*pos];
            *pos += 1;
            let id = if c == '@' {
                let l = chars[*pos];
                *pos += 1;
                t.payloads
                    .push(TestPayload::Hole(CcLabel::new(l.to_string())));
                t.children.push(Vec::new());
                (t.payloads.len() - 1) as u32
            } else {
                self.new_node(c, t)
            };
            if *pos < chars.len() && chars[*pos] == '(' {
                *pos += 1;
                let mut kids = Vec::new();
                while chars[*pos] != ')' {
                    kids.push(self.parse_node(chars, pos, t));
                }
                *pos += 1;
                t.children[id as usize] = kids;
            }
            id
        }

        fn label(&self, l: char) -> PredExpr {
            PredExpr::eq("label", l.to_string())
        }

        fn compile(&self, p: TreePattern) -> CompiledTreePattern {
            p.compile(self.class, self.store.class(self.class)).unwrap()
        }

        fn labels_of(&self, t: &TestTree, nodes: &[u32]) -> String {
            nodes
                .iter()
                .map(|&n| match t.payload(n) {
                    NodePayloadRef::Obj(o) => match self.store.attr(o, aqua_object::AttrId(0)) {
                        Value::Str(s) => s.clone(),
                        _ => "?".into(),
                    },
                    NodePayloadRef::Hole(l) => format!("{l}"),
                })
                .collect()
        }
    }

    #[test]
    fn leaf_pattern_matches_everywhere_it_should() {
        let mut fx = Fixture::new();
        let t = fx.tree("a(b(d f) b)");
        let cp = fx.compile(TreePattern::new(TreePat::pred(fx.label('b'))));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let ms = m.find_matches(&MatchConfig::default());
        assert_eq!(ms.len(), 2);
        // First match: internal b — children cut at the frontier.
        assert_eq!(ms[0].cuts.len(), 2);
        assert!(ms[0].cuts.iter().all(|c| c.origin == CutOrigin::Frontier));
        // Second match: leaf b — no cuts.
        assert!(ms[1].cuts.is_empty());
    }

    #[test]
    fn node_pattern_requires_full_child_consumption() {
        let mut fx = Fixture::new();
        let t = fx.tree("a(b c)");
        // a(b) must NOT match a node with children [b, c] …
        let p1 = fx.compile(TreePattern::new(TreePat::pred_node(
            fx.label('a'),
            Re::Leaf(TreePat::pred(fx.label('b'))),
        )));
        let mut m1 = TreeMatcher::new(&p1, &t, &fx.store);
        assert!(m1.find_matches(&MatchConfig::default()).is_empty());
        // …but a(b ?*) does.
        let p2 = fx.compile(TreePattern::new(TreePat::pred_node(
            fx.label('a'),
            Re::Leaf(TreePat::pred(fx.label('b'))).then(Re::Leaf(TreePat::any()).star()),
        )));
        let mut m2 = TreeMatcher::new(&p2, &t, &fx.store);
        let ms = m2.find_matches(&MatchConfig::default());
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].nodes.len(), 3); // a, b, c all kept
    }

    #[test]
    fn pruning_cuts_whole_subtrees() {
        let mut fx = Fixture::new();
        // Paper Fig. 4 shape: Brazil(!?* USA !?*) — here b(!?* u !?*).
        let t = fx.tree("b(x(p q) u(y) z)");
        let pat = TreePat::pred_node(
            fx.label('b'),
            Re::Leaf(TreePat::any())
                .prune()
                .star()
                .then(Re::Leaf(TreePat::pred(fx.label('u'))))
                .then(Re::Leaf(TreePat::any()).prune().star()),
        );
        let cp = fx.compile(TreePattern::new(pat));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let ms = m.find_matches(&MatchConfig::default());
        assert_eq!(ms.len(), 1);
        let mt = &ms[0];
        // Kept: b and u. u's child y is a frontier cut; x and z pruned.
        assert_eq!(fx.labels_of(&t, &mt.nodes), "bu");
        let origins: Vec<CutOrigin> = mt.cuts.iter().map(|c| c.origin).collect();
        assert_eq!(
            origins,
            vec![CutOrigin::Pruned, CutOrigin::Frontier, CutOrigin::Pruned]
        );
        // Cuts are in document order: x, then y (under u), then z.
        let cut_labels: String =
            fx.labels_of(&t, &mt.cuts.iter().map(|c| c.root).collect::<Vec<_>>());
        assert_eq!(cut_labels, "xyz");
    }

    #[test]
    fn variable_arity_enumerates_distinct_parses() {
        let mut fx = Fixture::new();
        // printf(?* L ?* L ?*) over printf with three L children: C(3,2)=3 parses.
        let t = fx.tree("p(L L L)");
        let l = || Re::Leaf(TreePat::pred(fx.label('L')));
        let anys = || Re::Leaf(TreePat::any()).star();
        let pat = TreePat::pred_node(
            fx.label('p'),
            anys().then(l()).then(anys()).then(l()).then(anys()),
        );
        let cp = fx.compile(TreePattern::new(pat));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let ms = m.find_matches(&MatchConfig::default());
        // All parses keep all four nodes, so they dedup to one instance.
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].nodes.len(), 4);
    }

    #[test]
    fn closure_matches_chains() {
        let mut fx = Fixture::new();
        // [[a(b c @x)]]*@x — Figure 2.
        let body = TreePat::pred_node(
            fx.label('a'),
            Re::Leaf(TreePat::pred(fx.label('b')))
                .then(Re::Leaf(TreePat::pred(fx.label('c'))))
                .then(Re::Leaf(TreePat::point("x"))),
        );
        let cp = fx.compile(TreePattern::new(body.star_at("x")));

        // Depth-1 member: a(b c) — the trailing @x matched NULL.
        let t1 = fx.tree("a(b c)");
        let mut m1 = TreeMatcher::new(&cp, &t1, &fx.store);
        assert!(m1.matches_at(t1.root()));

        // Depth-3 member.
        let t3 = fx.tree("a(b c a(b c a(b c)))");
        let mut m3 = TreeMatcher::new(&cp, &t3, &fx.store);
        assert!(m3.matches_at(t3.root()));
        let ms = m3.find_matches(&MatchConfig::default());
        // Matches at every chain suffix: 3 instances.
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0].nodes.len(), 9);

        // Non-member: a(b c d).
        let bad = fx.tree("a(b c d)");
        let mut mb = TreeMatcher::new(&cp, &bad, &fx.store);
        assert!(!mb.matches_at(bad.root()));
    }

    #[test]
    fn plus_closure_requires_one() {
        let mut fx = Fixture::new();
        let body = TreePat::pred_node(fx.label('a'), Re::Leaf(TreePat::point("x")));
        let cp = fx.compile(TreePattern::new(body.plus_at("x")));
        let t = fx.tree("a(a)");
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        assert!(m.matches_at(0));
        let t2 = fx.tree("b");
        let mut m2 = TreeMatcher::new(&cp, &t2, &fx.store);
        assert!(!m2.matches_at(0));
    }

    #[test]
    fn root_anchor_restricts_candidates() {
        let mut fx = Fixture::new();
        let t = fx.tree("a(b(a))");
        let cp = fx.compile(TreePattern::new(TreePat::pred(fx.label('a'))).anchored_root());
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let ms = m.find_matches(&MatchConfig::default());
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].root, t.root());
    }

    #[test]
    fn leaf_anchor_requires_tree_leaves() {
        let mut fx = Fixture::new();
        // Paper §3.3: b(d e)⊥ matches only where d, e are tree leaves.
        let t = fx.tree("a(b(d(x) e) b(d e))");
        let pat = TreePat::pred_node(
            fx.label('b'),
            Re::Leaf(TreePat::pred(fx.label('d'))).then(Re::Leaf(TreePat::pred(fx.label('e')))),
        );
        let unanchored = fx.compile(TreePattern::new(pat.clone()));
        let mut mu = TreeMatcher::new(&unanchored, &t, &fx.store);
        assert_eq!(mu.find_matches(&MatchConfig::default()).len(), 2);

        let anchored = fx.compile(TreePattern::new(pat).anchored_leaves());
        let mut ma = TreeMatcher::new(&anchored, &t, &fx.store);
        let ms = ma.find_matches(&MatchConfig::default());
        assert_eq!(ms.len(), 1);
        // The surviving match is the second b (whose d has no children).
        assert!(ms[0].cuts.is_empty());
    }

    #[test]
    fn holes_in_instances_match_points() {
        let mut fx = Fixture::new();
        // Instance a(@x) — a labeled NULL as a child (paper §3.5).
        let t = fx.tree("a(@x)");
        let pat = TreePat::pred_node(fx.label('a'), Re::Leaf(TreePat::point("x")));
        let cp = fx.compile(TreePattern::new(pat));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        assert!(m.matches_at(t.root()));
        // The wildcard does NOT match a hole.
        let anypat = fx.compile(TreePattern::new(TreePat::pred_node(
            fx.label('a'),
            Re::Leaf(TreePat::any()),
        )));
        let mut m2 = TreeMatcher::new(&anypat, &t, &fx.store);
        assert!(!m2.matches_at(t.root()));
        // A point with a different label does not match either.
        let wrong = fx.compile(TreePattern::new(TreePat::pred_node(
            fx.label('a'),
            Re::Leaf(TreePat::point("y")),
        )));
        let mut m3 = TreeMatcher::new(&wrong, &t, &fx.store);
        assert!(!m3.matches_at(t.root()));
    }

    #[test]
    fn alternation_of_tree_patterns() {
        let mut fx = Fixture::new();
        let t = fx.tree("a(b c)");
        let pat = TreePat::pred(fx.label('b')).or(TreePat::pred(fx.label('c')));
        let cp = fx.compile(TreePattern::new(pat));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        assert_eq!(m.find_matches(&MatchConfig::default()).len(), 2);
    }

    #[test]
    fn candidate_restriction() {
        let mut fx = Fixture::new();
        let t = fx.tree("a(b b b)");
        let cp = fx.compile(TreePattern::new(TreePat::pred(fx.label('b'))));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let ms = m.find_matches_from(&[2], &MatchConfig::default());
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].root, 2);
    }

    #[test]
    fn memo_ablation_gives_same_answers() {
        let mut fx = Fixture::new();
        let t = fx.tree("a(b(d f) b)");
        let cp = fx.compile(TreePattern::new(TreePat::pred_node(
            fx.label('b'),
            Re::Leaf(TreePat::any()).star(),
        )));
        let mut with = TreeMatcher::new(&cp, &t, &fx.store);
        let r1 = with.find_matches(&MatchConfig::default());
        let mut without = TreeMatcher::new(&cp, &t, &fx.store);
        without.memoize = false;
        let r2 = without.find_matches(&MatchConfig::default());
        assert_eq!(r1, r2);
    }

    #[test]
    fn per_root_truncation_is_observable() {
        let mut fx = Fixture::new();
        // p(?* !L ?*) over p(L L): either L can be the pruned one, so two
        // distinct instances share the root.
        let t = fx.tree("p(L L)");
        let pat = TreePat::pred_node(
            fx.label('p'),
            Re::Leaf(TreePat::any())
                .star()
                .then(Re::Leaf(TreePat::pred(fx.label('L'))).prune())
                .then(Re::Leaf(TreePat::any()).star()),
        );
        let cp = fx.compile(TreePattern::new(pat));

        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let full = m.find_matches_outcome(&MatchConfig::default()).unwrap();
        assert_eq!(full.matches.len(), 2);
        assert!(!full.truncated, "nothing clipped: {full:?}");

        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let clipped = m
            .find_matches_outcome(&MatchConfig::first_per_root())
            .unwrap();
        assert_eq!(clipped.matches.len(), 1);
        assert!(clipped.truncated);
        assert_eq!(clipped.clipped_roots, 1);
    }

    #[test]
    fn parse_limit_truncation_is_observable() {
        let mut fx = Fixture::new();
        let t = fx.tree("p(L L L)");
        let l = || Re::Leaf(TreePat::pred(fx.label('L')));
        let anys = || Re::Leaf(TreePat::any()).star();
        let pat = TreePat::pred_node(
            fx.label('p'),
            anys().then(l()).then(anys()).then(l()).then(anys()),
        );
        let cp = fx.compile(TreePattern::new(pat));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let cfg = MatchConfig {
            parse_limit: 1,
            ..MatchConfig::default()
        };
        let outcome = m.find_matches_outcome(&cfg).unwrap();
        assert!(outcome.truncated);
        assert!(outcome.clipped_parses > 0, "{outcome:?}");
    }

    #[test]
    fn max_matches_truncation_is_observable() {
        let mut fx = Fixture::new();
        let t = fx.tree("p(L L L)");
        let cp = fx.compile(TreePattern::new(TreePat::pred(fx.label('L'))));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        let cfg = MatchConfig {
            max_matches: 2,
            ..MatchConfig::default()
        };
        let outcome = m.find_matches_outcome(&cfg).unwrap();
        assert_eq!(outcome.matches.len(), 2);
        assert!(outcome.truncated);
        assert!(outcome.hit_max_matches);
    }

    #[test]
    fn tiny_budget_surfaces_as_error_not_false() {
        use aqua_guard::{Budget, ExecGuard};
        let mut fx = Fixture::new();
        let t = fx.tree("a(b c a(b c a(b c)))");
        let body = TreePat::pred_node(
            fx.label('a'),
            Re::Leaf(TreePat::pred(fx.label('b')))
                .then(Re::Leaf(TreePat::pred(fx.label('c'))))
                .then(Re::Leaf(TreePat::point("x"))),
        );
        let cp = fx.compile(TreePattern::new(body.star_at("x")));
        let guard = ExecGuard::new(Budget::unlimited().with_steps(3));
        let mut m = TreeMatcher::new(&cp, &t, &fx.store).with_guard(&guard);
        let err = m.matches_at_guarded(t.root()).unwrap_err();
        assert!(
            matches!(err, GuardError::BudgetExceeded { .. }),
            "expected budget trip, got {err:?}"
        );
        // Enumeration under the same exhausted guard also errors.
        let err2 = m.find_matches_outcome(&MatchConfig::default()).unwrap_err();
        assert!(matches!(
            err2,
            GuardError::BudgetExceeded { .. } | GuardError::Cancelled { .. }
        ));
    }

    #[test]
    fn cancellation_aborts_matching() {
        use aqua_guard::{CancelToken, ExecGuard};
        let mut fx = Fixture::new();
        let t = fx.tree("a(b(d f) b)");
        let cp = fx.compile(TreePattern::new(TreePat::pred(fx.label('b'))));
        let token = CancelToken::new();
        token.cancel();
        let guard = ExecGuard::cancellable(token);
        let mut m = TreeMatcher::new(&cp, &t, &fx.store).with_guard(&guard);
        let err = m.find_matches_outcome(&MatchConfig::default()).unwrap_err();
        assert!(matches!(err, GuardError::Cancelled { .. }), "{err:?}");
    }

    #[test]
    fn degenerate_self_recursive_closure_terminates() {
        let mut fx = Fixture::new();
        // [[@x]]*@x — body is just its own point; least fixpoint: no match.
        let cp = fx.compile(TreePattern::new(TreePat::point("x").star_at("x")));
        let t = fx.tree("a");
        let mut m = TreeMatcher::new(&cp, &t, &fx.store);
        assert!(!m.matches_at(0));
    }
}
