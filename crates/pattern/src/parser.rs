//! Text syntax for list and tree patterns.
//!
//! The paper does not fix a user-level language, but its notation is
//! concrete enough to transliterate into ASCII. This parser accepts:
//!
//! **Alphabet-predicates** — either a *name* resolved through a
//! [`PredEnv`] (the paper's shorthands: `Brazil` for
//! `λ(p) p.citizen = "Brazil"`) or an inline lambda body in braces:
//! `{age > 25 & citizen = "USA"}` with `&`, `|`, `!`, parentheses,
//! comparison operators `= != < <= > >=`, and integer / float / string /
//! boolean literals.
//!
//! **List patterns** (§3.2) — `^? [ items ] $?`:
//! `[A ? ? F]`, `[^ {pitch="A"}+ $]` is written `^[{pitch=\"A\"}+]$`,
//! grouping `[[ … ]]`, postfix `*`/`+`, infix `|`, prefix `!`.
//!
//! **Tree patterns** (§3.3) — the paper's preorder notation:
//! `Brazil(!?* USA !?*)`, concatenation points `@1`, closures
//! `[[a(b c @x)]]*@x`, explicit concatenation `tp1 .@1 tp2`, the root
//! anchor `^` (⊤) and the leaf anchor `$` (⊥).

use std::collections::HashMap;

use crate::alphabet::{CmpOp, PredExpr};
use crate::ast::Re;
use crate::error::{PatternError, Result};
use crate::list::Sym;
use crate::tree_ast::{NodeTest, TreePat, TreePattern};

use aqua_object::Value;

/// Resolves bare identifiers appearing in pattern text to alphabet-
/// predicates.
#[derive(Debug, Default, Clone)]
pub struct PredEnv {
    names: HashMap<String, PredExpr>,
    /// When set, an unknown identifier `x` desugars to
    /// `{<default_attr> = "x"}` — convenient for label-style examples
    /// (`a(b c)` over nodes with a `label` attribute).
    default_attr: Option<String>,
}

impl PredEnv {
    /// An empty environment (all names must be defined).
    pub fn new() -> Self {
        Self::default()
    }

    /// An environment where unknown names compare `attr` for equality
    /// with the name itself.
    pub fn with_default_attr(attr: impl Into<String>) -> Self {
        PredEnv {
            names: HashMap::new(),
            default_attr: Some(attr.into()),
        }
    }

    /// Define a named predicate shorthand.
    pub fn define(&mut self, name: impl Into<String>, pred: PredExpr) -> &mut Self {
        self.names.insert(name.into(), pred);
        self
    }

    fn resolve(&self, name: &str) -> Result<PredExpr> {
        if let Some(p) = self.names.get(name) {
            return Ok(p.clone());
        }
        if let Some(attr) = &self.default_attr {
            return Ok(PredExpr::eq(attr.clone(), name));
        }
        Err(PatternError::UnknownPredName {
            name: name.to_owned(),
        })
    }
}

/// Parse list-pattern text. Returns the regex plus (anchor_start,
/// anchor_end); compile with [`crate::ListPattern::compile`].
pub fn parse_list_pattern(input: &str, env: &PredEnv) -> Result<(Re<Sym>, bool, bool)> {
    let mut p = Parser::new(input, env);
    let anchor_start = p.eat_char('^');
    p.expect_char('[')?;
    let re = p.parse_list_alt(ListCtx)?;
    p.expect_char(']')?;
    let anchor_end = p.eat_char('$');
    p.skip_ws();
    p.expect_eof()?;
    Ok((re, anchor_start, anchor_end))
}

/// Parse tree-pattern text into a [`TreePattern`] (with anchors).
pub fn parse_tree_pattern(input: &str, env: &PredEnv) -> Result<TreePattern> {
    let mut p = Parser::new(input, env);
    let at_root = p.eat_char('^');
    let pat = p.parse_tree_alt()?;
    let at_leaves = p.eat_char('$');
    p.skip_ws();
    p.expect_eof()?;
    let mut tp = TreePattern::new(pat);
    tp.at_root = at_root;
    tp.at_leaves = at_leaves;
    Ok(tp)
}

/// Marker for the list-leaf parser (lists and tree child lists share the
/// regex layer but have different leaves).
struct ListCtx;

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    env: &'a PredEnv,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, env: &'a PredEnv) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            env,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(PatternError::Parse {
            msg: msg.into(),
            pos: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Peek without skipping whitespace (postfix operators bind tight).
    fn peek_tight(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<()> {
        if self.eat_char(c) {
            Ok(())
        } else {
            self.err(format!("expected {c:?}"))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            self.err("trailing input after pattern")
        }
    }

    /// `[[` lookahead (distinguishes grouping from the outer `[ ]`).
    fn at_group_open(&mut self) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&b'[') && self.bytes.get(self.pos + 1) == Some(&b'[')
    }

    fn at_group_close(&mut self) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&b']') && self.bytes.get(self.pos + 1) == Some(&b']')
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected identifier");
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    // ---- alphabet-predicates -------------------------------------------

    /// `{ pred }` inline lambda body.
    fn parse_brace_pred(&mut self) -> Result<PredExpr> {
        self.expect_char('{')?;
        let p = self.parse_pred_or()?;
        self.expect_char('}')?;
        Ok(p)
    }

    fn parse_pred_or(&mut self) -> Result<PredExpr> {
        let mut left = self.parse_pred_and()?;
        while self.eat_char('|') {
            let right = self.parse_pred_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_pred_and(&mut self) -> Result<PredExpr> {
        let mut left = self.parse_pred_unary()?;
        while self.eat_char('&') {
            let right = self.parse_pred_unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_pred_unary(&mut self) -> Result<PredExpr> {
        if self.eat_char('!') {
            return Ok(self.parse_pred_unary()?.not());
        }
        if self.eat_char('(') {
            let p = self.parse_pred_or()?;
            self.expect_char(')')?;
            return Ok(p);
        }
        // attr op literal
        let attr = self.ident()?;
        let op = self.parse_cmp_op()?;
        let lit = self.parse_literal()?;
        Ok(PredExpr::cmp(attr, op, lit))
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp> {
        self.skip_ws();
        let two = |p: &Self, a: u8, b: u8| {
            p.bytes.get(p.pos) == Some(&a) && p.bytes.get(p.pos + 1) == Some(&b)
        };
        let op = if two(self, b'!', b'=') {
            self.pos += 2;
            CmpOp::Ne
        } else if two(self, b'<', b'=') {
            self.pos += 2;
            CmpOp::Le
        } else if two(self, b'>', b'=') {
            self.pos += 2;
            CmpOp::Ge
        } else {
            match self.bytes.get(self.pos) {
                Some(b'=') => {
                    self.pos += 1;
                    CmpOp::Eq
                }
                Some(b'<') => {
                    self.pos += 1;
                    CmpOp::Lt
                }
                Some(b'>') => {
                    self.pos += 1;
                    CmpOp::Gt
                }
                _ => return self.err("expected comparison operator"),
            }
        };
        Ok(op)
    }

    fn parse_literal(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| *b != b'"') {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return self.err("unterminated string literal");
                }
                let s = self.src[start..self.pos].to_owned();
                self.pos += 1;
                Ok(Value::Str(s))
            }
            Some(b) if b.is_ascii_digit() || *b == b'-' => {
                let start = self.pos;
                self.pos += 1;
                let mut is_float = false;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_digit() || *b == b'.')
                {
                    if self.bytes[self.pos] == b'.' {
                        is_float = true;
                    }
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| PatternError::Parse {
                            msg: format!("bad float literal {text:?}"),
                            pos: start,
                        })
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| PatternError::Parse {
                            msg: format!("bad integer literal {text:?}"),
                            pos: start,
                        })
                }
            }
            _ => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    "null" => Ok(Value::Null),
                    _ => self.err(format!("bad literal {word:?}")),
                }
            }
        }
    }

    // ---- list patterns ---------------------------------------------------

    fn parse_list_alt(&mut self, _ctx: ListCtx) -> Result<Re<Sym>> {
        let mut left = self.parse_list_concat()?;
        while self.eat_char('|') {
            let right = self.parse_list_concat()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_list_concat(&mut self) -> Result<Re<Sym>> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None | Some(b']') | Some(b'|') => break,
                _ if self.at_group_close() => break,
                _ => items.push(self.parse_list_postfix()?),
            }
        }
        Ok(match items.len() {
            0 => Re::Empty,
            1 => items.pop().unwrap(),
            _ => Re::Concat(items),
        })
    }

    fn parse_list_postfix(&mut self) -> Result<Re<Sym>> {
        let mut base = self.parse_list_atom()?;
        loop {
            match self.peek_tight() {
                Some(b'*') => {
                    self.pos += 1;
                    base = base.star();
                }
                Some(b'+') => {
                    self.pos += 1;
                    base = base.plus();
                }
                _ => break,
            }
        }
        Ok(base)
    }

    fn parse_list_atom(&mut self) -> Result<Re<Sym>> {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(self.parse_list_postfix()?.prune())
            }
            Some(b'?') => {
                self.pos += 1;
                Ok(Sym::any())
            }
            Some(b'{') => Ok(Sym::pred(self.parse_brace_pred()?)),
            Some(b'[') if self.at_group_open() => {
                self.pos += 2;
                let inner = self.parse_list_alt(ListCtx)?;
                if !self.at_group_close() {
                    return self.err("expected ]] to close group");
                }
                self.pos += 2;
                Ok(inner)
            }
            Some(b) if (b as char).is_ascii_alphanumeric() || b == b'_' => {
                let name = self.ident()?;
                Ok(Sym::pred(self.env.resolve(&name)?))
            }
            _ => self.err("expected list pattern item"),
        }
    }

    // ---- tree patterns ---------------------------------------------------

    fn parse_tree_alt(&mut self) -> Result<TreePat> {
        let mut left = self.parse_tree_concat()?;
        while self.eat_char('|') {
            let right = self.parse_tree_concat()?;
            left = left.or(right);
        }
        Ok(left)
    }

    /// `tp (.@label tp)*` — explicit concatenation at a point.
    fn parse_tree_concat(&mut self) -> Result<TreePat> {
        let mut left = self.parse_tree_postfix()?;
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'.')
                && self.bytes.get(self.pos + 1) == Some(&b'@')
            {
                self.pos += 2;
                let label = self.ident()?;
                let right = self.parse_tree_postfix()?;
                left = left.concat_at(label.as_str(), right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn parse_tree_postfix(&mut self) -> Result<TreePat> {
        let mut base = self.parse_tree_atom()?;
        loop {
            match self.peek_tight() {
                Some(b'*') if self.bytes.get(self.pos + 1) == Some(&b'@') => {
                    self.pos += 2;
                    let label = self.ident()?;
                    base = base.star_at(label.as_str());
                }
                Some(b'+') if self.bytes.get(self.pos + 1) == Some(&b'@') => {
                    self.pos += 2;
                    let label = self.ident()?;
                    base = base.plus_at(label.as_str());
                }
                _ => break,
            }
        }
        Ok(base)
    }

    fn parse_tree_atom(&mut self) -> Result<TreePat> {
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let label = self.ident()?;
                Ok(TreePat::point(label.as_str()))
            }
            Some(b'[') if self.at_group_open() => {
                self.pos += 2;
                let inner = self.parse_tree_alt()?;
                if !self.at_group_close() {
                    return self.err("expected ]] to close group");
                }
                self.pos += 2;
                Ok(inner)
            }
            Some(b'?') => {
                self.pos += 1;
                self.finish_tree_node(NodeTest::Any)
            }
            Some(b'{') => {
                let p = self.parse_brace_pred()?;
                self.finish_tree_node(NodeTest::Pred(p))
            }
            Some(b) if (b as char).is_ascii_alphanumeric() || b == b'_' => {
                let name = self.ident()?;
                let p = self.env.resolve(&name)?;
                self.finish_tree_node(NodeTest::Pred(p))
            }
            _ => self.err("expected tree pattern"),
        }
    }

    /// After a node test, an optional `( children )` child-list regex.
    fn finish_tree_node(&mut self, test: NodeTest) -> Result<TreePat> {
        if self.peek_tight() == Some(b'(') || {
            self.skip_ws();
            self.peek_tight() == Some(b'(')
        } {
            self.pos += 1;
            let children = self.parse_child_alt()?;
            self.expect_char(')')?;
            Ok(TreePat::Node(test, Box::new(children)))
        } else {
            Ok(TreePat::Leaf(test))
        }
    }

    // Child lists: a regex over tree patterns.

    fn parse_child_alt(&mut self) -> Result<Re<TreePat>> {
        let mut left = self.parse_child_concat()?;
        while self.eat_char('|') {
            let right = self.parse_child_concat()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_child_concat(&mut self) -> Result<Re<TreePat>> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None | Some(b')') | Some(b'|') => break,
                _ if self.at_group_close() => break,
                _ => items.push(self.parse_child_postfix()?),
            }
        }
        Ok(match items.len() {
            0 => Re::Empty,
            1 => items.pop().unwrap(),
            _ => Re::Concat(items),
        })
    }

    fn parse_child_postfix(&mut self) -> Result<Re<TreePat>> {
        let mut base = self.parse_child_atom()?;
        loop {
            match self.peek_tight() {
                // `*@x` / `+@x` are tree closures on the symbol; bare
                // `*` / `+` are child-list repetitions.
                Some(b'*') if self.bytes.get(self.pos + 1) == Some(&b'@') => {
                    self.pos += 2;
                    let label = self.ident()?;
                    base = match base {
                        Re::Leaf(tp) => Re::Leaf(tp.star_at(label.as_str())),
                        other => Re::Leaf(group_to_tree(other, self.pos)?.star_at(label.as_str())),
                    };
                }
                Some(b'+') if self.bytes.get(self.pos + 1) == Some(&b'@') => {
                    self.pos += 2;
                    let label = self.ident()?;
                    base = match base {
                        Re::Leaf(tp) => Re::Leaf(tp.plus_at(label.as_str())),
                        other => Re::Leaf(group_to_tree(other, self.pos)?.plus_at(label.as_str())),
                    };
                }
                Some(b'*') => {
                    self.pos += 1;
                    base = base.star();
                }
                Some(b'+') => {
                    self.pos += 1;
                    base = base.plus();
                }
                _ => {
                    // Tree concatenation `.@label` is also legal on a
                    // child symbol (whitespace-insensitive, like the
                    // top-level form).
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b'.')
                        && self.bytes.get(self.pos + 1) == Some(&b'@')
                    {
                        self.pos += 2;
                        let label = self.ident()?;
                        let right = self.parse_tree_postfix()?;
                        base = match base {
                            Re::Leaf(tp) => Re::Leaf(tp.concat_at(label.as_str(), right)),
                            other => Re::Leaf(
                                group_to_tree(other, self.pos)?.concat_at(label.as_str(), right),
                            ),
                        };
                        continue;
                    }
                    break;
                }
            }
        }
        Ok(base)
    }

    fn parse_child_atom(&mut self) -> Result<Re<TreePat>> {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(self.parse_child_postfix()?.prune())
            }
            Some(b'[') if self.at_group_open() => {
                self.pos += 2;
                let inner = self.parse_child_alt()?;
                if !self.at_group_close() {
                    return self.err("expected ]] to close group");
                }
                self.pos += 2;
                Ok(inner)
            }
            _ => Ok(Re::Leaf(self.parse_tree_atom()?)),
        }
    }
}

/// A child-regex group used where a single tree pattern is required
/// (e.g. `[[a|b]]*@x`). Only pure alternations of tree patterns convert.
fn group_to_tree(re: Re<TreePat>, pos: usize) -> Result<TreePat> {
    match re {
        Re::Leaf(tp) => Ok(tp),
        Re::Alt(xs) => {
            let mut alts = Vec::with_capacity(xs.len());
            for x in xs {
                alts.push(group_to_tree(x, pos)?);
            }
            Ok(TreePat::Alt(alts))
        }
        _ => Err(PatternError::Parse {
            msg: "tree closure (*@ / +@) applies to a tree pattern, not a child sequence".into(),
            pos,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> PredEnv {
        PredEnv::with_default_attr("label")
    }

    #[test]
    fn list_melody() {
        // [A ? ? F]
        let (re, s, e) = parse_list_pattern("[A ? ? F]", &env()).unwrap();
        assert!(!s && !e);
        match re {
            Re::Concat(xs) => assert_eq!(xs.len(), 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn list_anchors_and_closures() {
        let (re, s, e) = parse_list_pattern("^[[[a b]]* c+]$", &env()).unwrap();
        assert!(s && e);
        match re {
            Re::Concat(xs) => {
                assert!(matches!(&xs[0], Re::Star(_)));
                assert!(matches!(&xs[1], Re::Plus(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inline_predicates() {
        let (re, _, _) = parse_list_pattern("[{age > 25 & citizen = \"USA\"} ?]", &env()).unwrap();
        match re {
            Re::Concat(xs) => {
                assert!(matches!(&xs[0], Re::Leaf(Sym::Pred(_))));
                assert!(matches!(&xs[1], Re::Leaf(Sym::Any)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn named_predicates_resolve() {
        let mut e = PredEnv::new();
        e.define("Brazil", PredExpr::eq("citizen", "Brazil"));
        let (re, _, _) = parse_list_pattern("[Brazil]", &e).unwrap();
        assert!(matches!(re, Re::Leaf(Sym::Pred(_))));
        assert!(parse_list_pattern("[USA]", &e).is_err());
    }

    #[test]
    fn tree_fig4_pattern() {
        // Brazil(!?* USA !?*)
        let mut e = PredEnv::new();
        e.define("Brazil", PredExpr::eq("citizen", "Brazil"));
        e.define("USA", PredExpr::eq("citizen", "USA"));
        let tp = parse_tree_pattern("Brazil(!?* USA !?*)", &e).unwrap();
        match &tp.pat {
            TreePat::Node(NodeTest::Pred(_), children) => match children.as_ref() {
                Re::Concat(xs) => {
                    assert_eq!(xs.len(), 3);
                    // `!` binds the whole postfix atom: !?* ≡ !(?*);
                    // the prune flag distributes to the leaf either way.
                    assert!(matches!(&xs[0], Re::Prune(inner) if matches!(&**inner, Re::Star(_))));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tree_nested_preorder() {
        // a(b(d(f g) e) c) — Figure 1's tree as a pattern.
        let tp = parse_tree_pattern("a(b(d(f g) e) c)", &env()).unwrap();
        assert!(matches!(&tp.pat, TreePat::Node(_, _)));
    }

    #[test]
    fn tree_points_and_concat() {
        // [[a(@1 @2) .@1 b(d(f g) e)]] .@2 c — Figure 1's concatenation.
        let tp = parse_tree_pattern("[[a(@1 @2) .@1 b(d(f g) e)]] .@2 c", &env()).unwrap();
        assert!(matches!(&tp.pat, TreePat::Concat { .. }));
    }

    #[test]
    fn tree_closure_fig2() {
        // [[a(b c @x)]]*@x
        let tp = parse_tree_pattern("[[a(b c @x)]]*@x", &env()).unwrap();
        assert!(matches!(&tp.pat, TreePat::Closure { plus: false, .. }));
    }

    #[test]
    fn tree_child_closure_inside() {
        // a([[b(@x)]]+@x c*) — symbol closure and child-list star coexist.
        let tp = parse_tree_pattern("a([[b(@x)]]+@x c*)", &env()).unwrap();
        match &tp.pat {
            TreePat::Node(_, children) => match children.as_ref() {
                Re::Concat(xs) => {
                    assert!(matches!(
                        &xs[0],
                        Re::Leaf(TreePat::Closure { plus: true, .. })
                    ));
                    assert!(matches!(&xs[1], Re::Star(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tree_anchors() {
        let tp = parse_tree_pattern("^b(d e)$", &env()).unwrap();
        assert!(tp.at_root && tp.at_leaves);
    }

    #[test]
    fn variable_arity_printf() {
        // printf(?* LargeData ?* LargeData ?*) — §5.
        let mut e = PredEnv::with_default_attr("op");
        e.define("LargeData", PredExpr::eq("op", "LargeData"));
        let tp = parse_tree_pattern("printf(?* LargeData ?* LargeData ?*)", &e).unwrap();
        match &tp.pat {
            TreePat::Node(_, children) => match children.as_ref() {
                Re::Concat(xs) => assert_eq!(xs.len(), 5),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_list_pattern("[a", &env()).unwrap_err();
        assert!(matches!(err, PatternError::Parse { .. }));
        let err = parse_tree_pattern("a(b", &env()).unwrap_err();
        assert!(matches!(err, PatternError::Parse { .. }));
        let err = parse_list_pattern("[{age >}]", &env()).unwrap_err();
        assert!(matches!(err, PatternError::Parse { .. }));
    }

    #[test]
    fn literals() {
        let (_, _, _) = parse_list_pattern("[{age >= -3}]", &env()).unwrap();
        let (_, _, _) = parse_list_pattern("[{score < 1.5}]", &env()).unwrap();
        let (_, _, _) = parse_list_pattern("[{alive = true}]", &env()).unwrap();
        assert!(parse_list_pattern("[{age = bogus}]", &env()).is_err());
    }
}
