//! Error type for the pattern layer.

use std::fmt;

use aqua_guard::GuardError;
use aqua_object::{AttrType, ObjectError};

/// Result alias for pattern operations.
pub type Result<T> = std::result::Result<T, PatternError>;

/// Errors raised while building, parsing, compiling, or matching patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternError {
    /// Propagated object-layer error (e.g. computed attribute in an
    /// alphabet-predicate, unknown attribute).
    Object(ObjectError),
    /// A comparison constant does not inhabit the attribute's type.
    PredicateType {
        class: String,
        attr: String,
        expected: AttrType,
        got: &'static str,
    },
    /// Text-syntax parse failure.
    Parse { msg: String, pos: usize },
    /// A named predicate used in pattern text was not provided in the
    /// predicate environment.
    UnknownPredName { name: String },
    /// A tree-pattern concatenation referenced a label absent from the
    /// left operand — allowed by the paper (the result is the left
    /// operand), but surfaced as an error where silent no-ops would hide
    /// bugs.
    UnknownCcLabel { label: String },
    /// Matching was stopped by an execution guard (budget exhausted,
    /// deadline passed, or cancellation requested).
    Guard(GuardError),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Object(e) => write!(f, "{e}"),
            PatternError::PredicateType {
                class,
                attr,
                expected,
                got,
            } => write!(
                f,
                "predicate compares {class}.{attr} ({expected}) against a {got} constant"
            ),
            PatternError::Parse { msg, pos } => {
                write!(f, "pattern parse error at byte {pos}: {msg}")
            }
            PatternError::UnknownPredName { name } => {
                write!(f, "pattern references unknown predicate name {name:?}")
            }
            PatternError::UnknownCcLabel { label } => {
                write!(f, "unknown concatenation point label {label:?}")
            }
            PatternError::Guard(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PatternError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PatternError::Object(e) => Some(e),
            PatternError::Guard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ObjectError> for PatternError {
    fn from(e: ObjectError) -> Self {
        PatternError::Object(e)
    }
}

impl From<GuardError> for PatternError {
    fn from(e: GuardError) -> Self {
        PatternError::Guard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PatternError::Parse {
            msg: "unexpected ')'".into(),
            pos: 3,
        };
        assert!(e.to_string().contains("byte 3"));
        let wrapped = PatternError::from(ObjectError::NoSuchClass { class: "X".into() });
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
