//! Case runner: deterministic seeds, rejection accounting, failure reporting.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Wraps the workspace's deterministic
/// [`StdRng`].
pub struct TestRng(pub StdRng);

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Payload type distinguishing `prop_assume!` rejections from real
/// failures when a case unwinds.
struct Rejection(#[allow(dead_code)] &'static str);

/// Abort the current case as rejected (called by `prop_assume!`).
pub fn reject(condition: &'static str) -> ! {
    panic::panic_any(Rejection(condition))
}

thread_local! {
    static CASE_INPUTS: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Record the generated inputs of the running case for failure reports
/// (called by the `proptest!` expansion).
pub fn set_case_inputs(desc: String) {
    CASE_INPUTS.with(|c| *c.borrow_mut() = desc);
}

/// FNV-1a, used to derive a per-test base seed from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one `proptest!`-defined test: runs cases until `cfg.cases`
/// succeed, tolerating up to `16 × cases` rejections.
pub struct TestRunner {
    cfg: ProptestConfig,
    name: &'static str,
    base_seed: u64,
}

impl TestRunner {
    pub fn new(cfg: ProptestConfig, name: &'static str) -> TestRunner {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or_else(|_| fnv1a(&s)),
            Err(_) => fnv1a(name),
        };
        TestRunner {
            cfg,
            name,
            base_seed,
        }
    }

    /// Run `f` until `cfg.cases` cases pass. A case that unwinds with a
    /// `Rejection` payload is discarded; any other unwind fails the test
    /// after printing the case's seed and generated inputs.
    pub fn run(&mut self, mut f: impl FnMut(&mut TestRng)) {
        let max_rejects = 16 * self.cfg.cases as u64;
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let mut case: u64 = 0;
        while passed < self.cfg.cases {
            let seed = self
                .base_seed
                .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            case += 1;
            let mut rng = TestRng(StdRng::seed_from_u64(seed));
            set_case_inputs(String::new());
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
            match outcome {
                Ok(()) => passed += 1,
                Err(payload) if payload.is::<Rejection>() => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {}: too many prop_assume! rejections \
                             ({rejected} rejects for {passed} passes)",
                            self.name
                        );
                    }
                }
                Err(payload) => {
                    let inputs = CASE_INPUTS.with(|c| c.borrow().clone());
                    eprintln!(
                        "proptest {} failed at case #{case} (seed {seed:#x})\n  inputs: {}",
                        self.name,
                        if inputs.is_empty() {
                            "<none recorded>"
                        } else {
                            &inputs
                        }
                    );
                    panic::resume_unwind(payload);
                }
            }
        }
    }
}
