//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// Something that can pick a collection length. Mirrors
/// `proptest::collection::SizeRange` conversions.
pub trait SizeBounds {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeBounds for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBounds for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy producing `Vec`s of `elem`-generated values with a length
/// drawn from `size`.
pub fn vec<S: Strategy, B: SizeBounds>(elem: S, size: B) -> VecStrategy<S, B> {
    VecStrategy { elem, size }
}

/// Output of [`vec()`].
pub struct VecStrategy<S, B> {
    elem: S,
    size: B,
}

impl<S: Strategy, B: SizeBounds> Strategy for VecStrategy<S, B>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}
