//! Character-class regex string strategies.
//!
//! Supports the subset of regex syntax the workspace's tests use as string
//! strategies: a single character class `[...]` (with literal characters,
//! `a-z` ranges, and `\xHH` / `\c` escapes) optionally followed by a
//! `{m,n}` repetition count. A bare literal string (no metacharacters)
//! yields itself.

use rand::Rng;

use crate::runner::TestRng;

/// Sample one string matching `pattern`. Panics on syntax this subset does
/// not support — that is a bug in the test, not an input-dependent failure.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;

    let mut out = String::new();
    while pos < chars.len() {
        if chars[pos] != '[' {
            // Literal segment (escapes allowed).
            let c = if chars[pos] == '\\' {
                pos += 1;
                *chars
                    .get(pos)
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash"))
            } else {
                chars[pos]
            };
            pos += 1;
            out.push(c);
            continue;
        }
        // Character class.
        pos += 1; // consume '['
        let mut alphabet: Vec<char> = Vec::new();
        while pos < chars.len() && chars[pos] != ']' {
            let lo = read_char(&chars, &mut pos, pattern);
            if pos < chars.len() && chars[pos] == '-' && chars.get(pos + 1) != Some(&']') {
                pos += 1; // consume '-'
                let hi = read_char(&chars, &mut pos, pattern);
                if (hi as u32) < (lo as u32) {
                    unsupported(pattern, "descending range in character class");
                }
                for u in lo as u32..=hi as u32 {
                    if let Some(c) = char::from_u32(u) {
                        alphabet.push(c);
                    }
                }
            } else {
                alphabet.push(lo);
            }
        }
        if pos >= chars.len() {
            unsupported(pattern, "unterminated character class");
        }
        pos += 1; // consume ']'
        if alphabet.is_empty() {
            unsupported(pattern, "empty character class");
        }

        // Optional {m,n} repetition; default is exactly one.
        let (min, max) = if chars.get(pos) == Some(&'{') {
            let close = chars[pos..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| unsupported(pattern, "unterminated {m,n}"));
            let body: String = chars[pos + 1..pos + close].iter().collect();
            pos += close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.parse::<usize>()
                        .unwrap_or_else(|_| unsupported(pattern, "bad {m,n} bound")),
                    n.parse::<usize>()
                        .unwrap_or_else(|_| unsupported(pattern, "bad {m,n} bound")),
                ),
                None => {
                    let k = body
                        .parse::<usize>()
                        .unwrap_or_else(|_| unsupported(pattern, "bad {k} count"));
                    (k, k)
                }
            }
        } else {
            (1, 1)
        };

        let len = rng.gen_range(min..=max);
        for _ in 0..len {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

/// Read one (possibly escaped) character of a class body.
fn read_char(chars: &[char], pos: &mut usize, pattern: &str) -> char {
    let c = chars[*pos];
    if c != '\\' {
        *pos += 1;
        return c;
    }
    *pos += 1;
    let esc = *chars
        .get(*pos)
        .unwrap_or_else(|| unsupported(pattern, "trailing backslash"));
    *pos += 1;
    match esc {
        'x' => {
            if *pos + 2 > chars.len() {
                unsupported(pattern, "truncated \\xHH escape");
            }
            let hex: String = chars[*pos..*pos + 2].iter().collect();
            *pos += 2;
            let v = u32::from_str_radix(&hex, 16)
                .unwrap_or_else(|_| unsupported(pattern, "bad \\xHH escape"));
            char::from_u32(v).unwrap_or_else(|| unsupported(pattern, "bad \\xHH escape"))
        }
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn unsupported(pattern: &str, why: &str) -> ! {
    panic!("string strategy {pattern:?}: {why} (unsupported by the offline proptest stand-in)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng(StdRng::seed_from_u64(11))
    }

    #[test]
    fn simple_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_regex("[A-C]", &mut r);
            assert_eq!(s.len(), 1);
            assert!(matches!(s.as_bytes()[0], b'A'..=b'C'));
        }
    }

    #[test]
    fn hex_range_with_counts() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_regex("[\\x20-\\x7e]{0,40}", &mut r);
            assert!(s.len() <= 40);
            assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn escaped_metachars_and_literals() {
        let mut r = rng();
        let pat = "[\\[\\]\\(\\)\\{\\}@!\\*\\+\\|\\^\\$\\?a-d =<>0-9\"]{0,30}";
        let allowed = "[](){}@!*+|^$?abcd =<>0123456789\"";
        for _ in 0..100 {
            let s = sample_regex(pat, &mut r);
            assert!(s.chars().all(|c| allowed.contains(c)), "bad sample {s:?}");
        }
    }

    #[test]
    fn literal_passthrough() {
        let mut r = rng();
        assert_eq!(sample_regex("abc", &mut r), "abc");
    }
}
