//! Option strategies (`prop::option::of`).

use rand::Rng;

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// Strategy producing `Some(inner)` about half the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Output of [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}
