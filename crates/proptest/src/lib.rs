//! Offline stand-in for the `proptest` crate (1.x-compatible subset).
//!
//! This workspace builds in environments with no crates.io access, so the
//! slice of `proptest` the test suites actually use is reimplemented here:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `arg in strategy` bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`];
//! * strategies: integer `Range` / `RangeInclusive`, `&str` character-class
//!   regexes (`"[A-C]{0,40}"`-style), [`collection::vec`], [`option::of`],
//!   [`strategy::Just`], and `.prop_map`.
//!
//! Differences from upstream: generation is **deterministic** (seeded from
//! the test name, overridable via `PROPTEST_SEED`), there is **no
//! shrinking** (the failing inputs are printed verbatim instead), and no
//! regression-file persistence.

pub mod collection;
pub mod option;
pub mod runner;
pub mod strategy;
pub mod string;

/// The types and macros test files import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec` / `prop::option::of`
    /// resolve after a glob import of this prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Define property tests. Mirrors `proptest::proptest!`.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, ys in prop::collection::vec(0u8..4, 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::runner::ProptestConfig = $cfg;
            let mut __runner = $crate::runner::TestRunner::new(__cfg, stringify!($name));
            __runner.run(|__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let mut __vals = ::std::string::String::new();
                $(
                    __vals.push_str(stringify!($arg));
                    __vals.push_str(" = ");
                    __vals.push_str(&::std::format!("{:?}", $arg));
                    __vals.push_str("; ");
                )+
                $crate::runner::set_case_inputs(__vals);
                $body
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert within a property test; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::runner::reject(stringify!($cond));
        }
    };
}
