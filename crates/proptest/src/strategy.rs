//! The [`Strategy`] trait and core value strategies.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::runner::TestRng;

/// A recipe for generating values. Mirrors `proptest::strategy::Strategy`,
/// minus shrinking: `sample` draws one value directly.
pub trait Strategy {
    /// The type of generated values (must be `Debug` so failing inputs can
    /// be reported).
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values. Mirrors `Strategy::prop_map`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of one value. Mirrors `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "cannot sample empty char range");
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(lo..hi)) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        // `any::<bool>()` is spelled `bool` upstream only via Arbitrary;
        // here the bare value doubles as a coin-flip strategy.
        let _ = self;
        rng.gen_bool(0.5)
    }
}

/// `&str` strategies are character-class regexes: `"[A-C]"`,
/// `"[\\x20-\\x7e]{0,40}"`, …
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}
