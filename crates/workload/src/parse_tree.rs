//! Query parse trees — the §5 example domain.
//!
//! "Consider a parse tree T of a database query. Each node stands for an
//! algebra operator and the children of a node are the inputs to the
//! operator." The §5 rewrite example needs trees containing
//! `select(R, and(p1, p2))` occurrences; [`ParseTreeGen`] builds random
//! operator trees with a controlled number of such rewrite sites.

use aqua_algebra::{NodeId, Tree, TreeBuilder};
use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, ObjectStore, Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parse-tree dataset.
pub struct ParseTreeDataset {
    pub store: ObjectStore,
    pub class: ClassId,
    pub tree: Tree,
    /// Number of `select(R, and(p, p))` rewrite sites planted.
    pub planted_sites: usize,
}

/// Parse-tree generator.
pub struct ParseTreeGen {
    seed: u64,
    operators: usize,
    sites: usize,
}

impl ParseTreeGen {
    /// A generator with `seed`, defaulting to ~60 operators and 3
    /// planted rewrite sites.
    pub fn new(seed: u64) -> Self {
        ParseTreeGen {
            seed,
            operators: 60,
            sites: 3,
        }
    }

    /// Approximate number of operator nodes (before planting).
    pub fn operators(mut self, n: usize) -> Self {
        self.operators = n.max(1);
        self
    }

    /// Number of `select(R, and(p1, p2))` sites to plant.
    pub fn rewrite_sites(mut self, n: usize) -> Self {
        self.sites = n;
        self
    }

    /// The `PTNode` class: §5's `Parse-tree-node` with its `OpName`
    /// method realized as a stored attribute (the paper's footnote 2
    /// restriction is about *computed* attributes; storing the operator
    /// name keeps alphabet-predicates constant-time).
    pub fn class_def() -> ClassDef {
        ClassDef::new("PTNode", vec![AttrDef::stored("op", AttrType::Str)])
            .expect("static class definition is valid")
    }

    fn op(store: &mut ObjectStore, name: &str) -> Oid {
        store
            .insert_named("PTNode", &[("op", Value::str(name))])
            .expect("row matches schema")
    }

    /// Build `select(R and(p1 p2))` at a builder, returning the site root.
    fn plant_site(store: &mut ObjectStore, b: &mut TreeBuilder) -> NodeId {
        let r = Self::op(store, "R");
        let p1 = Self::op(store, "p1");
        let p2 = Self::op(store, "p2");
        let and = Self::op(store, "and");
        let sel = Self::op(store, "select");
        let n_r = b.node(r, vec![]);
        let n_p1 = b.node(p1, vec![]);
        let n_p2 = b.node(p2, vec![]);
        let n_and = b.node(and, vec![n_p1, n_p2]);
        b.node(sel, vec![n_r, n_and])
    }

    /// Generate the dataset: a random binary operator tree whose leaves
    /// are scans, with `sites` rewrite sites grafted at random leaves.
    pub fn generate(&self) -> ParseTreeDataset {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = TreeBuilder::new();

        // Random binary expression tree built bottom-up over `operators`
        // leaves, interleaving planted sites.
        let binary_ops = ["join", "union", "intersect"];
        let mut frontier: Vec<NodeId> = Vec::new();
        for _ in 0..self.operators.max(self.sites + 1) {
            let scan = Self::op(&mut store, "scan");
            frontier.push(b.node(scan, vec![]));
        }
        for _ in 0..self.sites {
            frontier.push(Self::plant_site(&mut store, &mut b));
        }
        while frontier.len() > 1 {
            let i = rng.gen_range(0..frontier.len());
            let left = frontier.swap_remove(i);
            let j = rng.gen_range(0..frontier.len());
            let right = frontier.swap_remove(j);
            let opname = binary_ops[rng.gen_range(0..binary_ops.len())];
            let op = Self::op(&mut store, opname);
            frontier.push(b.node(op, vec![left, right]));
        }
        let tree = b
            .finish(frontier[0])
            .expect("generated parse tree is well-formed");
        ParseTreeDataset {
            store,
            class,
            tree,
            planted_sites: self.sites,
        }
    }

    /// The exact parse tree of Figure 5's discussion:
    /// `join(select(R, and(p1, p2)), scan)` — one rewrite site with
    /// context above it.
    pub fn fig5_tree() -> ParseTreeDataset {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash");
        let mut b = TreeBuilder::new();
        let site = Self::plant_site(&mut store, &mut b);
        let scan = Self::op(&mut store, "scan");
        let n_scan = b.node(scan, vec![]);
        let join = Self::op(&mut store, "join");
        let root = b.node(join, vec![site, n_scan]);
        let tree = b.finish(root).expect("hand-built tree is well-formed");
        ParseTreeDataset {
            store,
            class,
            tree,
            planted_sites: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
    use aqua_pattern::tree_match::MatchConfig;

    fn env() -> PredEnv {
        PredEnv::with_default_attr("op")
    }

    #[test]
    fn planted_sites_are_matchable() {
        let d = ParseTreeGen::new(9)
            .operators(40)
            .rewrite_sites(4)
            .generate();
        // §5's first query: split(select(!? and), f)(T).
        let cp = parse_tree_pattern("select(!? and)", &env())
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let pieces = aqua_algebra::tree::split::split_pieces(
            &d.store,
            &d.tree,
            &cp,
            &MatchConfig::default(),
        )
        .unwrap();
        assert_eq!(pieces.len(), 4);
        for p in &pieces {
            // Match keeps select+and; R is pruned (α1); p1, p2 are
            // frontier cuts (α2, α3) — 3 descendants total.
            assert_eq!(p.descendants.len(), 3);
            assert!(p.reassemble().structural_eq(&d.tree));
        }
    }

    #[test]
    fn fig5_shape() {
        let d = ParseTreeGen::fig5_tree();
        assert_eq!(d.tree.len(), 7);
        assert_eq!(d.planted_sites, 1);
    }

    #[test]
    fn deterministic() {
        let a = ParseTreeGen::new(2).generate();
        let b = ParseTreeGen::new(2).generate();
        assert!(a.tree.structural_eq(&b.tree));
    }
}
