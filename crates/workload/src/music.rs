//! The music database of §6.
//!
//! "The database consists of a large number of songs, where each song
//! is represented as a list consisting of nodes that represent a note.
//! Each note has a few properties like pitch (e.g., A, B, C, etc.) and
//! duration." [`SongGen`] produces seeded random songs and can *plant* a
//! melody a controlled number of times, so benchmarks know their match
//! counts.

use aqua_algebra::List;
use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, ObjectStore, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pitches used by the generator.
pub const PITCHES: &[&str] = &["A", "B", "C", "D", "E", "F", "G"];

/// A song dataset.
pub struct SongDataset {
    pub store: ObjectStore,
    pub class: ClassId,
    pub song: List,
    /// Start positions where a melody was planted.
    pub planted: Vec<usize>,
}

/// A multi-song dataset sharing one store — the §6 "large number of
/// songs" shape the `Set[List]` bulk operators scan.
pub struct SongSetDataset {
    pub store: ObjectStore,
    pub class: ClassId,
    pub songs: Vec<List>,
    /// Per-song start positions where the melody was planted.
    pub planted: Vec<Vec<usize>>,
}

/// Song generator.
pub struct SongGen {
    seed: u64,
    notes: usize,
    plant: Option<(Vec<&'static str>, usize)>,
}

impl SongGen {
    /// A generator with `seed`, defaulting to 1 000 notes and nothing
    /// planted.
    pub fn new(seed: u64) -> Self {
        SongGen {
            seed,
            notes: 1000,
            plant: None,
        }
    }

    /// Set the song length in notes.
    pub fn notes(mut self, n: usize) -> Self {
        self.notes = n.max(1);
        self
    }

    /// Plant `count` non-overlapping occurrences of `melody` (pitch
    /// sequence) at random positions.
    pub fn plant(mut self, melody: Vec<&'static str>, count: usize) -> Self {
        self.plant = Some((melody, count));
        self
    }

    /// The `Note` class of §6: pitch and duration, both stored.
    pub fn class_def() -> ClassDef {
        ClassDef::new(
            "Note",
            vec![
                AttrDef::stored("pitch", AttrType::Str),
                AttrDef::stored("duration", AttrType::Int),
            ],
        )
        .expect("static class definition is valid")
    }

    /// Generate the dataset.
    pub fn generate(&self) -> SongDataset {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (song, planted) = self.gen_song(&mut store, &mut rng);
        SongDataset {
            store,
            class,
            song,
            planted,
        }
    }

    /// Generate `members` songs (each of the configured length, each
    /// with its own plantings) sharing one store. Deterministic under
    /// the seed.
    pub fn generate_set(&self, members: usize) -> SongSetDataset {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut songs = Vec::with_capacity(members);
        let mut planted = Vec::with_capacity(members);
        for _ in 0..members {
            let (song, sites) = self.gen_song(&mut store, &mut rng);
            songs.push(song);
            planted.push(sites);
        }
        SongSetDataset {
            store,
            class,
            songs,
            planted,
        }
    }

    fn gen_song(&self, store: &mut ObjectStore, rng: &mut StdRng) -> (List, Vec<usize>) {
        let mut pitches: Vec<String> = (0..self.notes)
            .map(|_| PITCHES[rng.gen_range(0..PITCHES.len())].to_owned())
            .collect();

        let mut planted = Vec::new();
        if let Some((melody, count)) = &self.plant {
            let m = melody.len();
            if m > 0 && m <= self.notes {
                let mut taken: Vec<(usize, usize)> = Vec::new();
                let mut attempts = 0;
                while planted.len() < *count && attempts < count * 50 {
                    attempts += 1;
                    let start = rng.gen_range(0..=self.notes - m);
                    if taken.iter().any(|&(s, e)| start < e && s < start + m) {
                        continue;
                    }
                    for (i, p) in melody.iter().enumerate() {
                        pitches[start + i] = (*p).to_owned();
                    }
                    taken.push((start, start + m));
                    planted.push(start);
                }
                planted.sort_unstable();
            }
        }

        let mut song = List::new();
        for p in pitches {
            let oid = store
                .insert_named(
                    "Note",
                    &[
                        ("pitch", Value::Str(p)),
                        ("duration", Value::Int(rng.gen_range(1..=8))),
                    ],
                )
                .expect("row matches schema");
            song.push(oid);
        }
        (song, planted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_algebra::list::ops as lops;
    use aqua_pattern::list::{ListPattern, MatchMode};
    use aqua_pattern::parser::{parse_list_pattern, PredEnv};

    #[test]
    fn deterministic() {
        let a = SongGen::new(3).notes(100).generate();
        let b = SongGen::new(3).notes(100).generate();
        let pa: Vec<_> = a
            .song
            .iter_objects(&a.store)
            .map(|(_, o)| o.get(aqua_object::AttrId(0)).clone())
            .collect();
        let pb: Vec<_> = b
            .song
            .iter_objects(&b.store)
            .map(|(_, o)| o.get(aqua_object::AttrId(0)).clone())
            .collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn planted_melodies_are_found() {
        // Plant an 8-note melody unlikely to occur by chance in 500 notes.
        let melody = vec!["A", "G", "A", "G", "A", "G", "A", "G"];
        let d = SongGen::new(11).notes(500).plant(melody, 5).generate();
        assert_eq!(d.planted.len(), 5);
        let env = PredEnv::with_default_attr("pitch");
        let (re, s, e) = parse_list_pattern("[A G A G A G A G]", &env).unwrap();
        let p = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
        let ms = lops::find_matches(&d.store, &d.song, &p, MatchMode::All);
        // Every planted site is a match (chance extras possible but the
        // planted ones must all be there).
        let starts: Vec<usize> = ms.iter().map(|m| m.start).collect();
        for site in &d.planted {
            assert!(starts.contains(site), "missing planted site {site}");
        }
    }

    #[test]
    fn song_set_shares_one_store() {
        let d = SongGen::new(6)
            .notes(40)
            .plant(vec!["A", "B", "C"], 2)
            .generate_set(5);
        assert_eq!(d.songs.len(), 5);
        assert_eq!(d.planted.len(), 5);
        assert_eq!(d.store.extent(d.class).len(), 200);
        let e = SongGen::new(6)
            .notes(40)
            .plant(vec!["A", "B", "C"], 2)
            .generate_set(5);
        assert_eq!(d.planted, e.planted, "deterministic under seed");
    }

    #[test]
    fn plant_respects_nonoverlap() {
        let d = SongGen::new(4)
            .notes(30)
            .plant(vec!["A", "B", "C"], 5)
            .generate();
        let mut sites = d.planted.clone();
        sites.sort_unstable();
        for w in sites.windows(2) {
            assert!(w[1] - w[0] >= 3);
        }
    }
}
