//! Deterministic per-path workload for a [`ShardedStore`] — the
//! shard-chaos harness's population.
//!
//! Where [`MutationStorm`] is keyed by a
//! global op counter (and so bound to *one* WAL stream), a
//! [`ShardStorm`] is keyed by `(seed, path, position)`: every list
//! element's note values and every tree node's placement are pure
//! functions of where they sit in their extent, never of the order the
//! ops reached a WAL. That makes the **final state a pure function of
//! `(seed, paths, target)`** — independent of shard count, crash
//! points, and how many grow/recover cycles it took to get there:
//!
//! * After a crash, [`grow`](ShardStorm::grow) reads each extent's
//!   *observable* length and tops it up — surviving positions keep
//!   their values, missing positions are re-derived identically.
//! * OIDs are **not** part of the contract. A crash landing between an
//!   object insert and its `list_push` leaves an orphan object, and
//!   shard-local OID sequences differ across shard counts by
//!   construction — so [`fingerprint`](ShardStorm::fingerprint) renders
//!   attribute *values* (dereferenced through the owning shard), never
//!   OIDs. That is exactly what lets the shard-chaos matrix demand
//!   byte-identical answers at every shard count.

use aqua_algebra::{NodeId, Tree};
use aqua_object::{AttrId, Oid, Value};
use aqua_store::{Result, ShardedStore};

use crate::music::PITCHES;
use crate::storm::MutationStorm;

/// A deterministic sharded workload over `paths` top-level path
/// subtrees, each owning one list (`p<k>/song`) and one tree
/// (`p<k>/doc`).
#[derive(Debug, Clone, Copy)]
pub struct ShardStorm {
    seed: u64,
    paths: usize,
}

/// SplitMix64 finalizer: the position-keyed hash behind every value
/// choice. Stable by construction (no platform-dependent state).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardStorm {
    /// A storm over `paths` path subtrees (clamped to ≥ 1).
    pub fn new(seed: u64, paths: usize) -> ShardStorm {
        ShardStorm {
            seed,
            paths: paths.max(1),
        }
    }

    /// The storm's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many path subtrees the storm populates.
    pub fn paths(&self) -> usize {
        self.paths
    }

    /// The list extent under path subtree `k`.
    pub fn list_path(&self, k: usize) -> String {
        format!("p{k}/song")
    }

    /// The tree extent under path subtree `k`.
    pub fn tree_path(&self, k: usize) -> String {
        format!("p{k}/doc")
    }

    fn draw(&self, k: usize, domain: u64, pos: u64) -> u64 {
        mix(self
            .seed
            .wrapping_add(mix((k as u64) << 32 | domain))
            .wrapping_add(pos.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// The pitch at `(path k, domain, position)` — the value the
    /// fingerprint renders.
    fn pitch(&self, k: usize, domain: u64, pos: u64) -> &'static str {
        PITCHES[(self.draw(k, domain, pos) % PITCHES.len() as u64) as usize]
    }

    /// Idempotent bootstrap: the `Note` class on every shard, plus each
    /// path's (empty) list and single-root tree. Safe to call on a
    /// recovered store where any prefix of this already happened — a
    /// crash mid-broadcast leaves some shards bootstrapped and others
    /// not, and only the missing pieces are created.
    pub fn bootstrap(&self, ss: &mut ShardedStore) -> Result<()> {
        for i in 0..ss.shard_count() {
            if ss.shard(i).store().class_id("Note").is_err() {
                ss.shard_mut(i).define_class(MutationStorm::class_def())?;
            }
        }
        for k in 0..self.paths {
            let list = self.list_path(k);
            if ss.list(&list).is_none() {
                ss.create_list(&list)?;
            }
            let tree = self.tree_path(k);
            if ss.tree(&tree).is_none() {
                let class = {
                    let sh = ss.shard_of(&tree);
                    ss.shard(sh).store().class_id("Note")?
                };
                let (_, root) = ss.insert(
                    &tree,
                    class,
                    vec![Value::str(self.pitch(k, 2, 0)), Value::Int(1)],
                )?;
                ss.create_tree(&tree, Tree::leaf(root))?;
            }
        }
        Ok(())
    }

    /// Top up every path to `target` list elements and `target` tree
    /// nodes (root included). Reads each extent's observable length and
    /// grows from there, so any crash/recover/regrow interleaving
    /// converges on the same final extents.
    pub fn grow(&self, ss: &mut ShardedStore, target: usize) -> Result<()> {
        for k in 0..self.paths {
            let list = self.list_path(k);
            let class = {
                let sh = ss.shard_of(&list);
                ss.shard(sh).store().class_id("Note")?
            };
            loop {
                let len = ss.list(&list).map_or(0, |l| l.len());
                if len >= target {
                    break;
                }
                let pos = len as u64;
                let (_, oid) = ss.insert(
                    &list,
                    class,
                    vec![
                        Value::str(self.pitch(k, 0, pos)),
                        Value::Int((self.draw(k, 1, pos) % 8 + 1) as i64),
                    ],
                )?;
                ss.list_push(&list, oid)?;
            }

            let tree = self.tree_path(k);
            loop {
                let n = ss.tree(&tree).map_or(0, Tree::len);
                if n >= target {
                    break;
                }
                // Placement is keyed by the node count alone: with no
                // removals, arena ids are 0..n and the shape at count n
                // is the same however many crashes interleaved.
                let parent = NodeId((self.draw(k, 3, n as u64) % n as u64) as u32);
                let (_, oid) = ss.insert(
                    &tree,
                    class,
                    vec![Value::str(self.pitch(k, 2, n as u64)), Value::Int(1)],
                )?;
                let slot = {
                    let t = ss.tree(&tree).expect("bootstrap created the tree");
                    (self.draw(k, 4, n as u64) % (t.children(parent).len() as u64 + 1)) as usize
                };
                ss.tree_insert_child(&tree, parent, slot, Tree::leaf(oid))?;
            }
        }
        Ok(())
    }

    /// Canonical value-rendered answers: every path's list pitches in
    /// position order and tree pitches in preorder, dereferenced through
    /// the owning shard. Identical across shard counts and crash
    /// histories whenever the observable extents are — the byte string
    /// the shard-chaos matrix compares.
    pub fn fingerprint(&self, ss: &ShardedStore) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for k in 0..self.paths {
            let list = self.list_path(k);
            let sh = ss.shard(ss.shard_of(&list));
            let _ = write!(out, "{list}:");
            if let Some(l) = sh.list(&list) {
                for e in l.elems() {
                    match e.oid() {
                        Some(oid) => {
                            let _ = write!(out, "{:?} ", sh.store().attr(oid, AttrId(0)));
                        }
                        None => out.push_str("_ "),
                    }
                }
            }
            out.push('\n');

            let tree = self.tree_path(k);
            let sh = ss.shard(ss.shard_of(&tree));
            let _ = write!(out, "{tree}:");
            if let Some(t) = sh.tree(&tree) {
                render_by_value(sh.store(), t, t.root(), &mut out);
            }
            out.push('\n');
        }
        out
    }
}

/// Preorder rendering by attribute value (never by OID).
fn render_by_value(store: &aqua_object::ObjectStore, t: &Tree, node: NodeId, out: &mut String) {
    use std::fmt::Write as _;
    match t.oid(node) {
        Some(oid) => {
            let _ = write!(out, "{:?}", store.attr(oid, AttrId(0)));
        }
        None => out.push('_'),
    }
    if !t.children(node).is_empty() {
        out.push('(');
        for &c in t.children(node) {
            render_by_value(store, t, c, out);
            out.push(' ');
        }
        out.push(')');
    }
}

// Keep the unused-import lint honest: Oid appears in docs/types above.
#[allow(unused)]
fn _oid_is_shard_local(_: Oid) {}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_store::{ShardedConfig, ShardedStore};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("aqua-sstorm-{tag}-{}-{n}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    fn build(dir: &std::path::Path, shards: usize, target: usize) -> (ShardedStore, ShardStorm) {
        let (mut ss, _) = ShardedStore::open(dir, ShardedConfig::with_shards(shards)).unwrap();
        let storm = ShardStorm::new(11, 6);
        storm.bootstrap(&mut ss).unwrap();
        storm.grow(&mut ss, target).unwrap();
        (ss, storm)
    }

    #[test]
    fn fingerprint_is_shard_count_invariant() {
        let (d1, d4) = (temp_dir("inv1"), temp_dir("inv4"));
        let (s1, storm) = build(&d1, 1, 24);
        let (s4, _) = build(&d4, 4, 24);
        assert_eq!(
            storm.fingerprint(&s1),
            storm.fingerprint(&s4),
            "same storm, different shard counts, same value answers"
        );
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d4).unwrap();
    }

    #[test]
    fn grow_is_idempotent_and_incremental() {
        let dir = temp_dir("idem");
        let (mut ss, storm) = build(&dir, 2, 10);
        let at_10 = storm.fingerprint(&ss);
        storm.grow(&mut ss, 10).unwrap();
        assert_eq!(storm.fingerprint(&ss), at_10, "regrow to target is a no-op");
        storm.grow(&mut ss, 20).unwrap();
        let at_20 = storm.fingerprint(&ss);
        assert_ne!(at_20, at_10);

        // Growing 0→20 in one shot lands on the same bytes as 10→20.
        let dir2 = temp_dir("oneshot");
        let (one_shot, _) = build(&dir2, 2, 20);
        assert_eq!(storm.fingerprint(&one_shot), at_20);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn bootstrap_is_idempotent() {
        let dir = temp_dir("boot");
        let (mut ss, storm) = build(&dir, 4, 8);
        let before = storm.fingerprint(&ss);
        storm.bootstrap(&mut ss).unwrap();
        assert_eq!(storm.fingerprint(&ss), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
