//! Document trees — the multimedia motivation of §1.
//!
//! "A document can be viewed as a tree of document components."
//! [`DocumentGen`] builds documents with sections, paragraphs, figures,
//! and text runs, the shape the `document_outline` example queries.

use aqua_algebra::{NodeId, Tree, TreeBuilder};
use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, ObjectStore, Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A document dataset.
pub struct DocumentDataset {
    pub store: ObjectStore,
    pub class: ClassId,
    pub tree: Tree,
}

/// Document generator.
pub struct DocumentGen {
    seed: u64,
    sections: usize,
    depth: usize,
}

impl DocumentGen {
    /// A generator with `seed`, defaulting to 5 top-level sections and
    /// nesting depth 3.
    pub fn new(seed: u64) -> Self {
        DocumentGen {
            seed,
            sections: 5,
            depth: 3,
        }
    }

    /// Set the number of top-level sections.
    pub fn sections(mut self, n: usize) -> Self {
        self.sections = n.max(1);
        self
    }

    /// Set the maximum section nesting depth.
    pub fn depth(mut self, d: usize) -> Self {
        self.depth = d.max(1);
        self
    }

    /// The `DocNode` class: a component kind (`doc`, `section`, `para`,
    /// `figure`, `text`), a title, and a word count.
    pub fn class_def() -> ClassDef {
        ClassDef::new(
            "DocNode",
            vec![
                AttrDef::stored("kind", AttrType::Str),
                AttrDef::stored("title", AttrType::Str),
                AttrDef::stored("words", AttrType::Int),
            ],
        )
        .expect("static class definition is valid")
    }

    fn node(store: &mut ObjectStore, kind: &str, title: &str, words: i64) -> Oid {
        store
            .insert_named(
                "DocNode",
                &[
                    ("kind", Value::str(kind)),
                    ("title", Value::str(title)),
                    ("words", Value::Int(words)),
                ],
            )
            .expect("row matches schema")
    }

    fn section(
        &self,
        store: &mut ObjectStore,
        b: &mut TreeBuilder,
        rng: &mut StdRng,
        path: &str,
        depth: usize,
    ) -> NodeId {
        let mut kids: Vec<NodeId> = Vec::new();
        let n_paras = rng.gen_range(1..=3);
        for i in 0..n_paras {
            let words = rng.gen_range(30..400);
            let text = Self::node(store, "text", &format!("{path}.t{i}"), words);
            let n_text = b.node(text, vec![]);
            let para = Self::node(store, "para", &format!("{path}.p{i}"), words);
            kids.push(b.node(para, vec![n_text]));
        }
        if rng.gen_bool(0.4) {
            let fig = Self::node(store, "figure", &format!("{path}.fig"), 0);
            kids.push(b.node(fig, vec![]));
        }
        if depth > 1 {
            let n_subs = rng.gen_range(0..=2);
            for i in 0..n_subs {
                let sub = self.section(store, b, rng, &format!("{path}.{i}"), depth - 1);
                kids.push(sub);
            }
        }
        let words = 0;
        let sec = Self::node(store, "section", path, words);
        b.node(sec, kids)
    }

    /// Generate the dataset.
    pub fn generate(&self) -> DocumentDataset {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = TreeBuilder::new();
        let mut kids = Vec::new();
        for i in 0..self.sections {
            kids.push(self.section(&mut store, &mut b, &mut rng, &format!("s{i}"), self.depth));
        }
        let doc = Self::node(&mut store, "doc", "root", 0);
        let root = b.node(doc, kids);
        let tree = b.finish(root).expect("generated document is well-formed");
        DocumentDataset { store, class, tree }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
    use aqua_pattern::tree_match::MatchConfig;

    #[test]
    fn structure_is_queryable() {
        let d = DocumentGen::new(6).sections(4).generate();
        let env = PredEnv::with_default_attr("kind");
        // Sections containing a figure among their components.
        let cp = parse_tree_pattern("section(!?* figure !?*)", &env)
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let ms = aqua_algebra::tree::ops::sub_select(
            &d.store,
            &d.tree,
            &cp,
            &MatchConfig::first_per_root(),
        )
        .unwrap();
        // Figures exist with probability 0.4 per section; the seed makes
        // this deterministic — just require the query to run and every
        // match to contain a figure.
        for m in &ms {
            let has_fig = m.iter_preorder().any(|n| {
                m.oid(n).is_some_and(|o| {
                    d.store.attr(o, aqua_object::AttrId(0)) == &Value::str("figure")
                })
            });
            assert!(has_fig);
        }
    }

    #[test]
    fn deterministic() {
        let a = DocumentGen::new(1).generate();
        let b = DocumentGen::new(1).generate();
        assert!(a.tree.structural_eq(&b.tree));
        assert!(a.tree.len() > 10);
    }
}
