//! Parameterized random trees.
//!
//! The benchmark workhorse: trees of a requested size with a weighted
//! label distribution (so predicate selectivity is a dial) and a
//! bounded, randomized fan-out. Deterministic under a seed.

use aqua_algebra::{Tree, TreeBuilder};
use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, ObjectStore, Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated tree dataset: the store holding the node objects, the
/// element class, and the tree itself.
pub struct TreeDataset {
    pub store: ObjectStore,
    pub class: ClassId,
    pub tree: Tree,
}

/// A generated forest dataset: many member trees (each of the
/// generator's configured size) sharing one store — the `Set[Tree]`
/// shape the parallel bulk operators scan.
pub struct ForestDataset {
    pub store: ObjectStore,
    pub class: ClassId,
    pub trees: Vec<Tree>,
}

impl ForestDataset {
    /// Total node count across all members.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.len()).sum()
    }
}

/// Random-tree generator. Node objects have two stored attributes:
/// `label: Str` drawn from the weighted alphabet and `num: Int` drawn
/// uniformly from `0..num_range`.
pub struct RandomTreeGen {
    seed: u64,
    nodes: usize,
    max_arity: usize,
    labels: Vec<(String, u32)>,
    num_range: i64,
}

impl RandomTreeGen {
    /// A generator with `seed`, defaulting to 1 000 nodes, fan-out ≤ 4,
    /// a uniform 8-letter alphabet, and `num ∈ 0..100`.
    pub fn new(seed: u64) -> Self {
        RandomTreeGen {
            seed,
            nodes: 1000,
            max_arity: 4,
            labels: ('a'..='h').map(|c| (c.to_string(), 1)).collect(),
            num_range: 100,
        }
    }

    /// Set the node count.
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Set the maximum fan-out.
    pub fn max_arity(mut self, k: usize) -> Self {
        self.max_arity = k.max(1);
        self
    }

    /// Set the label alphabet with weights — e.g. `[("d", 1), ("x", 999)]`
    /// makes `label = "d"` a 0.1%-selectivity predicate.
    pub fn label_weights(mut self, weights: &[(&str, u32)]) -> Self {
        assert!(!weights.is_empty(), "need at least one label");
        self.labels = weights.iter().map(|(l, w)| ((*l).to_owned(), *w)).collect();
        self
    }

    /// Set the `num` attribute range.
    pub fn num_range(mut self, r: i64) -> Self {
        self.num_range = r.max(1);
        self
    }

    /// The class definition every generated dataset uses.
    pub fn class_def() -> ClassDef {
        ClassDef::new(
            "RNode",
            vec![
                AttrDef::stored("label", AttrType::Str),
                AttrDef::stored("num", AttrType::Int),
            ],
        )
        .expect("static class definition is valid")
    }

    fn pick_label(&self, rng: &mut StdRng) -> &str {
        let total: u32 = self.labels.iter().map(|(_, w)| w).sum();
        let mut roll = rng.gen_range(0..total);
        for (l, w) in &self.labels {
            if roll < *w {
                return l;
            }
            roll -= w;
        }
        &self.labels[0].0
    }

    /// Generate the dataset.
    pub fn generate(&self) -> TreeDataset {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let tree = self.gen_tree(&mut store, &mut rng);
        TreeDataset { store, class, tree }
    }

    /// Generate a forest of `members` trees (each of the configured node
    /// count) sharing one store. Deterministic under the seed.
    pub fn generate_forest(&self, members: usize) -> ForestDataset {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let trees = (0..members)
            .map(|_| self.gen_tree(&mut store, &mut rng))
            .collect();
        ForestDataset {
            store,
            class,
            trees,
        }
    }

    fn gen_tree(&self, store: &mut ObjectStore, rng: &mut StdRng) -> Tree {
        // Create node objects.
        let oids: Vec<Oid> = (0..self.nodes)
            .map(|_| {
                let label = self.pick_label(rng).to_owned();
                let num = rng.gen_range(0..self.num_range);
                store
                    .insert_named(
                        "RNode",
                        &[("label", Value::Str(label)), ("num", Value::Int(num))],
                    )
                    .expect("row matches schema")
            })
            .collect();

        // Random tree shape: attach node i to a random parent among the
        // last `window` placed nodes (keeps depth reasonable), with
        // arity capping.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        let mut open: Vec<usize> = vec![0];
        for i in 1..self.nodes {
            // Pick an open slot (a node with arity budget left).
            let pick = rng.gen_range(0..open.len());
            let parent = open[pick];
            children[parent].push(i);
            if children[parent].len() >= self.max_arity {
                open.swap_remove(pick);
            }
            open.push(i);
        }

        // Realize bottom-up (children have larger indices than parents by
        // construction, so reverse index order works).
        let mut b = TreeBuilder::new();
        let mut built: Vec<Option<aqua_algebra::NodeId>> = vec![None; self.nodes];
        for i in (0..self.nodes).rev() {
            let kids = children[i]
                .iter()
                .map(|&k| built[k].expect("children built before parents"))
                .collect();
            built[i] = Some(b.node(oids[i], kids));
        }
        b.finish(built[0].expect("root built"))
            .expect("generated tree is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = RandomTreeGen::new(7).nodes(200).generate();
        let b = RandomTreeGen::new(7).nodes(200).generate();
        assert!(a.tree.structural_eq(&b.tree));
        let c = RandomTreeGen::new(8).nodes(200).generate();
        assert!(!a.tree.structural_eq(&c.tree));
    }

    #[test]
    fn respects_node_count_and_arity() {
        let d = RandomTreeGen::new(1).nodes(500).max_arity(3).generate();
        assert_eq!(d.tree.len(), 500);
        for n in d.tree.iter_preorder() {
            assert!(d.tree.arity(n) <= 3);
        }
    }

    #[test]
    fn label_weights_control_selectivity() {
        let d = RandomTreeGen::new(2)
            .nodes(2000)
            .label_weights(&[("d", 1), ("x", 99)])
            .generate();
        let rare = d
            .store
            .extent(d.class)
            .iter()
            .filter(|&&o| d.store.attr(o, aqua_object::AttrId(0)) == &Value::str("d"))
            .count();
        // ~1% of 2000 = 20; allow generous slack.
        assert!(rare > 3 && rare < 70, "rare = {rare}");
    }

    #[test]
    fn forest_shares_one_store() {
        let f = RandomTreeGen::new(9).nodes(50).generate_forest(6);
        assert_eq!(f.trees.len(), 6);
        assert_eq!(f.total_nodes(), 300);
        assert_eq!(f.store.extent(f.class).len(), 300);
        // Deterministic under seed, member by member.
        let g = RandomTreeGen::new(9).nodes(50).generate_forest(6);
        for (a, b) in f.trees.iter().zip(&g.trees) {
            assert!(a.structural_eq(b));
        }
    }

    #[test]
    fn single_node_tree() {
        let d = RandomTreeGen::new(3).nodes(1).generate();
        assert_eq!(d.tree.len(), 1);
        assert!(d.tree.is_leaf(d.tree.root()));
    }
}
