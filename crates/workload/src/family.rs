//! Family trees — the running example of §4 (Figure 3).
//!
//! "Consider a family tree containing the descendants of a famous
//! person. Each node represents a person object … we only list the
//! name, citizenship, eye color, and education attributes. Each edge
//! stands for the relationship 'a child of'."
//!
//! [`FamilyGen::paper_tree`] reconstructs a tree with the shape the
//! §4/Figure 4 walkthrough needs (a Brazilian parent with an American
//! child among other children); [`FamilyGen::generate`] makes random
//! genealogies of any size with a controllable citizenship mix.

use aqua_algebra::{NodeId, Tree, TreeBuilder};
use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, ObjectStore, Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A family-tree dataset.
pub struct FamilyDataset {
    pub store: ObjectStore,
    pub class: ClassId,
    pub tree: Tree,
}

/// Citizenships used by the generator, with weights.
pub const COUNTRIES: &[(&str, u32)] = &[
    ("USA", 4),
    ("Brazil", 2),
    ("India", 2),
    ("France", 1),
    ("Japan", 1),
];

const EYE_COLORS: &[&str] = &["brown", "blue", "green", "hazel"];
const EDUCATION: &[&str] = &["none", "school", "college", "masters", "phd"];

/// Family-tree generator.
pub struct FamilyGen {
    seed: u64,
    people: usize,
    max_children: usize,
}

impl FamilyGen {
    /// A generator with `seed`, defaulting to 100 people with up to 4
    /// children each.
    pub fn new(seed: u64) -> Self {
        FamilyGen {
            seed,
            people: 100,
            max_children: 4,
        }
    }

    /// Set the number of people.
    pub fn people(mut self, n: usize) -> Self {
        self.people = n.max(1);
        self
    }

    /// Set the maximum number of children per person.
    pub fn max_children(mut self, n: usize) -> Self {
        self.max_children = n.max(1);
        self
    }

    /// The `Person` class of §4: name, citizenship, eye color, education
    /// (all stored — usable in alphabet-predicates).
    pub fn class_def() -> ClassDef {
        ClassDef::new(
            "Person",
            vec![
                AttrDef::stored("name", AttrType::Str),
                AttrDef::stored("citizen", AttrType::Str),
                AttrDef::stored("eyes", AttrType::Str),
                AttrDef::stored("education", AttrType::Str),
            ],
        )
        .expect("static class definition is valid")
    }

    fn define(store: &mut ObjectStore) -> ClassId {
        store
            .define_class(Self::class_def())
            .expect("fresh store has no class clash")
    }

    fn person(
        store: &mut ObjectStore,
        name: &str,
        citizen: &str,
        eyes: &str,
        education: &str,
    ) -> Oid {
        store
            .insert_named(
                "Person",
                &[
                    ("name", Value::str(name)),
                    ("citizen", Value::str(citizen)),
                    ("eyes", Value::str(eyes)),
                    ("education", Value::str(education)),
                ],
            )
            .expect("row matches schema")
    }

    /// A hand-built family tree with the §4 walkthrough shape: the
    /// famous ancestor (root) has a Brazilian descendant ("Mat") whose
    /// children include an American ("Ed") with children of his own —
    /// so `split(Brazil(!?* USA !?*), …)` produces exactly the three
    /// pieces Figure 4 shows.
    pub fn paper_tree() -> FamilyDataset {
        let mut store = ObjectStore::new();
        let class = Self::define(&mut store);
        let p = |s: &mut ObjectStore, n: &str, c: &str| Self::person(s, n, c, "brown", "college");
        // Root "Ana" (Brazil)
        //   ├─ "Mat" (Brazil)
        //   │    ├─ "Lia" (Brazil)  ─ "Joe" (USA)
        //   │    ├─ "Ed"  (USA)     ─ "Tim" (USA), "Ann" (USA)
        //   │    └─ "Raj" (India)
        //   └─ "Sue" (USA)
        let ana = p(&mut store, "Ana", "Brazil");
        let mat = p(&mut store, "Mat", "Brazil");
        let lia = p(&mut store, "Lia", "Brazil");
        let joe = p(&mut store, "Joe", "USA");
        let ed = p(&mut store, "Ed", "USA");
        let tim = p(&mut store, "Tim", "USA");
        let ann = p(&mut store, "Ann", "USA");
        let raj = p(&mut store, "Raj", "India");
        let sue = p(&mut store, "Sue", "USA");
        let mut b = TreeBuilder::new();
        let n_joe = b.node(joe, vec![]);
        let n_lia = b.node(lia, vec![n_joe]);
        let n_tim = b.node(tim, vec![]);
        let n_ann = b.node(ann, vec![]);
        let n_ed = b.node(ed, vec![n_tim, n_ann]);
        let n_raj = b.node(raj, vec![]);
        let n_mat = b.node(mat, vec![n_lia, n_ed, n_raj]);
        let n_sue = b.node(sue, vec![]);
        let root = b.node(ana, vec![n_mat, n_sue]);
        let tree = b.finish(root).expect("hand-built tree is well-formed");
        FamilyDataset { store, class, tree }
    }

    /// Generate a random genealogy.
    pub fn generate(&self) -> FamilyDataset {
        let mut store = ObjectStore::new();
        let class = Self::define(&mut store);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total: u32 = COUNTRIES.iter().map(|(_, w)| w).sum();
        let oids: Vec<Oid> = (0..self.people)
            .map(|i| {
                let mut roll = rng.gen_range(0..total);
                let mut citizen = COUNTRIES[0].0;
                for (c, w) in COUNTRIES {
                    if roll < *w {
                        citizen = c;
                        break;
                    }
                    roll -= w;
                }
                let eyes = EYE_COLORS[rng.gen_range(0..EYE_COLORS.len())];
                let edu = EDUCATION[rng.gen_range(0..EDUCATION.len())];
                Self::person(&mut store, &format!("p{i}"), citizen, eyes, edu)
            })
            .collect();

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.people];
        let mut open: Vec<usize> = vec![0];
        for (i, _) in oids.iter().enumerate().skip(1) {
            let pick = rng.gen_range(0..open.len());
            let parent = open[pick];
            children[parent].push(i);
            if children[parent].len() >= self.max_children {
                open.swap_remove(pick);
            }
            open.push(i);
        }
        let mut b = TreeBuilder::new();
        let mut built: Vec<Option<NodeId>> = vec![None; self.people];
        for i in (0..self.people).rev() {
            let kids = children[i]
                .iter()
                .map(|&k| built[k].expect("children built before parents"))
                .collect();
            built[i] = Some(b.node(oids[i], kids));
        }
        let tree = b
            .finish(built[0].expect("root built"))
            .expect("generated tree is well-formed");
        FamilyDataset { store, class, tree }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
    use aqua_pattern::tree_match::MatchConfig;

    fn env() -> PredEnv {
        let mut e = PredEnv::new();
        e.define("Brazil", aqua_pattern::PredExpr::eq("citizen", "Brazil"));
        e.define("USA", aqua_pattern::PredExpr::eq("citizen", "USA"));
        e
    }

    #[test]
    fn paper_tree_supports_fig4_split() {
        let d = FamilyGen::paper_tree();
        let cp = parse_tree_pattern("Brazil(!?* USA !?*)", &env())
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let pieces = aqua_algebra::tree::split::split_pieces(
            &d.store,
            &d.tree,
            &cp,
            &MatchConfig::default(),
        )
        .unwrap();
        // Three Brazilians with an American child: Ana (child Sue),
        // Mat (child Ed), and Lia (child Joe).
        assert_eq!(pieces.len(), 3);
        for p in &pieces {
            assert!(p.reassemble().structural_eq(&d.tree));
        }
    }

    #[test]
    fn generated_families_are_deterministic_and_sized() {
        let a = FamilyGen::new(5).people(300).generate();
        let b = FamilyGen::new(5).people(300).generate();
        assert_eq!(a.tree.len(), 300);
        assert!(a.tree.structural_eq(&b.tree));
    }

    #[test]
    fn attributes_are_queryable() {
        let d = FamilyGen::new(1).people(500).generate();
        let pred = aqua_pattern::PredExpr::eq("citizen", "Brazil")
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let forest = aqua_algebra::tree::ops::select(&d.store, &d.tree, &pred);
        // Brazil weight 2/10 → about 100 of 500; the forest keeps them all.
        let kept: usize = forest.iter().map(|t| t.len()).sum();
        assert!(kept > 50 && kept < 180, "kept = {kept}");
    }
}
