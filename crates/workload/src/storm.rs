//! Seeded mutation storms against a [`DurableStore`] — the chaos
//! harness's workload.
//!
//! A [`MutationStorm`] is a pure function of its seed: op `i` draws
//! from an RNG seeded by `(seed, i)` and from the *live* store state,
//! so applying ops `0..n` to any store that started from the same
//! (empty) state always produces the same WAL, byte for byte. That
//! prefix-stability lets the kill-and-recover tests resume the *same*
//! storm after a crash truncates the log at record `R` — and, with
//! authenticated extents, every frame's bound merkle root is likewise
//! a pure function of the prefix, so recovery proves the surviving
//! state from the data alone instead of consulting a never-crashed
//! reference run.
//!
//! Every op appends **exactly one** WAL record, so the recovered
//! store's `next_lsn` maps 1:1 to a storm prefix length.

use std::ops::Range;

use aqua_algebra::{NodeId, Tree};
use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, Oid, Value};
use aqua_store::{DurableStore, IndexSpec, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::music::PITCHES;

/// Ops `0..BOOT_OPS` are the fixed bootstrap: class, first note, the
/// `"song"` list, the `"doc"` tree, and all four index registrations.
pub const BOOT_OPS: u64 = 8;

/// The extent names the storm mutates.
pub const STORM_LIST: &str = "song";
/// The tree extent the storm mutates.
pub const STORM_TREE: &str = "doc";

/// A deterministic mutation storm. See the module docs for the
/// prefix-stability contract.
#[derive(Debug, Clone, Copy)]
pub struct MutationStorm {
    seed: u64,
}

impl MutationStorm {
    /// A storm with `seed`.
    pub fn new(seed: u64) -> Self {
        MutationStorm { seed }
    }

    /// The storm's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `Note` class the storm inserts: pitch and duration, stored.
    pub fn class_def() -> ClassDef {
        ClassDef::new(
            "Note",
            vec![
                AttrDef::stored("pitch", AttrType::Str),
                AttrDef::stored("duration", AttrType::Int),
            ],
        )
        .expect("static class definition is valid")
    }

    /// Per-op RNG: a fresh stream keyed by `(seed, i)`, so replaying
    /// any prefix redraws identical choices.
    fn op_rng(&self, i: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Apply ops `range` in order. Returns how many ops were applied.
    /// Each op appends exactly one WAL record; a typed error aborts at
    /// the failing op.
    pub fn apply(&self, ds: &mut DurableStore, range: Range<u64>) -> Result<u64> {
        let mut applied = 0;
        for i in range {
            self.apply_op(ds, i)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Apply op `i` (bootstrap for `i < BOOT_OPS`, then the seeded mix
    /// of inserts, updates, list pushes/removes, and tree edits).
    pub fn apply_op(&self, ds: &mut DurableStore, i: u64) -> Result<()> {
        let mut rng = self.op_rng(i);
        match i {
            0 => {
                ds.define_class(Self::class_def())?;
                return Ok(());
            }
            1 => {
                let class = ds.store().class_id("Note")?;
                ds.insert(class, vec![Value::str("E"), Value::Int(4)])?;
                return Ok(());
            }
            2 => {
                ds.create_list(STORM_LIST)?;
                return Ok(());
            }
            3 => {
                ds.create_tree(STORM_TREE, Tree::leaf(Oid(0)))?;
                return Ok(());
            }
            4..=7 => {
                let class = ds.store().class_id("Note")?;
                let spec = match i {
                    4 => IndexSpec::Attr {
                        class,
                        attr: AttrId(0),
                    },
                    5 => IndexSpec::ListPos {
                        list: STORM_LIST.to_owned(),
                        class,
                        attr: AttrId(0),
                    },
                    6 => IndexSpec::TreeNode {
                        tree: STORM_TREE.to_owned(),
                        class,
                        attr: AttrId(0),
                    },
                    _ => IndexSpec::Structural {
                        tree: STORM_TREE.to_owned(),
                    },
                };
                ds.register_index(spec)?;
                return Ok(());
            }
            _ => {}
        }

        let class = ds.store().class_id("Note")?;
        let objects = ds.store().len();
        let pick_oid = |rng: &mut StdRng| Oid(rng.gen_range(0..objects) as u64);
        match rng.gen_range(0..100u32) {
            0..=44 => {
                let pitch = PITCHES[rng.gen_range(0..PITCHES.len())];
                let duration = rng.gen_range(1..=8i64);
                ds.insert(class, vec![Value::str(pitch), Value::Int(duration)])?;
            }
            45..=64 => {
                let oid = pick_oid(&mut rng);
                ds.list_push(STORM_LIST, oid)?;
            }
            65..=74 => {
                let oid = pick_oid(&mut rng);
                let duration = rng.gen_range(1..=8i64);
                ds.update(oid, AttrId(1), Value::Int(duration))?;
            }
            75..=84 => {
                let tree = ds.tree(STORM_TREE).expect("bootstrap created the tree");
                let parent = NodeId(rng.gen_range(0..tree.len()) as u32);
                let index = rng.gen_range(0..=tree.children(parent).len());
                let child = Tree::leaf(pick_oid(&mut rng));
                ds.tree_insert_child(STORM_TREE, parent, index, child)?;
            }
            85..=91 => {
                let len = ds
                    .list(STORM_LIST)
                    .expect("bootstrap created the list")
                    .len();
                if len == 0 {
                    let oid = pick_oid(&mut rng);
                    ds.list_push(STORM_LIST, oid)?;
                } else {
                    let at = rng.gen_range(0..len);
                    ds.list_remove(STORM_LIST, at)?;
                }
            }
            _ => {
                let tree = ds.tree(STORM_TREE).expect("bootstrap created the tree");
                if tree.len() <= 1 {
                    let child = Tree::leaf(pick_oid(&mut rng));
                    ds.tree_insert_child(STORM_TREE, tree.root(), 0, child)?;
                } else {
                    // Any arena id but the root is removable; ids are
                    // compact after every rebuild.
                    let root = tree.root().index();
                    let k = rng.gen_range(0..tree.len() - 1);
                    let at = if k >= root { k + 1 } else { k };
                    ds.tree_remove_subtree(STORM_TREE, NodeId(at as u32))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use aqua_store::DurableConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("aqua-storm-{tag}-{}-{n}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    fn open(dir: &std::path::Path) -> DurableStore {
        DurableStore::open(dir, DurableConfig::default()).unwrap().0
    }

    #[test]
    fn one_op_is_one_wal_record() {
        let dir = temp_dir("lsn");
        let mut ds = open(&dir);
        let storm = MutationStorm::new(7);
        for i in 0..(BOOT_OPS + 50) {
            storm.apply_op(&mut ds, i).unwrap();
            assert_eq!(ds.epoch(), i + 1, "op {i} must burn exactly one LSN");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_prefix_same_state() {
        let (da, db) = (temp_dir("pfx-a"), temp_dir("pfx-b"));
        let storm = MutationStorm::new(42);
        let (mut a, mut b) = (open(&da), open(&db));
        storm.apply(&mut a, 0..BOOT_OPS + 120).unwrap();
        storm.apply(&mut b, 0..BOOT_OPS + 120).unwrap();
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.store().len(), b.store().len());
        assert_eq!(
            a.list(STORM_LIST).unwrap().elems(),
            b.list(STORM_LIST).unwrap().elems()
        );
        assert!(a
            .tree(STORM_TREE)
            .unwrap()
            .structural_eq(b.tree(STORM_TREE).unwrap()));
        std::fs::remove_dir_all(&da).unwrap();
        std::fs::remove_dir_all(&db).unwrap();
    }

    #[test]
    fn different_seeds_diverge() {
        let (da, db) = (temp_dir("div-a"), temp_dir("div-b"));
        let (mut a, mut b) = (open(&da), open(&db));
        MutationStorm::new(1)
            .apply(&mut a, 0..BOOT_OPS + 200)
            .unwrap();
        MutationStorm::new(2)
            .apply(&mut b, 0..BOOT_OPS + 200)
            .unwrap();
        let same = a.store().len() == b.store().len()
            && a.list(STORM_LIST).unwrap().elems() == b.list(STORM_LIST).unwrap().elems()
            && a.tree(STORM_TREE)
                .unwrap()
                .structural_eq(b.tree(STORM_TREE).unwrap());
        assert!(!same, "seeds 1 and 2 produced identical storms");
        std::fs::remove_dir_all(&da).unwrap();
        std::fs::remove_dir_all(&db).unwrap();
    }
}
