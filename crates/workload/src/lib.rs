//! # aqua-workload — deterministic workload generators
//!
//! Every dataset the tests, examples, and benchmarks use: the paper's
//! motivating domains, reproducible under fixed seeds.
//!
//! * [`family`] — the family tree of §4/Figure 3 (people with name,
//!   citizenship, eye color, education) and random genealogies.
//! * [`music`] — the §6 music database: songs as lists of notes, with
//!   plantable melodies for controlled match counts.
//! * [`parse_tree`] — §5's query parse trees (`select(R, and(p1 p2))`)
//!   and random operator trees for the rewrite example.
//! * [`document`] — document trees (section/paragraph/figure), the
//!   multimedia motivation from §1.
//! * [`random_tree`] — parameterized random trees with weighted label
//!   distributions (the selectivity dial for benchmarks B1/B6/B7/B8).
//! * [`storm`] — seeded mutation storms against a
//!   [`DurableStore`](aqua_store::DurableStore), prefix-stable so the
//!   kill-and-recover chaos harness can rebuild a never-crashed
//!   reference for any crash point.
//! * [`shard_storm`] — position-keyed deterministic population of a
//!   [`ShardedStore`](aqua_store::ShardedStore), whose final state (and
//!   value fingerprint) is invariant across shard counts and crash
//!   points — the shard-chaos matrix's workload.

pub mod document;
pub mod family;
pub mod music;
pub mod parse_tree;
pub mod random_tree;
pub mod shard_storm;
pub mod storm;

pub use document::DocumentGen;
pub use family::FamilyGen;
pub use music::SongGen;
pub use parse_tree::ParseTreeGen;
pub use random_tree::RandomTreeGen;
pub use shard_storm::ShardStorm;
pub use storm::MutationStorm;
