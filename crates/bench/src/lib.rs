//! Shared helpers for the AQUA benchmark harness (see `benches/`).
//!
//! Each bench target reproduces one experiment from DESIGN.md §4 and
//! prints the corresponding EXPERIMENTS.md table rows.

pub mod table;

pub use table::Table;

pub mod timing;
pub use timing::{time_median, Timed};
