//! Shared helpers for the AQUA benchmark harness (see `benches/`).
//!
//! Each bench target reproduces one experiment from DESIGN.md §4 and
//! prints the corresponding EXPERIMENTS.md table rows.

pub mod gate;
pub mod table;

pub use table::Table;

pub mod timing;
pub use timing::{time_median, Timed};

/// True when `AQUA_BENCH_QUICK` asks for the abbreviated CI profile:
/// fewer timed iterations (and a smaller thread sweep in b11), with the
/// workload sizes untouched so row names keep meaning the same thing.
/// Any value other than empty or `0` enables it.
pub fn quick() -> bool {
    std::env::var_os("AQUA_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Timed-iteration count for a bench: `full` normally, `quick_iters`
/// under [`quick`] mode.
pub fn iters_for(full: usize, quick_iters: usize) -> usize {
    if quick() {
        quick_iters
    } else {
        full
    }
}
