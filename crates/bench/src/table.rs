//! Minimal fixed-width table printer for benchmark reports.

/// Accumulates rows and prints an aligned plain-text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must have as many cells as the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(vec!["10".into(), "1.5".into()]);
        t.row(vec!["1000".into(), "150.25".into()]);
        let s = t.render();
        assert!(s.contains("   n"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
