//! CI perf-regression gate.
//!
//! Compare mode (the CI default):
//!
//! ```text
//! cargo run -p aqua-bench --bin bench_gate -- BENCH_baseline.json b10.json b11.json
//! ```
//!
//! exits non-zero when any baseline row's median regresses past
//! `base * 1.25 + 0.3ms`, or when a baseline row is missing from the
//! current dumps. Rows the baseline has never seen are reported but do
//! not fail the gate — re-record to start gating them. The split CI
//! lanes pass `--only <prefix,...>` to gate just their own baseline
//! rows (`--only b11/,b16/` on the multi-core scaling lane), and the
//! b16 rows get an extra floor: the 4-shard medians must beat the
//! 1-shard medians by ≥2x whenever the host has ≥4 cores.
//!
//! Record mode (run on a quiet machine, commit the result):
//!
//! ```text
//! cargo run -p aqua-bench --bin bench_gate -- --record BENCH_baseline.json b10.json b11.json
//! ```
//!
//! rewrites the baseline from the dumps' rows verbatim. Both modes use
//! [`aqua_bench::gate`] for the scanning and comparison logic.

use std::process::ExitCode;

use aqua_bench::gate;

/// Relative band: fail past a 25% median regression.
const THRESHOLD: f64 = 0.25;
/// Additive slack so sub-millisecond rows don't trip on scheduler noise.
const SLACK_MS: f64 = 0.3;

/// Pre-batching b10 medians (ms), frozen from the baseline recorded
/// before the flat-memory/batched-matching rewrite. Unlike the rolling
/// baseline (which `--record` rewrites), these are fixed reference
/// points: the gate fails outright if a current run gives the batching
/// win back — a median worse than `pre / MIN_B10_SPEEDUP`.
const PRE_BATCH_MS: &[(&str, f64)] = &[
    ("b10/alphabet_predicate_eval_100k", 1.5777),
    ("b10/pike_vm_scan_10k_notes", 1.1252),
];

/// Required speedup over [`PRE_BATCH_MS`]. The batching rewrite
/// measures 3.5-4.3x on full-profile runs; the floor sits at 2.5x so a
/// noisy quick-profile CI run can't flap the gate, while a revert of
/// the batched path (~1x) still fails outright.
const MIN_B10_SPEEDUP: f64 = 2.5;

/// Required 4-shard-over-1-shard speedup for the b16 rows, computed
/// from the *current* run's own medians (no baseline needed: the ratio
/// is host-relative by construction). Enforced only on hosts with at
/// least [`SHARD_GATE_MIN_CORES`] cores — a 1-core container can
/// parallelize nothing, and scatter-gather honestly reports ~1x there.
const MIN_SHARD_SPEEDUP: f64 = 2.0;

/// Core count below which the shard-speedup floor is reported but not
/// enforced. Four shards need four workers to show their 2x.
const SHARD_GATE_MIN_CORES: usize = 4;

/// The b16 row families whose 4-vs-1 shard ratio the gate enforces.
const SHARD_FAMILIES: &[&str] = &["recovery", "scatter_sub_select"];

fn read_rows(path: &str) -> Vec<gate::BenchRow> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let rows = gate::scan_rows(&text);
            if rows.is_empty() {
                eprintln!("bench_gate: warning: no rows found in {path}");
            }
            rows
        }
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.first().is_some_and(|a| a == "--record");
    if record {
        args.remove(0);
    }
    // `--only b10/,b12/` restricts gating to baseline rows under the
    // given key prefixes — how the split CI lanes share one committed
    // baseline without each failing the other's rows as missing.
    let mut only: Vec<String> = Vec::new();
    if args.first().is_some_and(|a| a == "--only") {
        args.remove(0);
        if args.is_empty() {
            eprintln!("bench_gate: --only needs a comma-separated prefix list");
            return ExitCode::from(2);
        }
        only = args.remove(0).split(',').map(str::to_string).collect();
    }
    if args.len() < 2 {
        eprintln!(
            "usage: bench_gate [--record] [--only <prefix,...>] <baseline.json> <current.json>..."
        );
        return ExitCode::from(2);
    }
    let baseline_path = args.remove(0);
    let current: Vec<gate::BenchRow> = args.iter().flat_map(|p| read_rows(p)).collect();
    if current.is_empty() {
        eprintln!("bench_gate: no current rows — did the benches run with AQUA_BENCH_JSON?");
        return ExitCode::from(2);
    }

    if record {
        let host = aqua_exec::available_threads();
        let text = gate::render_baseline(&current, host);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("bench_gate: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "bench_gate: recorded {} rows to {baseline_path}",
            gate::scan_rows(&text).len()
        );
        return ExitCode::SUCCESS;
    }

    let host = aqua_exec::available_threads();
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut baseline = gate::scan_rows(&baseline_text);
    if baseline.is_empty() {
        eprintln!("bench_gate: empty baseline {baseline_path} — record one first");
        return ExitCode::from(2);
    }
    if !only.is_empty() {
        baseline.retain(|r| only.iter().any(|p| r.key.starts_with(p.as_str())));
        println!(
            "bench_gate: gating {} baseline rows under {only:?}",
            baseline.len()
        );
        if baseline.is_empty() {
            eprintln!("bench_gate: no baseline rows match {only:?}");
            return ExitCode::from(2);
        }
    }
    let report = gate::compare(&baseline, &current, THRESHOLD, SLACK_MS, host);
    print!("{}", report.render(THRESHOLD, SLACK_MS));

    // Warned verdicts exist to excuse scaling rows recorded on a
    // *different* host shape. When the baseline envelope says it was
    // recorded on this very core count, there is nothing to excuse:
    // promote warned rows to hard failures.
    let strict = gate::scan_host_threads(&baseline_text) == Some(host);
    let gate_failures = if strict {
        if report.strict_failures() > report.failures() {
            println!(
                "bench_gate: strict cores — baseline recorded at {host} threads (= this host); \
                 warned rows count as failures"
            );
        }
        report.strict_failures()
    } else {
        report.failures()
    };

    // Absolute floors for the batched hot-path rows: these gate the
    // *speedup*, not just drift against the rolling baseline.
    let mut floor_failures = 0usize;
    for &(key, pre) in PRE_BATCH_MS {
        let Some(row) = current.iter().find(|r| r.key == key) else {
            continue;
        };
        let floor = pre / MIN_B10_SPEEDUP;
        if row.median_ms > floor {
            println!(
                "FLOOR {key}: {:.4}ms exceeds {floor:.4}ms \
                 ({MIN_B10_SPEEDUP:.0}x over pre-batching {pre:.4}ms)",
                row.median_ms
            );
            floor_failures += 1;
        } else {
            println!(
                "floor {key}: {:.1}x over pre-batching ({:.4}ms <= {floor:.4}ms)",
                pre / row.median_ms,
                row.median_ms
            );
        }
    }

    // Shard-parallel floors: the b16 tentpole claim, gated from the
    // current run's own 1-vs-4-shard ratio. Only meaningful where four
    // workers can actually run — a single-core lane reports and skips.
    let mut shard_failures = 0usize;
    for &family in SHARD_FAMILIES {
        let at = |mode: &str| {
            current
                .iter()
                .find(|r| r.key == format!("b16/{family}/shards {mode}"))
        };
        let (Some(one), Some(four)) = (at("x1"), at("x4")) else {
            continue;
        };
        let ratio = one.median_ms / four.median_ms.max(1e-9);
        if host < SHARD_GATE_MIN_CORES {
            println!(
                "shard {family}: {ratio:.2}x at 4 shards (host has {host} cores < \
                 {SHARD_GATE_MIN_CORES}; floor not enforced)"
            );
        } else if ratio < MIN_SHARD_SPEEDUP {
            println!(
                "SHARD {family}: {ratio:.2}x at 4 shards vs 1, below the \
                 {MIN_SHARD_SPEEDUP:.1}x floor ({:.4}ms -> {:.4}ms)",
                one.median_ms, four.median_ms
            );
            shard_failures += 1;
        } else {
            println!(
                "shard {family}: {ratio:.2}x at 4 shards vs 1 (floor {MIN_SHARD_SPEEDUP:.1}x)"
            );
        }
    }

    if gate_failures + floor_failures + shard_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
