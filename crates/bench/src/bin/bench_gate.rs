//! CI perf-regression gate.
//!
//! Compare mode (the CI default):
//!
//! ```text
//! cargo run -p aqua-bench --bin bench_gate -- BENCH_baseline.json b10.json b11.json
//! ```
//!
//! exits non-zero when any baseline row's median regresses past
//! `base * 1.25 + 0.3ms`, or when a baseline row is missing from the
//! current dumps. Rows the baseline has never seen are reported but do
//! not fail the gate — re-record to start gating them.
//!
//! Record mode (run on a quiet machine, commit the result):
//!
//! ```text
//! cargo run -p aqua-bench --bin bench_gate -- --record BENCH_baseline.json b10.json b11.json
//! ```
//!
//! rewrites the baseline from the dumps' rows verbatim. Both modes use
//! [`aqua_bench::gate`] for the scanning and comparison logic.

use std::process::ExitCode;

use aqua_bench::gate;

/// Relative band: fail past a 25% median regression.
const THRESHOLD: f64 = 0.25;
/// Additive slack so sub-millisecond rows don't trip on scheduler noise.
const SLACK_MS: f64 = 0.3;

/// Pre-batching b10 medians (ms), frozen from the baseline recorded
/// before the flat-memory/batched-matching rewrite. Unlike the rolling
/// baseline (which `--record` rewrites), these are fixed reference
/// points: the gate fails outright if a current run gives the batching
/// win back — a median worse than `pre / MIN_B10_SPEEDUP`.
const PRE_BATCH_MS: &[(&str, f64)] = &[
    ("b10/alphabet_predicate_eval_100k", 1.5777),
    ("b10/pike_vm_scan_10k_notes", 1.1252),
];

/// Required speedup over [`PRE_BATCH_MS`]. The batching rewrite
/// measures 3.5-4.3x on full-profile runs; the floor sits at 2.5x so a
/// noisy quick-profile CI run can't flap the gate, while a revert of
/// the batched path (~1x) still fails outright.
const MIN_B10_SPEEDUP: f64 = 2.5;

fn read_rows(path: &str) -> Vec<gate::BenchRow> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let rows = gate::scan_rows(&text);
            if rows.is_empty() {
                eprintln!("bench_gate: warning: no rows found in {path}");
            }
            rows
        }
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.first().is_some_and(|a| a == "--record");
    if record {
        args.remove(0);
    }
    if args.len() < 2 {
        eprintln!("usage: bench_gate [--record] <baseline.json> <current.json>...");
        return ExitCode::from(2);
    }
    let baseline_path = args.remove(0);
    let current: Vec<gate::BenchRow> = args.iter().flat_map(|p| read_rows(p)).collect();
    if current.is_empty() {
        eprintln!("bench_gate: no current rows — did the benches run with AQUA_BENCH_JSON?");
        return ExitCode::from(2);
    }

    if record {
        let host = aqua_exec::available_threads();
        let text = gate::render_baseline(&current, host);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("bench_gate: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "bench_gate: recorded {} rows to {baseline_path}",
            gate::scan_rows(&text).len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = read_rows(&baseline_path);
    if baseline.is_empty() {
        eprintln!("bench_gate: empty baseline {baseline_path} — record one first");
        return ExitCode::from(2);
    }
    let report = gate::compare(
        &baseline,
        &current,
        THRESHOLD,
        SLACK_MS,
        aqua_exec::available_threads(),
    );
    print!("{}", report.render(THRESHOLD, SLACK_MS));

    // Absolute floors for the batched hot-path rows: these gate the
    // *speedup*, not just drift against the rolling baseline.
    let mut floor_failures = 0usize;
    for &(key, pre) in PRE_BATCH_MS {
        let Some(row) = current.iter().find(|r| r.key == key) else {
            continue;
        };
        let floor = pre / MIN_B10_SPEEDUP;
        if row.median_ms > floor {
            println!(
                "FLOOR {key}: {:.4}ms exceeds {floor:.4}ms \
                 ({MIN_B10_SPEEDUP:.0}x over pre-batching {pre:.4}ms)",
                row.median_ms
            );
            floor_failures += 1;
        } else {
            println!(
                "floor {key}: {:.1}x over pre-batching ({:.4}ms <= {floor:.4}ms)",
                pre / row.median_ms,
                row.median_ms
            );
        }
    }

    if report.failures() + floor_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
