//! Lightweight measurement for the benchmark tables.
//!
//! Each experiment compares *plan shapes* (naive vs rewritten), so what
//! matters is the ratio, not nanosecond precision: one warm-up run, then
//! the median of `iters` timed runs of a deterministic workload.

use std::time::Instant;

/// A measured duration in seconds plus the per-run result size (to keep
/// the work observable and prevent dead-code elimination).
#[derive(Debug, Clone, Copy)]
pub struct Timed {
    pub secs: f64,
    pub result_size: usize,
}

/// Median-of-`iters` wall time of `f`, whose return value is a result
/// size (consumed so the optimizer cannot discard the work).
pub fn time_median(iters: usize, mut f: impl FnMut() -> usize) -> Timed {
    let mut size = std::hint::black_box(f());
    let mut times: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            size = std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    Timed {
        secs: times[times.len() / 2],
        result_size: size,
    }
}

/// Pretty milliseconds.
pub fn ms(t: Timed) -> String {
    format!("{:.3}", t.secs * 1e3)
}

/// Speedup factor `a / b`.
pub fn speedup(naive: Timed, fast: Timed) -> String {
    format!("{:.1}x", naive.secs / fast.secs.max(1e-12))
}
