//! Regression-gate plumbing for the CI perf job.
//!
//! The benches (`b10_micro`, `b11_parallel_scaling`) dump flat JSON rows
//! when `AQUA_BENCH_JSON` is set; `bench_gate` (see `src/bin/`) scans
//! those dumps, matches rows against `BENCH_baseline.json` by a key
//! assembled from the row's identifying fields, and fails when a median
//! regresses past the threshold. Everything here is hand-rolled against
//! the dumps' own shape — single-line `{...}` objects with no nested
//! braces and no whitespace around `:` — because the workspace is
//! dependency-free by design (no serde).

use std::fmt::Write as _;

/// Fields that identify a row across runs, in key order. Absent fields
/// are simply skipped, so b10 rows (`bench`,`name`) and b11 rows
/// (`bench`,`members`,…,`mode`) both key cleanly.
const KEY_FIELDS: &[&str] = &[
    "bench",
    "name",
    "members",
    "nodes_per_member",
    "selectivity",
    "mode",
];

/// One measured row scraped from a bench dump.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Identity across runs: the row's key fields joined with `/`.
    pub key: String,
    /// The measured median, milliseconds.
    pub median_ms: f64,
    /// Host core count recorded with the row (`"parallelism"` field),
    /// when present. Scaling-sensitive rows recorded on a different
    /// host warn instead of failing the gate.
    pub parallelism: Option<usize>,
    /// The row's raw JSON object, kept verbatim for `--record`.
    pub raw: String,
}

/// Extract the string or numeric value of `"name":` in a flat object.
fn field(obj: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    if let Some(inner) = rest.strip_prefix('"') {
        let end = inner.find('"')?;
        Some(inner[..end].to_string())
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        let v = rest[..end].trim();
        (!v.is_empty()).then(|| v.to_string())
    }
}

/// Scan a dump for flat `{...}` objects carrying a `median_ms` field.
/// Nested objects (e.g. a `MetricsSnapshot` embedded in other output)
/// are ignored: only innermost brace spans are considered, and only
/// those that parse a numeric `median_ms`.
pub fn scan_rows(json: &str) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    let bytes = json.as_bytes();
    let mut open: Option<usize> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => open = Some(i),
            b'}' => {
                if let Some(s) = open.take() {
                    let obj = &json[s..=i];
                    if let Some(ms) = field(obj, "median_ms").and_then(|v| v.parse::<f64>().ok()) {
                        let key: Vec<String> =
                            KEY_FIELDS.iter().filter_map(|f| field(obj, f)).collect();
                        if !key.is_empty() {
                            rows.push(BenchRow {
                                key: key.join("/"),
                                median_ms: ms,
                                parallelism: field(obj, "parallelism").and_then(|v| v.parse().ok()),
                                raw: obj.to_string(),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    rows
}

/// Gate verdict for one baseline row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the allowed band (or faster).
    Ok,
    /// Slower than `base * (1 + threshold) + slack_ms`.
    Regressed,
    /// Baseline row has no counterpart in the current dumps.
    Missing,
    /// Out of band, but the row is scaling-sensitive (b11/b16) and was
    /// recorded on a host with a different core count — reported, not
    /// failed, because parallel speedups don't transfer across hosts.
    Warned,
}

/// Comparison of one baseline row against the current run.
#[derive(Debug, Clone)]
pub struct GateLine {
    pub key: String,
    pub base_ms: f64,
    /// `None` when the row is [`Verdict::Missing`].
    pub cur_ms: Option<f64>,
    pub verdict: Verdict,
}

/// Full gate report: one line per baseline row, plus current-run keys
/// the baseline has never seen (informational — they start gating once
/// recorded).
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    pub lines: Vec<GateLine>,
    pub new_keys: Vec<String>,
}

impl GateReport {
    /// Number of regressed or missing baseline rows (warned rows don't
    /// count — they were measured under a different host shape).
    pub fn failures(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.verdict != Verdict::Ok && l.verdict != Verdict::Warned)
            .count()
    }

    /// [`failures`](Self::failures) with [`Verdict::Warned`] promoted to
    /// a hard failure. The multi-core CI lane uses this when the
    /// baseline envelope's `host_threads` matches the running host: the
    /// only excuse for a warned row is a cross-host comparison, so when
    /// baseline and run agree on cores there is no excuse left.
    pub fn strict_failures(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.verdict != Verdict::Ok)
            .count()
    }

    /// Human-readable summary, one row per line.
    pub fn render(&self, threshold: f64, slack_ms: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench gate: fail if median > baseline * {:.2} + {slack_ms:.1}ms",
            1.0 + threshold
        );
        for l in &self.lines {
            match (l.verdict, l.cur_ms) {
                (Verdict::Missing, _) | (_, None) => {
                    let _ = writeln!(out, "  MISSING  {:<60} base {:.3}ms", l.key, l.base_ms);
                }
                (v, Some(cur)) => {
                    let tag = match v {
                        Verdict::Ok => "ok",
                        Verdict::Warned => "warned",
                        _ => "REGRESSED",
                    };
                    let _ = writeln!(
                        out,
                        "  {tag:<9}{:<60} base {:.3}ms -> {:.3}ms ({:+.1}%)",
                        l.key,
                        l.base_ms,
                        cur,
                        (cur / l.base_ms.max(1e-9) - 1.0) * 100.0
                    );
                }
            }
        }
        for k in &self.new_keys {
            let _ = writeln!(out, "  new      {k:<60} (not in baseline; record to gate)");
        }
        let _ = writeln!(
            out,
            "bench gate: {} baseline rows, {} failures, {} new",
            self.lines.len(),
            self.failures(),
            self.new_keys.len()
        );
        out
    }
}

/// Compare current rows against the baseline. A row regresses when its
/// median exceeds `base * (1 + threshold) + slack_ms`; the additive
/// slack keeps sub-millisecond rows from tripping on scheduler noise.
/// Duplicate keys in `current` keep the last occurrence.
///
/// `host_threads` is the current machine's core count: a b11
/// (parallel-scaling) baseline row recorded with a different
/// `parallelism` can't regress meaningfully here, so an out-of-band
/// median on such a row is [`Verdict::Warned`] instead of failed.
pub fn compare(
    baseline: &[BenchRow],
    current: &[BenchRow],
    threshold: f64,
    slack_ms: f64,
    host_threads: usize,
) -> GateReport {
    let mut report = GateReport::default();
    let find = |key: &str| current.iter().rev().find(|r| r.key == key);
    let foreign_host = |b: &BenchRow| {
        (b.key.starts_with("b11/") || b.key.starts_with("b16/"))
            && b.parallelism.is_some_and(|p| p != host_threads)
    };
    for b in baseline {
        let line = match find(&b.key) {
            None => GateLine {
                key: b.key.clone(),
                base_ms: b.median_ms,
                cur_ms: None,
                verdict: Verdict::Missing,
            },
            Some(c) => GateLine {
                key: b.key.clone(),
                base_ms: b.median_ms,
                cur_ms: Some(c.median_ms),
                verdict: if c.median_ms > b.median_ms * (1.0 + threshold) + slack_ms {
                    if foreign_host(b) {
                        Verdict::Warned
                    } else {
                        Verdict::Regressed
                    }
                } else {
                    Verdict::Ok
                },
            },
        };
        report.lines.push(line);
    }
    for c in current {
        if !baseline.iter().any(|b| b.key == c.key) && !report.new_keys.contains(&c.key) {
            report.new_keys.push(c.key.clone());
        }
    }
    report
}

/// The `host_threads` recorded in a baseline (or bench dump) envelope —
/// the core count of the machine the rows were measured on. `None` for
/// dumps predating the field. `bench_gate` compares this against the
/// running host to decide whether warned (cross-host) verdicts are
/// excusable: when the counts agree, they are not, and the gate runs
/// strict.
pub fn scan_host_threads(json: &str) -> Option<usize> {
    // The envelope is the *outer* object; `field` on the whole text
    // finds the first occurrence, which is the envelope's (rows carry
    // `parallelism`, not `host_threads`).
    field(json, "host_threads").and_then(|v| v.parse().ok())
}

/// Render a baseline file from rows: the raw row objects, one per line,
/// inside a small envelope. Duplicate keys keep the *slowest* occurrence
/// — feed `--record` dumps from several runs and the baseline absorbs
/// the run-to-run noise instead of enshrining one lucky median. Every
/// recorded row carries a `"parallelism"` field (the recording host's
/// core count, injected here when the dump didn't emit one) so a later
/// gate run on a different host can warn instead of fail on
/// scaling-sensitive rows.
pub fn render_baseline(rows: &[BenchRow], host_threads: usize) -> String {
    let mut keep: Vec<&BenchRow> = Vec::new();
    for r in rows {
        if let Some(slot) = keep.iter_mut().find(|k| k.key == r.key) {
            if r.median_ms > slot.median_ms {
                *slot = r;
            }
        } else {
            keep.push(r);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"baseline\",");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"profile\": \"quick\",");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in keep.iter().enumerate() {
        let comma = if i + 1 == keep.len() { "" } else { "," };
        let raw = if r.parallelism.is_some() {
            r.raw.clone()
        } else {
            let body = r.raw.trim_end().trim_end_matches('}');
            format!("{body},\"parallelism\":{host_threads}}}")
        };
        let _ = writeln!(out, "    {raw}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUMP: &str = r#"{
  "bench": "b11_parallel_scaling",
  "host_threads": 4,
  "rows": [
    {"bench":"b11","members":40,"nodes_per_member":500,"selectivity":"~1%","mode":"serial","median_ms":7.2438,"result_size":193},
    {"bench":"b11","members":40,"nodes_per_member":500,"selectivity":"~1%","mode":"par x4","median_ms":3.1000,"result_size":193}
  ]
}"#;

    #[test]
    fn scans_flat_rows_and_keys_them() {
        let rows = scan_rows(DUMP);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "b11/40/500/~1%/serial");
        assert_eq!(rows[1].key, "b11/40/500/~1%/par x4");
        assert!((rows[0].median_ms - 7.2438).abs() < 1e-9);
        assert!(rows[1].raw.starts_with('{') && rows[1].raw.ends_with('}'));
    }

    #[test]
    fn b10_rows_key_on_name() {
        let rows = scan_rows(r#"{"bench":"b10","name":"pike_vm_scan_10k_notes","median_ms":1.25}"#);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key, "b10/pike_vm_scan_10k_notes");
    }

    #[test]
    fn envelope_without_median_is_not_a_row() {
        // The outer `{"bench": ..., "host_threads": ...}` span nests the
        // row objects, so only the innermost flat spans are scanned.
        let rows = scan_rows(DUMP);
        assert!(rows.iter().all(|r| !r.raw.contains("host_threads")));
    }

    fn row(key: &str, ms: f64) -> BenchRow {
        BenchRow {
            key: key.into(),
            median_ms: ms,
            parallelism: None,
            raw: format!("{{\"name\":{key:?},\"median_ms\":{ms:.4}}}"),
        }
    }

    fn row_par(key: &str, ms: f64, par: usize) -> BenchRow {
        BenchRow {
            key: key.into(),
            median_ms: ms,
            parallelism: Some(par),
            raw: format!("{{\"name\":{key:?},\"median_ms\":{ms:.4},\"parallelism\":{par}}}"),
        }
    }

    #[test]
    fn gate_passes_within_band_and_fails_past_it() {
        let base = vec![row("a", 10.0), row("b", 10.0), row("c", 10.0)];
        let cur = vec![row("a", 12.0), row("b", 13.1), row("d", 1.0)];
        let rep = compare(&base, &cur, 0.25, 0.3, 4);
        assert_eq!(rep.lines[0].verdict, Verdict::Ok); // 12.0 <= 12.8
        assert_eq!(rep.lines[1].verdict, Verdict::Regressed); // 13.1 > 12.8
        assert_eq!(rep.lines[2].verdict, Verdict::Missing);
        assert_eq!(rep.failures(), 2);
        assert_eq!(rep.new_keys, vec!["d".to_string()]);
        let text = rep.render(0.25, 0.3);
        assert!(text.contains("REGRESSED") && text.contains("MISSING") && text.contains("new"));
    }

    #[test]
    fn additive_slack_forgives_tiny_rows() {
        let base = vec![row("tiny", 0.010)];
        // 4x slower but only +0.03ms in absolute terms: inside the slack.
        let rep = compare(&base, &[row("tiny", 0.040)], 0.25, 0.3, 4);
        assert_eq!(rep.failures(), 0);
    }

    #[test]
    fn foreign_host_b11_rows_warn_instead_of_fail() {
        // Recorded on a 16-core machine, gated on a 4-core one: the b11
        // scaling row is out of band but warns; the b10 row (same host
        // mismatch irrelevant — not scaling-sensitive) still fails.
        let base = vec![
            row_par("b11/40/500/~1%/par x4", 3.0, 16),
            row_par("b10/pike_vm", 1.0, 16),
        ];
        let cur = vec![row("b11/40/500/~1%/par x4", 9.0), row("b10/pike_vm", 9.0)];
        let rep = compare(&base, &cur, 0.25, 0.3, 4);
        assert_eq!(rep.lines[0].verdict, Verdict::Warned);
        assert_eq!(rep.lines[1].verdict, Verdict::Regressed);
        assert_eq!(rep.failures(), 1, "only the non-b11 regression fails");
        assert!(rep.render(0.25, 0.3).contains("warned"));

        // Same core count: b11 rows gate normally again.
        let rep = compare(&base, &cur, 0.25, 0.3, 16);
        assert_eq!(rep.lines[0].verdict, Verdict::Regressed);
        assert_eq!(rep.failures(), 2);
    }

    #[test]
    fn b16_shard_rows_are_scaling_sensitive_too() {
        let base = vec![row_par("b16/recovery/shards x4", 3.0, 16)];
        let cur = vec![row("b16/recovery/shards x4", 9.0)];
        let rep = compare(&base, &cur, 0.25, 0.3, 4);
        assert_eq!(rep.lines[0].verdict, Verdict::Warned);
        assert_eq!(rep.failures(), 0);
    }

    #[test]
    fn strict_failures_promote_warned_rows() {
        // A baseline carrying rows from a 16-core host, gated on 4
        // cores: lenient counting forgives the warned row, strict
        // counting (what the multi-core lane uses when envelope and
        // host agree) does not.
        let base = vec![row_par("b11/40/500/~1%/par x4", 3.0, 16)];
        let rep = compare(&base, &[row("b11/40/500/~1%/par x4", 9.0)], 0.25, 0.3, 4);
        assert_eq!(rep.failures(), 0);
        assert_eq!(rep.strict_failures(), 1);
    }

    #[test]
    fn envelope_host_threads_scans() {
        assert_eq!(scan_host_threads(DUMP), Some(4));
        assert_eq!(scan_host_threads(r#"{"rows":[]}"#), None);
        let recorded = render_baseline(&[row("a", 1.0)], 8);
        assert_eq!(scan_host_threads(&recorded), Some(8));
    }

    #[test]
    fn recorded_baseline_round_trips_and_keeps_slowest() {
        let rows = vec![row("a", 1.0), row("b", 2.0), row("a", 3.0), row("b", 0.5)];
        let text = render_baseline(&rows, 4);
        let back = scan_rows(&text);
        assert_eq!(back.len(), 2);
        assert!((back.iter().find(|r| r.key == "a").unwrap().median_ms - 3.0).abs() < 1e-9);
        assert!((back.iter().find(|r| r.key == "b").unwrap().median_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recording_stamps_parallelism_per_row() {
        // Rows without the field get the recording host's count; rows
        // that already carry one keep it.
        let rows = vec![row("plain", 1.0), row_par("tagged", 2.0, 8)];
        let text = render_baseline(&rows, 4);
        let back = scan_rows(&text);
        assert_eq!(
            back.iter().find(|r| r.key == "plain").unwrap().parallelism,
            Some(4)
        );
        assert_eq!(
            back.iter().find(|r| r.key == "tagged").unwrap().parallelism,
            Some(8)
        );
    }
}
