//! A fault storm absorbed by the `aqua-service` front end.
//!
//! One `QueryService` fronts a tree store while a failpoint storm
//! strikes the dispatch boundary: transient faults are retried with
//! seeded backoff, repeated failures trip the plan class's circuit
//! breaker, callers behind the open breaker get *degraded* (truncated,
//! flagged) answers instead of errors, and a half-open probe restores
//! full fidelity once the storm passes. Run with:
//!
//! ```text
//! cargo run -p aqua-bench --example service
//! ```

use std::time::Duration;

use aqua_guard::failpoint;
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_service::{
    BreakerConfig, PlanClass, QueryService, Request, RetryPolicy, ServiceConfig,
    SERVICE_DISPATCH_PROBE,
};
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    // A 2k-node tree with a skewed label mix, indexed and cataloged.
    let d = RandomTreeGen::new(11)
        .nodes(2000)
        .label_weights(&[("u", 1), ("x", 15)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::default();
    let _ = Optimizer::new(&cat); // the service plans internally

    let svc = QueryService::new(ServiceConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(5),
            seed: 7,
        },
        breaker: BreakerConfig {
            window: 4,
            failure_threshold: 2,
            probe_after: 2,
        },
        degraded_cap: 3,
        ..ServiceConfig::default()
    });
    let req = Request::new("demo");
    let show = |tag: &str, r: &aqua_service::Response<Vec<aqua_algebra::Tree>>| {
        println!(
            "  {tag:<12} {:?} — {} trees, {} attempt(s), {} retries, truncated: {}",
            r.meta.dispatch,
            r.value.len(),
            r.meta.attempts,
            r.meta.retries,
            r.meta.truncation.truncated,
        );
    };

    println!("== calm seas ==");
    let clean = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .unwrap();
    show("clean", &clean);

    println!("\n== flaky backend: each submission's first 2 attempts fault ==");
    for i in 0..2 {
        failpoint::arm_times(SERVICE_DISPATCH_PROBE, "index shard flapping", 2);
        let r = svc
            .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
            .unwrap();
        show(&format!("retried #{}", i + 1), &r);
    }

    println!("\n== storm: the backend goes down hard ==");
    failpoint::arm(SERVICE_DISPATCH_PROBE, "index shard down");
    for i in 0..2 {
        let err = svc
            .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
            .unwrap_err();
        println!("  failure #{}   {err}", i + 1);
    }
    println!(
        "  breaker({}) is now {:?}",
        PlanClass::TreeSubSelect,
        svc.breaker_state(PlanClass::TreeSubSelect)
    );
    failpoint::reset();

    println!("\n== behind the open breaker: degraded but answering ==");
    let degraded = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .unwrap();
    show("degraded", &degraded);

    println!("\n== half-open probe restores full fidelity ==");
    let probe = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .unwrap();
    show("probe", &probe);
    let after = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .unwrap();
    show("recovered", &after);
    println!(
        "  breaker({}) is back to {:?}",
        PlanClass::TreeSubSelect,
        svc.breaker_state(PlanClass::TreeSubSelect)
    );
    for ev in &probe.explain.service_events {
        println!("  explain: {ev}");
    }

    println!("\n== the service's own ledger ==");
    let snap = svc.metrics_snapshot();
    println!(
        "  admitted {}  shed {}  retried {}  tripped {}  degraded {}",
        snap.svc_admitted, snap.svc_shed, snap.svc_retried, snap.svc_tripped, snap.svc_degraded
    );
    assert_eq!(after.value.len(), clean.value.len(), "fidelity restored");
}
