//! Bounded, cancellable, fault-tolerant execution — the robustness
//! layer end to end: a step budget stopping a pattern scan with
//! partial progress, a pre-cancelled token, and an injected index
//! fault that degrades an indexed plan to the naive scan with the
//! fallback recorded in EXPLAIN.

use aqua_algebra::tree::split;
use aqua_guard::{failpoint, Budget, CancelToken, ExecGuard, GuardError};
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Explain, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    let d = RandomTreeGen::new(8)
        .nodes(5000)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate();
    let env = PredEnv::with_default_attr("label");
    let cp = parse_tree_pattern("?(?* u ?*)", &env)
        .expect("pattern parses")
        .compile(d.class, d.store.class(d.class))
        .expect("pattern compiles");
    let cfg = MatchConfig::default();

    // ── 1. a step budget turns a runaway query into an answer ───────
    let guard = ExecGuard::new(Budget::unlimited().with_steps(2_000));
    match split::split_pieces_guarded(&d.store, &d.tree, &cp, &cfg, Some(&guard)) {
        Ok(outcome) => println!("finished: {} matches", outcome.pieces.len()),
        Err(e) => match e.as_guard() {
            Some(GuardError::BudgetExceeded {
                limit, progress, ..
            }) => println!("budget of {limit} steps exceeded — stopped after {progress}"),
            _ => panic!("unexpected error: {e}"),
        },
    }

    // ── 2. a shared token cancels from outside ──────────────────────
    let token = CancelToken::new();
    token.cancel(); // e.g. from a ctrl-C handler on another thread
    let guard = ExecGuard::cancellable(token);
    match split::split_pieces_guarded(&d.store, &d.tree, &cp, &cfg, Some(&guard)) {
        Err(e) if matches!(e.as_guard(), Some(GuardError::Cancelled { .. })) => {
            println!("cancelled: {}", e)
        }
        other => panic!("expected cancellation, got {other:?}"),
    }

    // ── 3. an injected index fault degrades the plan, visibly ───────
    let pattern = parse_tree_pattern("u(?*)", &env).expect("pattern parses");
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);
    let (plan, planned) = opt
        .plan_tree_sub_select(&pattern, d.tree.len())
        .expect("planning succeeds");
    println!("\nplanner chose: indexed = {}", plan.is_indexed());
    println!("{planned}");

    let _fault = failpoint::scoped(aqua_store::TREE_INDEX_PROBE, "index node lost");
    let mut explain = Explain::default();
    let results = plan
        .execute_guarded(
            &cat,
            &d.tree,
            &MatchConfig::first_per_root(),
            None,
            &mut explain,
        )
        .expect("fault degrades, never fails");
    println!(
        "\nindex probe faulted at runtime; {} results via fallback; explain records:",
        results.len()
    );
    println!("{explain}");
}
