//! Emit the deterministic split-certificate fixture that CI smokes
//! through the independent `aqua-check` binary.
//!
//! The workload is fully seeded, so the emitted text is a pure function
//! of the code: CI regenerates it and diffs against the committed copy
//! before checking it, which catches accidental drift in either the
//! canonical serialization or the hash schema. Regenerate with:
//!
//! ```text
//! cargo run -p aqua-bench --example cert_fixture > crates/check/fixtures/split.cert
//! ```

use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_store::SplitCertificate;
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    let d = RandomTreeGen::new(5)
        .nodes(64)
        .label_weights(&[("d", 1), ("x", 5)])
        .generate();
    let cp = parse_tree_pattern("d(!?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let cfg = MatchConfig::first_per_root();
    let root = aqua_store::tree_root(&d.store, &d.tree);
    let pieces = aqua_algebra::tree::split::split_pieces(&d.store, &d.tree, &cp, &cfg)
        .expect("seeded split succeeds");
    let p = pieces
        .first()
        .expect("seeded workload yields at least one decomposition");
    let cert = SplitCertificate::emit(&d.store, "tree:fixture", root, p);
    print!("{}", cert.to_text());
}
