//! A rewrite-based query optimizer built *on* the tree algebra — the §5
//! example: "we can specify compile time optimizations on T using our
//! tree operators. This suggests that our tree query language would be
//! useful in constructing a rewrite based optimizer."
//!
//! The rule applied is the paper's:
//!     select(R, and(p1, p2))  ≡  select(select(R, p1), p2)
//! realized as `split(select(!? and), f)` where `f` rebuilds the site
//! and reattaches the cut pieces through their concatenation points.
//!
//! Run with: `cargo run --example query_rewriter`

use aqua_algebra::tree::{display, split};
use aqua_algebra::{Tree, TreeBuilder};
use aqua_object::{AttrId, ObjectStore, Value};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_ast::CompiledTreePattern;
use aqua_pattern::tree_match::MatchConfig;
use aqua_workload::ParseTreeGen;

fn render(store: &ObjectStore, t: &Tree) -> String {
    display::render(t, &|oid| match store.attr(oid, AttrId(0)) {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    })
}

/// Apply `select(R, and(p1,p2)) → select(select(R,p1), p2)` once.
/// Returns the rewritten tree, or `None` when no site remains.
fn rewrite_once(store: &mut ObjectStore, tree: &Tree, site: &CompiledTreePattern) -> Option<Tree> {
    let pieces = split::split_pieces(store, tree, site, &MatchConfig::first_per_root()).ok()?;
    let p = pieces.into_iter().next()?;
    // z = [R, p1, p2]; the update function f of §5 builds
    // x ∘_α select(select(@R, @p1), @p2) ∘ z.
    assert_eq!(p.descendants.len(), 3, "site shape is select(R and(p1 p2))");
    let sel_inner = store
        .insert_named("PTNode", &[("op", Value::str("select"))])
        .expect("PTNode class registered");
    let sel_outer = store
        .insert_named("PTNode", &[("op", Value::str("select"))])
        .expect("PTNode class registered");
    let mut b = TreeBuilder::new();
    let h_r = b.hole_node(p.cut_labels[0].clone(), vec![]);
    let h_p1 = b.hole_node(p.cut_labels[1].clone(), vec![]);
    let inner = b.node(sel_inner, vec![h_r, h_p1]);
    let h_p2 = b.hole_node(p.cut_labels[2].clone(), vec![]);
    let outer = b.node(sel_outer, vec![inner, h_p2]);
    let replacement = b.finish(outer).expect("replacement is well-formed");
    Some(p.reassemble_with(&replacement))
}

fn main() {
    // ── The exact Figure-5 site first ───────────────────────────────
    let fig5 = ParseTreeGen::fig5_tree();
    let env = PredEnv::with_default_attr("op");
    let site = parse_tree_pattern("select(!? and)", &env)
        .expect("pattern parses")
        .compile(fig5.class, fig5.store.class(fig5.class))
        .expect("pattern compiles");

    let mut store = fig5.store.clone();
    println!("before: {}", render(&store, &fig5.tree));
    let rewritten = rewrite_once(&mut store, &fig5.tree, &site).expect("one site");
    println!("after:  {}", render(&store, &rewritten));

    // ── Then a realistic parse tree with several sites ──────────────
    let d = ParseTreeGen::new(7)
        .operators(30)
        .rewrite_sites(4)
        .generate();
    let mut store = d.store.clone();
    let mut tree = d.tree.clone();
    println!(
        "\nlarger query ({} operators, {} sites):",
        tree.len(),
        d.planted_sites
    );
    println!("before: {}", render(&store, &tree));
    let mut rounds = 0;
    while let Some(next) = rewrite_once(&mut store, &tree, &site) {
        tree = next;
        rounds += 1;
    }
    println!("after {rounds} rewrites:");
    println!("        {}", render(&store, &tree));
    assert_eq!(rounds, d.planted_sites);
    println!(
        "\nall {} select-over-and sites rewritten into cascades.",
        rounds
    );
}
