//! Quickstart: the paper's §4 family-tree example, end to end.
//!
//! Builds the family tree of Figure 3, then runs:
//!   1. `select(citizen = "USA")` — stable filtering (Figure 3's text),
//!   2. `split(Brazil(!?* USA !?*), ⟨x,y,z⟩)` — Figure 4's three pieces,
//!   3. reassembly — the split round-trip,
//!   4. the same `sub_select` through the optimizer, with EXPLAIN output.
//!
//! Run with: `cargo run --example quickstart`

use aqua_algebra::tree::{display, ops, split};
use aqua_algebra::Tree;
use aqua_object::{AttrId, ObjectStore, Value};
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::FamilyGen;

fn render(store: &ObjectStore, t: &Tree) -> String {
    display::render(t, &|oid| match store.attr(oid, AttrId(0)) {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    })
}

fn main() {
    // ── The family tree of Figure 3 ─────────────────────────────────
    let d = FamilyGen::paper_tree();
    println!("family tree T = {}", render(&d.store, &d.tree));

    // ── select: stable filtering ────────────────────────────────────
    let usa = PredExpr::eq("citizen", "USA")
        .compile(d.class, d.store.class(d.class))
        .expect("predicate compiles against Person");
    let forest = ops::select(&d.store, &d.tree, &usa);
    println!("\nselect(citizen = \"USA\")(T) — a forest, ancestry compressed:");
    for t in &forest {
        println!("  {}", render(&d.store, t));
    }

    // ── split: Figure 4's three pieces ──────────────────────────────
    let mut env = PredEnv::new();
    env.define("Brazil", PredExpr::eq("citizen", "Brazil"));
    env.define("USA", PredExpr::eq("citizen", "USA"));
    let pattern = parse_tree_pattern("Brazil(!?* USA !?*)", &env).expect("pattern parses");
    let compiled = pattern
        .compile(d.class, d.store.class(d.class))
        .expect("pattern compiles");
    println!("\nsplit(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T):");
    let pieces = split::split_pieces(&d.store, &d.tree, &compiled, &MatchConfig::default())
        .expect("split runs unguarded");
    for (i, p) in pieces.iter().enumerate() {
        println!("  match #{}:", i + 1);
        println!(
            "    x (ancestors + context) = {}",
            render(&d.store, &p.context)
        );
        println!(
            "    y (match)               = {}",
            render(&d.store, &p.matched)
        );
        let descs: Vec<String> = p.descendants.iter().map(|t| render(&d.store, t)).collect();
        println!("    z (descendants)         = [{}]", descs.join(", "));
        let rt = p.reassemble();
        println!(
            "    x o_a y o_ai z == T?    {}",
            if rt.structural_eq(&d.tree) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // ── the same query, planned by the optimizer ────────────────────
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(1));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(1));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);
    let (plan, explain) = opt
        .plan_tree_sub_select(&pattern, d.tree.len())
        .expect("planning succeeds");
    println!("\noptimizer EXPLAIN for sub_select(Brazil(!?* USA !?*)):\n{explain}");
    let results = plan
        .execute(&cat, &d.tree, &MatchConfig::default())
        .expect("plan executes");
    println!("results:");
    for r in &results {
        println!("  {}", render(&d.store, r));
    }
}
