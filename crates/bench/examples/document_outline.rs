//! Document querying: the multimedia motivation of §1 — "a document can
//! be viewed as a tree of document components".
//!
//! Generates a nested document, then:
//!   1. extracts the section outline with stable `select`,
//!   2. finds figure-bearing sections with `sub_select` + pruning,
//!   3. pairs every figure with its enclosing path using `all_anc`,
//!   4. computes per-section word counts with subtree navigation and a
//!      fold.
//!
//! Run with: `cargo run --example document_outline`

use aqua_algebra::tree::{display, ops};
use aqua_algebra::Tree;
use aqua_object::{AttrId, ObjectStore, Value};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_workload::DocumentGen;

fn title(store: &ObjectStore, t: &Tree, n: aqua_algebra::NodeId) -> String {
    t.oid(n)
        .map(|o| match store.attr(o, AttrId(1)) {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })
        .unwrap_or_else(|| "@".into())
}

fn main() {
    let d = DocumentGen::new(17).sections(4).depth(3).generate();
    println!(
        "document: {} nodes, height {}",
        d.tree.len(),
        d.tree.height()
    );

    // ── 1. outline: only sections, nesting preserved ────────────────
    let section = PredExpr::eq("kind", "section")
        .compile(d.class, d.store.class(d.class))
        .expect("predicate compiles");
    let outline = ops::select(&d.store, &d.tree, &section);
    println!("\noutline (stable select on kind = \"section\"):");
    for top in &outline {
        for n in top.iter_preorder() {
            let indent = "  ".repeat(top.depth(n) + 1);
            println!("{indent}{}", title(&d.store, top, n));
        }
    }

    // ── 2. figure-bearing sections ──────────────────────────────────
    let env = PredEnv::with_default_attr("kind");
    let cp = parse_tree_pattern("section(!?* figure !?*)", &env)
        .expect("pattern parses")
        .compile(d.class, d.store.class(d.class))
        .expect("pattern compiles");
    let hits = ops::sub_select(&d.store, &d.tree, &cp, &MatchConfig::first_per_root())
        .expect("sub_select runs unguarded");
    println!("\nsections directly containing a figure:");
    for h in &hits {
        println!(
            "  {}",
            display::render(h, &|oid| match d.store.attr(oid, AttrId(1)) {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            })
        );
    }

    // ── 3. figures with their enclosing path ────────────────────────
    let fig = parse_tree_pattern("figure", &env)
        .expect("pattern parses")
        .compile(d.class, d.store.class(d.class))
        .expect("pattern compiles");
    let paths = ops::all_anc(
        &d.store,
        &d.tree,
        &fig,
        &MatchConfig::first_per_root(),
        |ctx, m| {
            // The figure's path = titles of the hole's ancestors in ctx.
            let hole = ctx
                .iter_preorder()
                .find(|&n| ctx.payload(n).hole().is_some())
                .expect("context contains the α hole");
            let mut path: Vec<String> = ctx
                .ancestors(hole)
                .into_iter()
                .rev()
                .map(|a| title(&d.store, ctx, a))
                .collect();
            path.push(title(&d.store, m, m.root()));
            path.join(" / ")
        },
    )
    .expect("all_anc runs unguarded");
    println!("\nfigure locations (via all_anc):");
    for p in &paths {
        println!("  {p}");
    }

    // ── 4. word counts per top-level section ────────────────────────
    println!("\nwords per top-level section (subtree fold):");
    for &sec in d.tree.children(d.tree.root()) {
        let words: i64 = d
            .tree
            .iter_preorder_from(sec)
            .filter_map(|n| d.tree.oid(n))
            .map(|o| match d.store.attr(o, AttrId(2)) {
                Value::Int(w) => *w,
                _ => 0,
            })
            .sum();
        println!("  {:<8} {words}", title(&d.store, &d.tree, sec));
    }
}
