//! RNA secondary structure search — the molecular-biology motivation
//! (§1 cites RNA-sequence applications; §7.1/§8 discuss approximate
//! tree matching à la Shapiro–Zhang [28] and note that distance metrics
//! "are easily accommodated in our formalisms").
//!
//! RNA secondary structure is conventionally a tree of structural
//! elements (stems, loops, bulges, hairpins). This example:
//!   1. builds a structure tree,
//!   2. finds exact motifs with `sub_select` (the algebra's patterns),
//!   3. finds *near* motifs with `approx_sub_select` (Zhang–Shasha
//!      edit distance), ranking by distance.
//!
//! Run with: `cargo run --example rna_motifs`

use aqua_algebra::tree::distance::{approx_sub_select, EditCosts};
use aqua_algebra::tree::{display, ops};
use aqua_algebra::{NodeId, Payload, Tree, TreeBuilder};
use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, ClassId, ObjectStore, Value};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;

struct Rna {
    store: ObjectStore,
    class: ClassId,
}

impl Rna {
    fn new() -> Self {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new(
                    "RnaElem",
                    vec![
                        AttrDef::stored("kind", AttrType::Str),
                        AttrDef::stored("len", AttrType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        Rna { store, class }
    }

    fn elem(&mut self, kind: &str, len: i64) -> aqua_object::Oid {
        self.store
            .insert_named(
                "RnaElem",
                &[("kind", Value::str(kind)), ("len", Value::Int(len))],
            )
            .unwrap()
    }

    /// Structure spec: `stem(loop(hairpin) bulge stem(hairpin))` with
    /// one-letter codes: s=stem, l=loop, b=bulge, h=hairpin, m=multiloop.
    fn structure(&mut self, spec: &str) -> Tree {
        let kind = |c: char| match c {
            's' => "stem",
            'l' => "loop",
            'b' => "bulge",
            'h' => "hairpin",
            'm' => "multiloop",
            other => panic!("unknown element {other}"),
        };
        let chars: Vec<char> = spec.chars().filter(|c| !c.is_whitespace()).collect();
        let mut b = TreeBuilder::new();
        let mut pos = 0usize;
        fn parse(
            rna: &mut Rna,
            chars: &[char],
            pos: &mut usize,
            b: &mut TreeBuilder,
            kind: &impl Fn(char) -> &'static str,
        ) -> NodeId {
            let c = chars[*pos];
            *pos += 1;
            let mut kids = Vec::new();
            if *pos < chars.len() && chars[*pos] == '(' {
                *pos += 1;
                while chars[*pos] != ')' {
                    kids.push(parse(rna, chars, pos, b, kind));
                }
                *pos += 1;
            }
            let oid = rna.elem(kind(c), (*pos % 7 + 3) as i64);
            b.node(oid, kids)
        }
        let root = parse(self, &chars, &mut pos, &mut b, &kind);
        b.finish(root).unwrap()
    }

    fn render(&self, t: &Tree) -> String {
        display::render(t, &|oid| match self.store.attr(oid, AttrId(0)) {
            Value::Str(s) => s.chars().next().unwrap().to_string(),
            other => other.to_string(),
        })
    }
}

fn main() {
    let mut rna = Rna::new();
    // A molecule with several hairpin-loop motifs, one slightly mutated.
    let molecule = rna.structure("m(s(l(h)) s(b(l(h))) s(l(b)) s(l(h)) b)");
    println!("molecule: {}", rna.render(&molecule));

    // ── exact motif: a stem whose loop closes with a hairpin ─────────
    let env = PredEnv::with_default_attr("kind");
    let motif_pat = parse_tree_pattern("stem(loop(hairpin))", &env)
        .unwrap()
        .compile(rna.class, rna.store.class(rna.class))
        .unwrap();
    let exact = ops::sub_select(&rna.store, &molecule, &motif_pat, &MatchConfig::default())
        .expect("sub_select runs unguarded");
    println!("\nexact stem(loop(hairpin)) motifs: {}", exact.len());
    for m in &exact {
        println!("  {}", rna.render(m));
    }

    // ── approximate motifs within edit distance 1 and 2 ──────────────
    let target = rna.structure("s(l(h))");
    let store = &rna.store;
    let costs = EditCosts {
        insert: 1,
        delete: 1,
        rename: move |a: &Payload, b: &Payload| match (a, b) {
            (Payload::Cell(x), Payload::Cell(y)) => u64::from(
                store.attr(x.contents(), AttrId(0)) != store.attr(y.contents(), AttrId(0)),
            ),
            (Payload::Hole(x), Payload::Hole(y)) => u64::from(x != y),
            _ => 1,
        },
    };
    for k in [1u64, 2] {
        let near = approx_sub_select(&molecule, &target, k, &costs);
        println!("\nsubtrees within edit distance {k} of s(l(h)):");
        for m in &near {
            let sub = aqua_algebra::tree::concat::subtree(&molecule, m.root);
            println!("  d={}  {}", m.distance, rna.render(&sub));
        }
    }

    println!(
        "\nthe d=1 hits are the mutated motifs (a bulge inserted, or the \
         hairpin replaced) — the \"almost satisfy pattern P\" queries of §7.1."
    );
}
