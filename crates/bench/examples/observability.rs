//! The §6 decomposition example, instrumented: plan `sub_select` over a
//! skewed forest-sized tree, run it under a metrics-armed guard, and
//! print the `Explain` with its `MetricsSnapshot` — the predicted cost
//! next to what execution actually did (visits, prunes, pike-VM steps,
//! pattern-cache traffic).
//!
//! Run with: `cargo run --example observability`

use aqua_guard::{Budget, ExecGuard, Metrics};
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PatternCache;
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    // A 4000-node tree where the pattern root label `d` is rare (~2%):
    // exactly the shape where §6's decomposition — probe the index for
    // the cheap sub-pattern, full-match only the candidates — wins.
    let d = RandomTreeGen::new(41)
        .nodes(4000)
        .label_weights(&[("d", 1), ("a", 9), ("x", 40)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, aqua_object::AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, aqua_object::AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("d(?* a ?*)", &env).expect("pattern parses");

    // The pattern cache mirrors its hit/miss traffic into the same sink
    // the guard carries, so one snapshot tells the whole story.
    let sink = Metrics::new();
    let cache = PatternCache::new();
    assert!(cache.attach_metrics(sink.clone()));
    let compiled = cache
        .tree(&pattern, d.class, d.store.class(d.class))
        .expect("pattern compiles");
    // A second lookup — the planner re-resolving the same pattern — hits.
    let again = cache
        .tree(&pattern, d.class, d.store.class(d.class))
        .expect("cached");
    assert!(std::sync::Arc::ptr_eq(&compiled, &again));

    let opt = Optimizer::new(&cat);
    let (plan, mut explain) = opt
        .plan_tree_sub_select(&pattern, d.tree.len())
        .expect("planning succeeds");

    let guard = ExecGuard::new(Budget::unlimited()).with_metrics(sink);
    let got = plan
        .execute_guarded(
            &cat,
            &d.tree,
            &MatchConfig::first_per_root(),
            Some(&guard),
            &mut explain,
        )
        .expect("execution succeeds");

    println!("sub_select d(?* a ?*) over {} nodes:", d.tree.len());
    println!("{explain}");
    println!("\nresults: {} subtrees", got.len());

    let snap = explain.metrics.as_ref().expect("guarded runs carry one");
    if let Some(predicted) = explain.predicted_cost {
        println!(
            "predicted {predicted:.0} cost units vs {} observed node visits",
            snap.match_visits
        );
    }
    println!("\nMetricsSnapshot JSON:\n{}", snap.to_json());
}
