//! Kill-and-recover, end to end: storm a durable store, checkpoint
//! mid-storm, tear the WAL tail like a power cut, then recover through
//! the query service — printing the `RecoveryReport`, the stamped
//! metrics, and an index-vs-scan answer check at the recovered epoch.
//!
//! Run with: `cargo run --example recovery`

use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::PredExpr;
use aqua_service::QueryService;
use aqua_store::{ColumnStats, DurableConfig, DurableStore};
use aqua_workload::storm::{MutationStorm, BOOT_OPS, STORM_TREE};

fn main() {
    let dir = std::env::temp_dir().join(format!("aqua-recovery-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DurableConfig {
        segment_bytes: 4 * 1024, // small segments so the storm rotates a few
        checkpoint_every: 0,     // we'll checkpoint by hand mid-storm
        prune: true,
        authenticate: true, // every frame binds the post-apply store root
    };

    // 1. Storm the store: bootstrap (class, extents, all four index
    //    registrations), then a few hundred seeded mutations with one
    //    checkpoint in the middle.
    let storm = MutationStorm::new(7);
    let (mut store, report) = DurableStore::open(&dir, cfg.clone()).expect("fresh open");
    assert!(report.clean());
    storm.apply(&mut store, 0..BOOT_OPS + 150).expect("storm");
    let snap = store.checkpoint().expect("checkpoint");
    println!("checkpoint: {}", snap.display());
    storm
        .apply(&mut store, BOOT_OPS + 150..BOOT_OPS + 300)
        .expect("storm after checkpoint");
    let applied = store.epoch();
    println!("applied {applied} durable mutations, then...\n");

    // 2. The power cut: drop the store and tear the newest WAL segment
    //    mid-frame.
    drop(store);
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    let tail = segments.last().expect("the storm wrote segments");
    let len = std::fs::metadata(tail).expect("metadata").len();
    let torn = len - len / 3;
    std::fs::OpenOptions::new()
        .write(true)
        .open(tail)
        .expect("open tail")
        .set_len(torn)
        .expect("tear");
    println!(
        "kill -9: tore {} from {len} to {torn} bytes\n",
        tail.display()
    );

    // 3. Recovery, through service startup: snapshot + WAL tail replay,
    //    torn frame truncated, indexes rebuilt, report stamped into the
    //    service metrics.
    let svc = QueryService::default();
    let store = svc
        .open_durable(&dir, cfg)
        .expect("recovery is typed and survivable");
    let report = svc.recovery_report().expect("report retained");
    println!("{report}");
    println!("\nreport JSON: {}\n", report.to_json());
    let survived = report.next_lsn - 1;
    assert!(survived < applied, "the torn tail cost some mutations");
    assert_eq!(store.epoch(), survived);

    // 3b. Self-verification verdicts: every replayed frame's bound root
    //     matched the recomputed history, and each extent's final root
    //     was recomputed and certified in the report — no reference run
    //     needed to trust the surviving prefix.
    println!(
        "self-verification: {} frame roots verified during replay",
        report.roots_verified
    );
    for (extent, root) in &report.extent_roots {
        println!("  {extent}: root {root} ✓ (recomputed == tracked)");
    }
    if let Some(tree) = store.tree(STORM_TREE) {
        let fresh = aqua_store::tree_root(store.store(), tree);
        assert_eq!(
            store.tree_extent_root(STORM_TREE),
            Some(fresh),
            "live recomputation agrees with the tracked root"
        );
        println!(
            "  store root (all extents folded): {}",
            store.store_root().to_hex()
        );
    }

    // 4. Query at the recovered epoch: the rebuilt attr index answers
    //    exactly like a bare scan, through the staleness gate.
    let class = store.store().class_id("Note").expect("class recovered");
    let stats = ColumnStats::build(store.store(), class, AttrId(0));
    let mut indexed = Catalog::new(store.store(), class);
    indexed.add_stats(&stats);
    indexed.set_epoch(store.epoch());
    if let Some(idx) = store.indexes().attr_index(class, AttrId(0)) {
        indexed.add_attr_index(idx);
    }
    let mut bare = Catalog::new(store.store(), class);
    bare.add_stats(&stats);

    let pred = PredExpr::eq("pitch", "E");
    let (plan, _) = Optimizer::new(&indexed)
        .plan_set_select(&pred)
        .expect("plan");
    let fast = plan.execute(&indexed).expect("indexed select");
    let (plan, _) = Optimizer::new(&bare).plan_set_select(&pred).expect("plan");
    let scan = plan.execute(&bare).expect("scan select");
    assert_eq!(fast, scan, "index-vs-scan parity after recovery");
    println!(
        "select(pitch == \"E\") over {} recovered objects: {} rows, index == scan ✓",
        store.store().len(),
        fast.len()
    );
    println!(
        "tree \"{STORM_TREE}\" recovered with {} nodes; indices rebuilt: {}",
        store.tree(STORM_TREE).map(|t| t.len()).unwrap_or(0),
        report.indices_rebuilt
    );

    let m = svc.metrics_snapshot();
    println!(
        "service metrics: recoveries={} frames_replayed={} bytes_truncated={} roots_verified={}",
        m.recoveries,
        m.recovery_frames_replayed,
        m.recovery_bytes_truncated,
        m.integrity_roots_verified
    );

    // 5. The sharded story: a cross-shard transaction killed *after*
    //    the commit decision was durable but before the second
    //    participant applied. Service startup must roll it forward —
    //    the ShardedRecoveryReport prints the per-shard replay plus
    //    what transaction resolution did.
    let sdir =
        std::env::temp_dir().join(format!("aqua-recovery-example-sh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sdir);
    let scfg = aqua_store::ShardedConfig::with_shards(4);
    {
        let (mut ss, _) = aqua_store::ShardedStore::open(&sdir, scfg.clone()).expect("fresh open");
        let sstorm = aqua_workload::ShardStorm::new(7, 4);
        sstorm.bootstrap(&mut ss).expect("bootstrap");
        sstorm.grow(&mut ss, 8).expect("grow");
        ss.sync().expect("sync");

        let mut txn = ss.begin();
        for k in 0..4 {
            let list = sstorm.list_path(k);
            let class = ss
                .shard(ss.shard_of(&list))
                .store()
                .class_id("Note")
                .expect("bootstrapped");
            let (_, oid) = txn.insert(
                &list,
                class,
                vec![aqua_object::Value::str("X"), aqua_object::Value::Int(1)],
            );
            txn.list_push(&list, oid);
        }
        let second = txn.participants()[1];
        aqua_guard::failpoint::arm_times(
            &aqua_store::participant_probe(aqua_store::TXN_OUTCOME_CRASH, second),
            "kill -9 mid-outcome",
            1,
        );
        let err = ss.commit(&txn).expect_err("the injected kill fires");
        println!("\ncross-shard commit killed mid-outcome: {err}");
    } // dropped with one participant applied, the rest still parked

    let svc2 = QueryService::default();
    let _ss = svc2
        .open_sharded(&sdir, scfg)
        .expect("transaction resolution is typed and survivable");
    let srep = svc2.sharded_recovery_report().expect("report retained");
    println!("\n{srep}");
    assert_eq!(srep.txns_committed, 1, "the decided txn rolled forward");
    let sm = svc2.metrics_snapshot();
    println!(
        "service metrics: shard_recoveries={} txn_committed={} txn_presumed_abort={}",
        sm.shard_recoveries, sm.txn_committed, sm.txn_presumed_abort
    );

    let _ = std::fs::remove_dir_all(&sdir);
    let _ = std::fs::remove_dir_all(&dir);
}
