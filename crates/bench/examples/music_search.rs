//! Music search: the §6 list-algebra example at database scale.
//!
//! Generates a "music database" of songs (lists of notes), plants a
//! melody, then runs:
//!   1. `sub_select([A??F])` — find every phrase matching the melody,
//!   2. `all_anc` / `all_desc` — each phrase with its context,
//!   3. the positional-index plan vs the full scan, with EXPLAIN.
//!
//! Run with: `cargo run --example music_search`

use aqua_algebra::list::ops as lops;
use aqua_algebra::List;
use aqua_object::{AttrId, ObjectStore, Value};
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::list::{ListPattern, MatchMode};
use aqua_pattern::parser::{parse_list_pattern, PredEnv};
use aqua_store::{ColumnStats, ListPosIndex};
use aqua_workload::SongGen;

fn pitches(store: &ObjectStore, l: &List) -> String {
    l.iter_objects(store)
        .map(|(_, o)| match o.get(AttrId(0)) {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })
        .collect()
}

fn main() {
    // A 2 000-note song with the melody A?F planted a few times; the
    // pattern's wildcards make chance matches likely too.
    let melody = vec!["A", "D", "E", "F"];
    let d = SongGen::new(2026).notes(2000).plant(melody, 4).generate();
    println!(
        "song: {} notes; melody planted at {:?}",
        d.song.len(),
        d.planted
    );

    let env = PredEnv::with_default_attr("pitch");
    let (re, s, e) = parse_list_pattern("[A ? ? F]", &env).expect("pattern parses");
    let pattern = ListPattern::compile(re.clone(), s, e, d.class, d.store.class(d.class))
        .expect("pattern compiles");

    // ── sub_select: all phrases ─────────────────────────────────────
    let phrases = lops::sub_select(&d.store, &d.song, &pattern, MatchMode::All);
    println!("\nsub_select([A ? ? F]) found {} phrases:", phrases.len());
    for (i, p) in phrases.iter().take(8).enumerate() {
        println!("  #{:<2} {}", i + 1, pitches(&d.store, p));
    }
    if phrases.len() > 8 {
        println!("  … and {} more", phrases.len() - 8);
    }

    // ── all_anc: phrase + everything before it ──────────────────────
    let with_context = lops::all_anc(&d.store, &d.song, &pattern, MatchMode::All, |x, y| {
        (x.len() - 1, pitches(&d.store, y)) // x ends in the α hole
    });
    println!("\nall_anc pairs (prefix length, phrase):");
    for (plen, phrase) in with_context.iter().take(5) {
        println!("  {plen:>5} notes before {phrase}");
    }

    // ── all_desc: phrase + everything after it ──────────────────────
    let with_suffix = lops::all_desc(&d.store, &d.song, &pattern, MatchMode::All, |y, z| {
        (pitches(&d.store, y), z.iter().map(List::len).sum::<usize>())
    });
    if let Some((phrase, after)) = with_suffix.first() {
        println!("\nfirst phrase {phrase} is followed by {after} notes");
    }

    // ── optimizer: positional index probe ───────────────────────────
    let idx = ListPosIndex::build(&d.store, &d.song, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_list_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);
    let (plan, explain) = opt
        .plan_list_sub_select(&re, s, e, d.song.len())
        .expect("planning succeeds");
    println!("\noptimizer EXPLAIN:\n{explain}");
    let fast = plan.execute(&cat, &d.song).expect("plan executes");
    println!(
        "indexed plan found {} matches — {} the naive result",
        fast.len(),
        if fast.len() == phrases.len() {
            "equal to"
        } else {
            "DIFFERENT FROM"
        }
    );
}
