//! B9 (extension) — approximate tree matching cost (§7.1/§8).
//!
//! The paper claims distance-metric queries "are easily accommodated";
//! this bench quantifies what `approx_sub_select` (Zhang–Shasha per
//! candidate subtree, with the size-difference lower bound as a filter)
//! costs, and how much the bound prunes.
//!
//! Sweep: tree size × distance bound k.
//! Columns: query ms, candidates surviving the size bound, hits.

use aqua_algebra::tree::distance::{approx_sub_select, EditCosts};
use aqua_algebra::Payload;
use aqua_bench::timing::{ms, time_median};
use aqua_bench::Table;
use aqua_object::AttrId;
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    let mut table = Table::new(&["nodes", "k", "query_ms", "size_bound_pass", "hits"]);
    for &nodes in &[500usize, 2_000, 8_000] {
        let d = RandomTreeGen::new(31)
            .nodes(nodes)
            .max_arity(3)
            .label_weights(&[("a", 3), ("b", 2), ("c", 1)])
            .generate();
        // Target: a small actual subtree of the data, so exact hits
        // exist; walk down until the subtree is modest (ZS is quadratic
        // in target size).
        let mut target_root = d.tree.children(d.tree.root())[0];
        while d.tree.iter_preorder_from(target_root).count() > 12 {
            target_root = d.tree.children(target_root)[0];
        }
        let target = aqua_algebra::tree::concat::subtree(&d.tree, target_root);
        let store = &d.store;
        let costs = EditCosts {
            insert: 1,
            delete: 1,
            rename: move |a: &Payload, b: &Payload| match (a, b) {
                (Payload::Cell(x), Payload::Cell(y)) => u64::from(
                    store.attr(x.contents(), AttrId(0)) != store.attr(y.contents(), AttrId(0)),
                ),
                _ => 1,
            },
        };
        let tsize = target.len() as i64;
        for &k in &[0u64, 2, 4] {
            let pass = d
                .tree
                .iter_preorder()
                .filter(|&n| {
                    let s = d.tree.iter_preorder_from(n).count() as i64;
                    (s - tsize).unsigned_abs() <= k
                })
                .count();
            let t = time_median(3, || approx_sub_select(&d.tree, &target, k, &costs).len());
            table.row(vec![
                nodes.to_string(),
                k.to_string(),
                ms(t),
                pass.to_string(),
                t.result_size.to_string(),
            ]);
        }
    }
    table.print("B9 (extension): approx_sub_select — Zhang–Shasha with size-bound pruning");
}
