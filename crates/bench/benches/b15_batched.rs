//! B15 — the flat-memory engine's batched hot paths: columnar interval
//! scans over [`TreeCols`](aqua_algebra::TreeCols), batched predicate
//! throughput through [`BatchProgram`], and chunked parallel scaling of
//! the pool's run-based work distribution.
//!
//! Three families of rows:
//!
//! * `treecols_rebuild_50k` / `columnar_interval_scan_50k` — the cost
//!   of building the structure-of-arrays view, and the payoff: a
//!   containment count that reads two contiguous `u32` columns instead
//!   of chasing `Node.children` vectors.
//! * `batched_pred_throughput_1m` — one million alphabet-predicate
//!   evaluations through the fused conjunction pass (§3.1's constant-
//!   time guarantee, amortized to a handful of ns per element).
//! * `chunked_par_sub_select` rows (`mode` serial / `par xN`) — the
//!   work-stealing pool handing workers contiguous member runs; the
//!   parallel answer is asserted byte-identical to serial.
//!
//! `AQUA_BENCH_JSON=<path>` dumps flat rows for `bench_gate`;
//! `AQUA_BENCH_QUICK` shrinks iterations for CI.

use std::fmt::Write as _;
use std::hint::black_box;

use aqua_algebra::bulk::ListSet;
use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_pattern::list::{MatchMode, Sym};
use aqua_pattern::{BatchProgram, BitRow, CmpOp, PredExpr};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;

struct Out {
    table: Table,
    rows: Vec<(String, String, Timed)>,
    iters: usize,
}

impl Out {
    fn new() -> Out {
        Out {
            table: Table::new(&["row", "mode", "median ms"]),
            rows: Vec::new(),
            iters: aqua_bench::iters_for(10, 5),
        }
    }

    fn row(&mut self, name: &str, mode: &str, t: Timed) {
        self.table.row(vec![name.into(), mode.into(), ms(t)]);
        self.rows.push((name.to_string(), mode.to_string(), t));
    }

    fn json(&self, host: usize) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"b15_batched\",\n  \"rows\": [\n");
        for (i, (name, mode, t)) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"bench\":\"b15\",\"name\":\"{name}\",\"mode\":\"{mode}\",\
                 \"median_ms\":{:.4},\"result_size\":{},\"parallelism\":{host}}}{comma}",
                t.secs * 1e3,
                t.result_size
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Building the SoA view: CSR children + single-clock interval columns
/// for a 50k-node tree. Cloning resets the per-tree cache, so each
/// iteration rebuilds from the node arena (the clone itself is a flat
/// `Vec` copy, priced into the row).
fn bench_cols_build(out: &mut Out) {
    let d = RandomTreeGen::new(7).nodes(50_000).generate();
    let t = time_median(out.iters, || {
        let fresh = d.tree.clone();
        fresh.cols().len()
    });
    out.row("treecols_rebuild_50k", "serial", t);
}

/// The columnar payoff: count the descendants of a deep internal node
/// by streaming the `pre`/`post` columns — two contiguous u32 loads and
/// two compares per node, no pointer chasing.
fn bench_interval_scan(out: &mut Out) {
    let d = RandomTreeGen::new(8).nodes(50_000).generate();
    let cols = d.tree.cols();
    // The last preorder node's parent: a real internal node somewhere
    // deep in the tree, chosen deterministically.
    let anchor = cols
        .parent(cols.preorder()[cols.len() - 1])
        .unwrap_or_else(|| d.tree.root().0);
    let (ap, aq) = (cols.pre(anchor), cols.post(anchor));
    let t = time_median(out.iters, || {
        let pre = cols.pre_col();
        let post = cols.post_col();
        let mut n = 0usize;
        for i in 0..pre.len() {
            n += usize::from(ap <= pre[i] && post[i] <= aq);
        }
        black_box(n)
    });
    out.row("columnar_interval_scan_50k", "serial", t);
}

/// Batched predicate throughput: 200 passes over a warm 5k-note column
/// = one million evaluations of `pitch = "A" and duration <= 8` per
/// iteration through the fused conjunction pass.
fn bench_batched_throughput(out: &mut Out) {
    let d = SongGen::new(9).notes(5_000).generate();
    let pred = PredExpr::eq("pitch", "A")
        .and(PredExpr::cmp("duration", CmpOp::Le, 8))
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let program = BatchProgram::compile(&pred);
    let oids = d.song.cols().oids().to_vec();
    let mut bits = BitRow::zeros(oids.len());
    let t = time_median(out.iters, || {
        let mut hits = 0usize;
        for _ in 0..200 {
            program
                .eval_into(&d.store, black_box(&oids), None, &mut bits)
                .unwrap();
            hits += bits.count_ones();
        }
        hits / 200
    });
    out.row("batched_pred_throughput_1m", "serial", t);
}

/// Chunked parallel scaling: `ListSet::par_sub_select` over 200 songs
/// of 500 notes — the pool pops contiguous member runs per lock
/// acquisition, and the member-order merge keeps the answer
/// byte-identical to serial at every thread count.
fn bench_chunked_par(out: &mut Out) {
    let d = SongGen::new(10).notes(500).generate_set(200);
    let set = ListSet::from_lists(d.songs.clone());
    let re = Sym::pred(PredExpr::eq("pitch", "A"))
        .then(Sym::any())
        .then(Sym::pred(PredExpr::eq("pitch", "F")));
    let p =
        aqua_pattern::list::ListPattern::unanchored(re, d.class, d.store.class(d.class)).unwrap();

    let serial = time_median(out.iters, || {
        set.sub_select(&d.store, &p, MatchMode::Nonoverlapping)
            .len()
    });
    out.row("chunked_par_sub_select", "serial", serial);

    let threads: &[usize] = if aqua_bench::quick() {
        &[4]
    } else {
        &[2, 4, 8]
    };
    for &t in threads {
        let par = time_median(out.iters, || {
            set.par_sub_select(&d.store, &p, MatchMode::Nonoverlapping, t, None)
                .unwrap()
                .len()
        });
        assert_eq!(
            par.result_size, serial.result_size,
            "chunked parallel answer must match serial"
        );
        out.row("chunked_par_sub_select", &format!("par x{t}"), par);
    }
}

fn main() {
    let mut out = Out::new();
    bench_cols_build(&mut out);
    bench_interval_scan(&mut out);
    bench_batched_throughput(&mut out);
    bench_chunked_par(&mut out);
    out.table
        .print("B15 — flat-memory engine: columnar + batched hot paths");
    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        let host = aqua_exec::available_threads();
        std::fs::write(&path, out.json(host)).expect("write AQUA_BENCH_JSON");
        eprintln!("wrote {path}");
    }
}
