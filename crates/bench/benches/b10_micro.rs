//! B10 — Criterion micro-benchmarks for the primitive operations every
//! query decomposes into: alphabet-predicate evaluation (the paper's
//! constant-time guarantee, §3.1), one Pike-VM scan step, tree
//! concatenation at a point (§3.3), subtree copy, and boolean tree-
//! pattern matching. These are the constants behind the B1–B9 shapes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use aqua_object::AttrId;
use aqua_pattern::list::{ListPattern, MatchMode, Sym};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::TreeMatcher;
use aqua_pattern::{CcLabel, PredExpr};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;

fn bench_pred_eval(c: &mut Criterion) {
    let d = SongGen::new(1).notes(1).generate();
    let oid = d.song.oids()[0];
    let pred = PredExpr::eq("pitch", "A")
        .and(PredExpr::cmp("duration", aqua_pattern::CmpOp::Le, 8))
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    c.bench_function("alphabet_predicate_eval", |b| {
        b.iter(|| black_box(pred.eval(&d.store, black_box(oid))))
    });
}

fn bench_list_scan(c: &mut Criterion) {
    let d = SongGen::new(2).notes(10_000).generate();
    let re = Sym::pred(PredExpr::eq("pitch", "A"))
        .then(Sym::any())
        .then(Sym::pred(PredExpr::eq("pitch", "F")));
    let p = ListPattern::unanchored(re, d.class, d.store.class(d.class)).unwrap();
    let oids = d.song.oids();
    c.bench_function("pike_vm_scan_10k_notes", |b| {
        b.iter(|| {
            black_box(
                p.find_matches(&d.store, &oids, MatchMode::Nonoverlapping)
                    .len(),
            )
        })
    });
}

fn bench_concat(c: &mut Criterion) {
    let d = RandomTreeGen::new(3).nodes(1000).generate();
    let ctx = aqua_algebra::tree::split::split_pieces(
        &d.store,
        &d.tree,
        &parse_tree_pattern("?(?*)", &PredEnv::with_default_attr("label"))
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap(),
        &aqua_pattern::tree_match::MatchConfig::first_per_root(),
    )
    .into_iter()
    .nth(1)
    .expect("a non-root match exists");
    c.bench_function("concat_at_1k_node_context", |b| {
        b.iter(|| {
            black_box(aqua_algebra::tree::concat::concat_at(
                &ctx.context,
                black_box(&ctx.alpha),
                &ctx.matched,
            ))
            .len()
        })
    });
    let _ = CcLabel::new("keep-import");
}

fn bench_subtree_copy(c: &mut Criterion) {
    let d = RandomTreeGen::new(4).nodes(5000).generate();
    c.bench_function("subtree_copy_5k_nodes", |b| {
        b.iter(|| black_box(aqua_algebra::tree::concat::subtree(&d.tree, d.tree.root())).len())
    });
}

fn bench_bool_match(c: &mut Criterion) {
    let d = RandomTreeGen::new(5)
        .nodes(2000)
        .label_weights(&[("d", 1), ("a", 5), ("x", 14)])
        .generate();
    let cp = parse_tree_pattern("d(?* a ?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    c.bench_function("tree_bool_match_all_nodes_2k", |b| {
        b.iter_batched(
            || TreeMatcher::new(&cp, &d.tree, &d.store),
            |mut m| {
                let mut hits = 0usize;
                for n in 0..2000u32 {
                    if m.matches_at(n) {
                        hits += 1;
                    }
                }
                black_box(hits)
            },
            BatchSize::SmallInput,
        )
    });
    let _ = AttrId(0);
}

fn tight() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = micro;
    config = tight();
    targets = bench_pred_eval, bench_list_scan, bench_concat, bench_subtree_copy, bench_bool_match
}
criterion_main!(micro);
