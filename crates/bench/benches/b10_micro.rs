//! B10 — micro-benchmarks for the primitive operations every query
//! decomposes into: alphabet-predicate evaluation (the paper's
//! constant-time guarantee, §3.1), one Pike-VM scan step, tree
//! concatenation at a point (§3.3), subtree copy, and boolean tree-
//! pattern matching. These are the constants behind the B1–B9 shapes.
//!
//! Uses the in-repo [`aqua_bench::timing`] harness (median-of-N wall
//! time) rather than an external benchmark framework, so the workspace
//! builds offline.

use std::hint::black_box;

use aqua_bench::timing::{ms, time_median};
use aqua_bench::Table;
use aqua_guard::{Budget, ExecGuard, SharedGuard};
use aqua_object::AttrId;
use aqua_pattern::list::{ListPattern, MatchMode, Sym};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::TreeMatcher;
use aqua_pattern::{CcLabel, PredExpr};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;

const ITERS: usize = 20;

fn bench_pred_eval(table: &mut Table) {
    let d = SongGen::new(1).notes(1).generate();
    let oid = d.song.oids()[0];
    let pred = PredExpr::eq("pitch", "A")
        .and(PredExpr::cmp("duration", aqua_pattern::CmpOp::Le, 8))
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    // One predicate evaluation is nanoseconds; time a 100k batch.
    let t = time_median(ITERS, || {
        let mut hits = 0usize;
        for _ in 0..100_000 {
            if pred.eval(&d.store, black_box(oid)) {
                hits += 1;
            }
        }
        hits
    });
    table.row(vec!["alphabet_predicate_eval_100k".into(), ms(t)]);
}

fn bench_list_scan(table: &mut Table) {
    let d = SongGen::new(2).notes(10_000).generate();
    let re = Sym::pred(PredExpr::eq("pitch", "A"))
        .then(Sym::any())
        .then(Sym::pred(PredExpr::eq("pitch", "F")));
    let p = ListPattern::unanchored(re, d.class, d.store.class(d.class)).unwrap();
    let oids = d.song.oids();
    let t = time_median(ITERS, || {
        p.find_matches(&d.store, &oids, MatchMode::Nonoverlapping)
            .len()
    });
    table.row(vec!["pike_vm_scan_10k_notes".into(), ms(t)]);
}

fn bench_concat(table: &mut Table) {
    let d = RandomTreeGen::new(3).nodes(1000).generate();
    let ctx = aqua_algebra::tree::split::split_pieces(
        &d.store,
        &d.tree,
        &parse_tree_pattern("?(?*)", &PredEnv::with_default_attr("label"))
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap(),
        &aqua_pattern::tree_match::MatchConfig::first_per_root(),
    )
    .unwrap()
    .into_iter()
    .nth(1)
    .expect("a non-root match exists");
    let t = time_median(ITERS, || {
        aqua_algebra::tree::concat::concat_at(&ctx.context, black_box(&ctx.alpha), &ctx.matched)
            .len()
    });
    table.row(vec!["concat_at_1k_node_context".into(), ms(t)]);
    let _ = CcLabel::new("keep-import");
}

fn bench_subtree_copy(table: &mut Table) {
    let d = RandomTreeGen::new(4).nodes(5000).generate();
    let t = time_median(ITERS, || {
        aqua_algebra::tree::concat::subtree(&d.tree, d.tree.root()).len()
    });
    table.row(vec!["subtree_copy_5k_nodes".into(), ms(t)]);
}

fn bench_bool_match(table: &mut Table) {
    let d = RandomTreeGen::new(5)
        .nodes(2000)
        .label_weights(&[("d", 1), ("a", 5), ("x", 14)])
        .generate();
    let cp = parse_tree_pattern("d(?* a ?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let t = time_median(ITERS, || {
        let mut m = TreeMatcher::new(&cp, &d.tree, &d.store);
        let mut hits = 0usize;
        for n in 0..2000u32 {
            if m.matches_at(n) {
                hits += 1;
            }
        }
        black_box(hits)
    });
    table.row(vec!["tree_bool_match_all_nodes_2k".into(), ms(t)]);
    let _ = AttrId(0);
}

/// Guard accounting overhead on the serial path (PR 2 satellite): the
/// same `sub_select` scan with no guard, with a disarmed (unlimited)
/// `ExecGuard`, and with a `SharedGuard` worker. Batched step accounting
/// means all three should be within noise of each other.
fn bench_guard_overhead(table: &mut Table) {
    let d = RandomTreeGen::new(6)
        .nodes(5000)
        .label_weights(&[("d", 1), ("x", 9)])
        .generate();
    let cp = parse_tree_pattern("d(?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let cfg = aqua_pattern::tree_match::MatchConfig::first_per_root();

    let none = time_median(ITERS, || {
        aqua_algebra::tree::ops::sub_select(&d.store, &d.tree, &cp, &cfg)
            .unwrap()
            .len()
    });
    table.row(vec!["sub_select_5k_no_guard".into(), ms(none)]);

    let disarmed = ExecGuard::new(Budget::unlimited());
    let t = time_median(ITERS, || {
        aqua_algebra::tree::ops::sub_select_guarded(&d.store, &d.tree, &cp, &cfg, Some(&disarmed))
            .unwrap()
            .len()
    });
    table.row(vec!["sub_select_5k_disarmed_guard".into(), ms(t)]);

    let fleet = SharedGuard::new(Budget::unlimited());
    let worker = fleet.worker();
    let t = time_median(ITERS, || {
        aqua_algebra::tree::ops::sub_select_guarded(&d.store, &d.tree, &cp, &cfg, Some(&worker))
            .unwrap()
            .len()
    });
    table.row(vec!["sub_select_5k_shared_worker".into(), ms(t)]);
}

fn main() {
    let mut table = Table::new(&["operation", "median ms"]);
    bench_pred_eval(&mut table);
    bench_list_scan(&mut table);
    bench_concat(&mut table);
    bench_subtree_copy(&mut table);
    bench_bool_match(&mut table);
    bench_guard_overhead(&mut table);
    table.print("B10 — primitive operation micro-benchmarks");
}
