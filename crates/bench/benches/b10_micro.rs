//! B10 — micro-benchmarks for the primitive operations every query
//! decomposes into: alphabet-predicate evaluation (the paper's
//! constant-time guarantee, §3.1), one Pike-VM scan step, tree
//! concatenation at a point (§3.3), subtree copy, and boolean tree-
//! pattern matching. These are the constants behind the B1–B9 shapes.
//!
//! Uses the in-repo [`aqua_bench::timing`] harness (median-of-N wall
//! time) rather than an external benchmark framework, so the workspace
//! builds offline. `AQUA_BENCH_QUICK` shrinks the iteration count for
//! the CI gate; `AQUA_BENCH_JSON=<path>` dumps the rows as flat JSON
//! for `bench_gate`.

use std::hint::black_box;

use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_guard::{Budget, ExecGuard, Metrics, SharedGuard};
use aqua_object::AttrId;
use aqua_pattern::list::{ListPattern, MatchMode, Sym};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::TreeMatcher;
use aqua_pattern::{BatchProgram, BitRow, CcLabel, PredExpr};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;

/// Table plus the machine-readable rows behind it.
struct Out {
    table: Table,
    rows: Vec<(&'static str, Timed)>,
    iters: usize,
}

impl Out {
    fn new() -> Out {
        Out {
            table: Table::new(&["operation", "median ms"]),
            rows: Vec::new(),
            iters: aqua_bench::iters_for(20, 5),
        }
    }

    fn row(&mut self, name: &'static str, t: Timed) {
        self.table.row(vec![name.into(), ms(t)]);
        self.rows.push((name, t));
    }

    fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"b10_micro\",\n");
        s.push_str(&format!("  \"iters\": {},\n", self.iters));
        s.push_str("  \"rows\": [\n");
        for (i, (name, t)) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"bench\":\"b10\",\"name\":\"{name}\",\"median_ms\":{:.4},\"result_size\":{}}}{comma}\n",
                t.secs * 1e3,
                t.result_size
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn bench_pred_eval(out: &mut Out) {
    // 100k evaluations per iteration, batched: the predicate compiles
    // to a flat program that streams a cache-resident 5k-note OID
    // column chunk by chunk into a reused bitset, 20 passes per
    // iteration. (The pre-batching version of this row evaluated one
    // hot object 100k times; a warm column keeps the comparison about
    // per-evaluation cost, not DRAM bandwidth.)
    let d = SongGen::new(1).notes(5_000).generate();
    let pred = PredExpr::eq("pitch", "A")
        .and(PredExpr::cmp("duration", aqua_pattern::CmpOp::Le, 8))
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let program = BatchProgram::compile(&pred);
    let oids = d.song.cols().oids().to_vec();
    let mut bits = BitRow::zeros(oids.len());
    let t = time_median(out.iters, || {
        let mut hits = 0usize;
        for _ in 0..20 {
            program
                .eval_into(&d.store, black_box(&oids), None, &mut bits)
                .unwrap();
            hits += bits.count_ones();
        }
        hits / 20
    });
    out.row("alphabet_predicate_eval_100k", t);
}

fn bench_list_scan(out: &mut Out) {
    let d = SongGen::new(2).notes(10_000).generate();
    let re = Sym::pred(PredExpr::eq("pitch", "A"))
        .then(Sym::any())
        .then(Sym::pred(PredExpr::eq("pitch", "F")));
    let p = ListPattern::unanchored(re, d.class, d.store.class(d.class)).unwrap();
    let oids = d.song.oids();
    let t = time_median(out.iters, || {
        p.find_matches(&d.store, &oids, MatchMode::Nonoverlapping)
            .len()
    });
    out.row("pike_vm_scan_10k_notes", t);
}

fn bench_concat(out: &mut Out) {
    let d = RandomTreeGen::new(3).nodes(1000).generate();
    let ctx = aqua_algebra::tree::split::split_pieces(
        &d.store,
        &d.tree,
        &parse_tree_pattern("?(?*)", &PredEnv::with_default_attr("label"))
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap(),
        &aqua_pattern::tree_match::MatchConfig::first_per_root(),
    )
    .unwrap()
    .into_iter()
    .nth(1)
    .expect("a non-root match exists");
    let t = time_median(out.iters, || {
        aqua_algebra::tree::concat::concat_at(&ctx.context, black_box(&ctx.alpha), &ctx.matched)
            .len()
    });
    out.row("concat_at_1k_node_context", t);
    let _ = CcLabel::new("keep-import");
}

fn bench_subtree_copy(out: &mut Out) {
    let d = RandomTreeGen::new(4).nodes(5000).generate();
    let t = time_median(out.iters, || {
        aqua_algebra::tree::concat::subtree(&d.tree, d.tree.root()).len()
    });
    out.row("subtree_copy_5k_nodes", t);
}

fn bench_bool_match(out: &mut Out) {
    let d = RandomTreeGen::new(5)
        .nodes(2000)
        .label_weights(&[("d", 1), ("a", 5), ("x", 14)])
        .generate();
    let cp = parse_tree_pattern("d(?* a ?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let t = time_median(out.iters, || {
        let mut m = TreeMatcher::new(&cp, &d.tree, &d.store);
        let mut hits = 0usize;
        for n in 0..2000u32 {
            if m.matches_at(n) {
                hits += 1;
            }
        }
        black_box(hits)
    });
    out.row("tree_bool_match_all_nodes_2k", t);
    let _ = AttrId(0);
}

/// Guard accounting overhead on the serial path (PR 2 satellite), now
/// with the observability layer in the picture: the same `sub_select`
/// scan with no guard, with a disarmed (metrics-free) `ExecGuard`, with
/// a `SharedGuard` worker, and with a metrics-armed guard. Batched step
/// accounting plus the hoisted `Option<&Metrics>` probe mean the first
/// three should be within noise of each other; the armed row prices the
/// relaxed atomic adds.
fn bench_guard_overhead(out: &mut Out) {
    let d = RandomTreeGen::new(6)
        .nodes(5000)
        .label_weights(&[("d", 1), ("x", 9)])
        .generate();
    let cp = parse_tree_pattern("d(?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let cfg = aqua_pattern::tree_match::MatchConfig::first_per_root();

    let none = time_median(out.iters, || {
        aqua_algebra::tree::ops::sub_select(&d.store, &d.tree, &cp, &cfg)
            .unwrap()
            .len()
    });
    out.row("sub_select_5k_no_guard", none);

    let disarmed = ExecGuard::new(Budget::unlimited());
    let t = time_median(out.iters, || {
        aqua_algebra::tree::ops::sub_select_guarded(&d.store, &d.tree, &cp, &cfg, Some(&disarmed))
            .unwrap()
            .len()
    });
    out.row("sub_select_5k_disarmed_guard", t);

    let fleet = SharedGuard::new(Budget::unlimited());
    let worker = fleet.worker();
    let t = time_median(out.iters, || {
        aqua_algebra::tree::ops::sub_select_guarded(&d.store, &d.tree, &cp, &cfg, Some(&worker))
            .unwrap()
            .len()
    });
    out.row("sub_select_5k_shared_worker", t);

    let armed = ExecGuard::new(Budget::unlimited()).with_metrics(Metrics::new());
    let t = time_median(out.iters, || {
        aqua_algebra::tree::ops::sub_select_guarded(&d.store, &d.tree, &cp, &cfg, Some(&armed))
            .unwrap()
            .len()
    });
    out.row("sub_select_5k_armed_metrics", t);
}

fn main() {
    let mut out = Out::new();
    bench_pred_eval(&mut out);
    bench_list_scan(&mut out);
    bench_concat(&mut out);
    bench_subtree_copy(&mut out);
    bench_bool_match(&mut out);
    bench_guard_overhead(&mut out);
    out.table
        .print("B10 — primitive operation micro-benchmarks");
    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        std::fs::write(&path, out.json()).expect("write AQUA_BENCH_JSON");
        eprintln!("wrote {path}");
    }
}
