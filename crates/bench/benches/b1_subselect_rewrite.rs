//! B1 — the paper's central optimization claim (§4, "Why Split?"):
//! `sub_select(tp)` rewritten through `split` + an index on the root
//! predicate beats the naive full pattern scan, by a factor that grows
//! with tree size and root-predicate selectivity.
//!
//! Sweep: tree size × selectivity of the root label `d`.
//! Columns: naive scan ms, indexed plan ms, speedup, matches.

use aqua_bench::timing::{ms, speedup, time_median};
use aqua_bench::Table;
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    let mut table = Table::new(&[
        "nodes",
        "sel%",
        "naive_ms",
        "indexed_ms",
        "speedup",
        "matches",
        "plan",
    ]);
    let env = PredEnv::with_default_attr("label");
    // Root predicate `d`, requiring an `a` child somewhere below it.
    let pattern = parse_tree_pattern("d(?* a ?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();

    for &nodes in &[1_000usize, 10_000, 50_000] {
        for &(sel_pct, d_weight, rest_weight) in &[(0.1, 1u32, 999u32), (1.0, 1, 99), (10.0, 1, 9)]
        {
            let d = RandomTreeGen::new(42)
                .nodes(nodes)
                .max_arity(4)
                .label_weights(&[
                    ("d", d_weight),
                    ("a", rest_weight / 2),
                    ("x", rest_weight / 2),
                ])
                .generate();
            let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
            let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
            let mut cat = Catalog::new(&d.store, d.class);
            cat.add_tree_index(&idx).add_stats(&stats);
            let opt = Optimizer::new(&cat);
            let (plan, _) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();

            let compiled = pattern.compile(d.class, d.store.class(d.class)).unwrap();
            let naive = time_median(3, || {
                aqua_algebra::tree::ops::sub_select(&d.store, &d.tree, &compiled, &cfg)
                    .unwrap()
                    .len()
            });
            let fast = time_median(3, || plan.execute(&cat, &d.tree, &cfg).unwrap().len());
            assert_eq!(naive.result_size, fast.result_size);
            table.row(vec![
                nodes.to_string(),
                format!("{sel_pct}"),
                ms(naive),
                ms(fast),
                speedup(naive, fast),
                naive.result_size.to_string(),
                if plan.is_indexed() { "indexed" } else { "scan" }.into(),
            ]);
        }
    }
    table.print("B1: sub_select naive scan vs split+index rewrite (paper §4)");
}
