//! B13 — durability costs: WAL append throughput, cold-open replay
//! rate, and snapshot-assisted cold-open latency.
//!
//! Three rows, one per durability phase:
//!
//! * `wal_append_1k_ops` — a fresh `DurableStore` absorbing a 1k-op
//!   seeded mutation storm (validate → log → apply per op).
//! * `replay_cold_open_2k_frames` — opening a directory whose entire
//!   state lives in the WAL: every frame checksummed, decoded, and
//!   replayed, then all four indexes rebuilt.
//! * `cold_open_snapshot_tail` — the same state after a checkpoint:
//!   snapshot load plus a short WAL tail, the steady-state restart
//!   shape.
//!
//! `AQUA_BENCH_QUICK` shrinks iterations for the CI gate;
//! `AQUA_BENCH_JSON=<path>` dumps the rows for `bench_gate`.

use std::path::PathBuf;

use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_store::{DurableConfig, DurableStore};
use aqua_workload::storm::{MutationStorm, BOOT_OPS};

struct Out {
    table: Table,
    rows: Vec<(&'static str, Timed)>,
    iters: usize,
}

impl Out {
    fn new() -> Out {
        Out {
            table: Table::new(&["phase", "median ms"]),
            rows: Vec::new(),
            iters: aqua_bench::iters_for(10, 3),
        }
    }

    fn row(&mut self, name: &'static str, t: Timed) {
        self.table.row(vec![name.into(), ms(t)]);
        self.rows.push((name, t));
    }

    fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"b13_recovery\",\n");
        s.push_str(&format!("  \"iters\": {},\n", self.iters));
        s.push_str("  \"rows\": [\n");
        for (i, (name, t)) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"bench\":\"b13\",\"name\":\"{name}\",\"median_ms\":{:.4},\"result_size\":{}}}{comma}\n",
                t.secs * 1e3,
                t.result_size
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn scratch(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aqua-b13-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> DurableConfig {
    DurableConfig {
        segment_bytes: 64 * 1024,
        checkpoint_every: 0,
        prune: true,
        // Root tracking off: these rows isolate raw durability costs so
        // they stay comparable with the recorded baseline; the
        // authenticated deltas are b14's job.
        authenticate: false,
    }
}

/// WAL append throughput: fresh store, 1k storm ops straight through
/// the validate → log → apply path.
fn bench_append(out: &mut Out) {
    const OPS: u64 = BOOT_OPS + 1000;
    let storm = MutationStorm::new(7);
    let mut n = 0;
    let t = time_median(out.iters, || {
        let dir = scratch("append", n);
        n += 1;
        let (mut ds, _) = DurableStore::open(&dir, cfg()).expect("fresh open");
        let applied = storm.apply(&mut ds, 0..OPS).expect("storm applies") as usize;
        drop(ds);
        let _ = std::fs::remove_dir_all(&dir);
        applied
    });
    out.row("wal_append_1k_ops", t);
}

/// Cold-open replay rate: the whole state lives in the WAL; every
/// frame is checksummed, decoded, replayed, and the indexes rebuilt.
fn bench_replay(out: &mut Out) {
    const OPS: u64 = BOOT_OPS + 2000;
    let storm = MutationStorm::new(7);
    let dir = scratch("replay", 0);
    {
        let (mut ds, _) = DurableStore::open(&dir, cfg()).expect("fresh open");
        storm.apply(&mut ds, 0..OPS).expect("storm applies");
        ds.sync().expect("sync");
    }
    let t = time_median(out.iters, || {
        let (ds, rep) = DurableStore::open(&dir, cfg()).expect("cold open");
        assert_eq!(ds.epoch(), OPS);
        rep.frames_replayed as usize
    });
    out.row("replay_cold_open_2k_frames", t);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot-assisted cold open: a checkpoint covers the bulk, the WAL
/// holds a 200-op tail — the steady-state restart shape.
fn bench_snapshot_open(out: &mut Out) {
    const BULK: u64 = BOOT_OPS + 2000;
    const TAIL: u64 = 200;
    let storm = MutationStorm::new(7);
    let dir = scratch("snap", 0);
    {
        let (mut ds, _) = DurableStore::open(&dir, cfg()).expect("fresh open");
        storm.apply(&mut ds, 0..BULK).expect("storm applies");
        ds.checkpoint().expect("checkpoint");
        storm
            .apply(&mut ds, BULK..BULK + TAIL)
            .expect("tail applies");
        ds.sync().expect("sync");
    }
    let t = time_median(out.iters, || {
        let (ds, rep) = DurableStore::open(&dir, cfg()).expect("cold open");
        assert_eq!(ds.epoch(), BULK + TAIL);
        assert_eq!(rep.frames_replayed, TAIL);
        rep.frames_replayed as usize
    });
    out.row("cold_open_snapshot_tail", t);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut out = Out::new();
    bench_append(&mut out);
    bench_replay(&mut out);
    bench_snapshot_open(&mut out);
    out.table
        .print("B13 — durability: WAL append, replay, cold open");
    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        std::fs::write(&path, out.json()).expect("write AQUA_BENCH_JSON");
        eprintln!("wrote {path}");
    }
}
