//! B4 — `split` cost model: each match materializes three pieces, and
//! the context piece is a copy of everything outside the match, so the
//! per-match cost is Θ(tree size) — flat in the number of matches.
//! Reassembly is likewise linear per match. (Operators that do not need
//! the context — `sub_select` — skip this cost entirely; see B1/B5.)
//!
//! Sweep: number of matches in a fixed-size tree (match count is dialed
//! by the rare-label weight). Columns: split ms, per-match µs (expected
//! ~flat), reassembly ms of all matches.

use aqua_bench::timing::{ms, time_median};
use aqua_bench::Table;
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("d(!?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();
    let nodes = 10_000usize;

    let mut table = Table::new(&[
        "nodes",
        "matches",
        "split_ms",
        "us_per_match",
        "reassemble_ms",
    ]);
    for &(d_w, x_w) in &[(1u32, 2000u32), (1, 200), (1, 40)] {
        let data = RandomTreeGen::new(11)
            .nodes(nodes)
            .label_weights(&[("d", d_w), ("x", x_w)])
            .generate();
        let cp = pattern
            .compile(data.class, data.store.class(data.class))
            .unwrap();

        let split_t = time_median(3, || {
            aqua_algebra::tree::split::split_pieces(&data.store, &data.tree, &cp, &cfg)
                .unwrap()
                .len()
        });
        let pieces =
            aqua_algebra::tree::split::split_pieces(&data.store, &data.tree, &cp, &cfg).unwrap();
        let n_matches = pieces.len().max(1);
        let reassemble_t = time_median(3, || {
            pieces.iter().map(|p| p.reassemble().len()).sum::<usize>()
        });
        table.row(vec![
            nodes.to_string(),
            pieces.len().to_string(),
            ms(split_t),
            format!("{:.1}", split_t.secs * 1e6 / n_matches as f64),
            ms(reassemble_t),
        ]);
    }
    table.print("B4: split cost — O(tree) per match (context piece); reassembly linear (paper §4)");
}
