//! B14 — integrity costs: merkle root recomputation rate and the price
//! of split reassembly certificates.
//!
//! Four rows:
//!
//! * `tree_root_recompute_10k_nodes` — recomputing a 10k-node tree
//!   extent's merkle root from scratch (the per-extent recovery
//!   verification step, and the worst case of incremental tracking).
//! * `split_5k_8cuts_plain` — the b10-shape `split` over a 5k-node
//!   tree, capped at 8 matches (the service's default `degraded_cap`),
//!   no certificates: the baseline the next two rows are priced
//!   against.
//! * `split_5k_8cuts_cert_emit` — the same split plus one reassembly
//!   certificate emitted per decomposition (canonical serialization +
//!   SHA-256 per piece; each certificate carries the full ~5k-node
//!   context, so this is the dominant verified-serving cost).
//! * `split_5k_8cuts_cert_emit_check` — emit *and* inline revalidation
//!   by the independent `aqua-check` crate (parse, rehash, reassemble,
//!   recompute the extent root) — the full `verify=true` serving path.
//!
//! `AQUA_BENCH_QUICK` shrinks iterations for the CI gate;
//! `AQUA_BENCH_JSON=<path>` dumps the rows for `bench_gate`.

use std::hint::black_box;

use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_store::SplitCertificate;
use aqua_workload::random_tree::RandomTreeGen;

struct Out {
    table: Table,
    rows: Vec<(&'static str, Timed)>,
    iters: usize,
}

impl Out {
    fn new() -> Out {
        Out {
            table: Table::new(&["operation", "median ms"]),
            rows: Vec::new(),
            iters: aqua_bench::iters_for(20, 5),
        }
    }

    fn row(&mut self, name: &'static str, t: Timed) {
        self.table.row(vec![name.into(), ms(t)]);
        self.rows.push((name, t));
    }

    fn json(&self) -> String {
        let par = aqua_exec::available_threads();
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"b14_integrity\",\n");
        s.push_str(&format!("  \"iters\": {},\n", self.iters));
        s.push_str("  \"rows\": [\n");
        for (i, (name, t)) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"bench\":\"b14\",\"name\":\"{name}\",\"median_ms\":{:.4},\"result_size\":{},\"parallelism\":{par}}}{comma}\n",
                t.secs * 1e3,
                t.result_size
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Recompute a 10k-node tree extent's merkle root from scratch: leaf
/// hash per node (interval + payload) plus the binary fold.
fn bench_root_recompute(out: &mut Out) {
    let d = RandomTreeGen::new(11).nodes(10_000).generate();
    let t = time_median(out.iters, || {
        black_box(aqua_store::tree_root(&d.store, &d.tree));
        d.tree.len()
    });
    out.row("tree_root_recompute_10k_nodes", t);
}

/// The split workload shared by the certificate rows: b10's 5k-node
/// random tree, cut at every `d` node's children.
fn bench_split_certs(out: &mut Out) {
    let d = RandomTreeGen::new(6)
        .nodes(5000)
        .label_weights(&[("d", 1), ("x", 9)])
        .generate();
    let cp = parse_tree_pattern("d(!?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let cfg = MatchConfig {
        max_matches: 8,
        ..MatchConfig::first_per_root()
    };
    let root = aqua_store::tree_root(&d.store, &d.tree);

    let t = time_median(out.iters, || {
        aqua_algebra::tree::split::split_pieces(&d.store, &d.tree, &cp, &cfg)
            .unwrap()
            .len()
    });
    out.row("split_5k_8cuts_plain", t);

    let t = time_median(out.iters, || {
        let pieces = aqua_algebra::tree::split::split_pieces(&d.store, &d.tree, &cp, &cfg).unwrap();
        let mut emitted = 0usize;
        for p in &pieces {
            let cert = SplitCertificate::emit(&d.store, "tree:bench", root, p);
            black_box(cert.to_text().len());
            emitted += 1;
        }
        emitted
    });
    out.row("split_5k_8cuts_cert_emit", t);

    let t = time_median(out.iters, || {
        let pieces = aqua_algebra::tree::split::split_pieces(&d.store, &d.tree, &cp, &cfg).unwrap();
        let mut checked = 0usize;
        for p in &pieces {
            let cert = SplitCertificate::emit(&d.store, "tree:bench", root, p);
            let rep = aqua_check::verify(&cert.to_text()).expect("certificate parses");
            assert!(rep.ok(), "true certificate must verify: {:?}", rep.failures);
            checked += 1;
        }
        checked
    });
    out.row("split_5k_8cuts_cert_emit_check", t);
}

fn main() {
    let mut out = Out::new();
    bench_root_recompute(&mut out);
    bench_split_certs(&mut out);
    out.table
        .print("B14 — integrity: root recompute, certificate emit/check");
    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        std::fs::write(&path, out.json()).expect("write AQUA_BENCH_JSON");
        eprintln!("wrote {path}");
    }
}
