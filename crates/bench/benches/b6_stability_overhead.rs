//! B6 — what does *stability* cost? (§1: operators preserve the
//! relative order of all surviving pairs.) Stable tree `select`
//! (ancestry compression) vs unordered set `select` over the same
//! elements.
//!
//! Sweep: tree size × predicate selectivity.
//! Columns: set select ms, stable tree select ms, overhead factor.

use aqua_algebra::setops::AquaSet;
use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_pattern::PredExpr;
use aqua_workload::random_tree::RandomTreeGen;

fn factor(a: Timed, b: Timed) -> String {
    format!("{:.2}x", b.secs / a.secs.max(1e-12))
}

fn main() {
    let mut table = Table::new(&[
        "nodes",
        "sel%",
        "set_select_ms",
        "tree_select_ms",
        "overhead",
        "kept",
    ]);
    for &nodes in &[1_000usize, 10_000, 100_000] {
        for &(label_w, rest_w, sel_pct) in &[(1u32, 99u32, 1.0), (1, 9, 10.0), (1, 1, 50.0)] {
            let d = RandomTreeGen::new(5)
                .nodes(nodes)
                .label_weights(&[("u", label_w), ("x", rest_w)])
                .generate();
            let pred = PredExpr::eq("label", "u")
                .compile(d.class, d.store.class(d.class))
                .unwrap();

            let set: AquaSet = d.store.extent(d.class).iter().copied().collect();
            let set_t = time_median(3, || set.select(&d.store, &pred).len());
            let tree_t = time_median(3, || {
                aqua_algebra::tree::ops::select(&d.store, &d.tree, &pred)
                    .iter()
                    .map(aqua_algebra::Tree::len)
                    .sum::<usize>()
            });
            assert_eq!(set_t.result_size, tree_t.result_size);
            table.row(vec![
                nodes.to_string(),
                format!("{sel_pct}"),
                ms(set_t),
                ms(tree_t),
                factor(set_t, tree_t),
                tree_t.result_size.to_string(),
            ]);
        }
    }
    table.print("B6: order/ancestry-preserving select vs unordered set select (ablation)");

    // B6b: the indexed tree-select plan (node-index probe + structural
    // compression) claws the stability overhead back on selective
    // predicates.
    let mut t2 = Table::new(&["nodes", "sel%", "walk_ms", "indexed_ms", "speedup", "kept"]);
    for &nodes in &[10_000usize, 100_000] {
        for &(label_w, rest_w, sel_pct) in &[(1u32, 999u32, 0.1), (1, 99, 1.0), (1, 9, 10.0)] {
            let d = RandomTreeGen::new(6)
                .nodes(nodes)
                .label_weights(&[("u", label_w), ("x", rest_w)])
                .generate();
            let idx = aqua_store::TreeNodeIndex::build(
                &d.store,
                &d.tree,
                d.class,
                aqua_object::AttrId(0),
            );
            let sidx = aqua_store::StructuralIndex::build(&d.tree);
            let stats = aqua_store::ColumnStats::build(&d.store, d.class, aqua_object::AttrId(0));
            let mut cat = aqua_optimizer::Catalog::new(&d.store, d.class);
            cat.add_tree_index(&idx)
                .add_structural_index(&sidx)
                .add_stats(&stats);
            let opt = aqua_optimizer::Optimizer::new(&cat);
            let pred_expr = PredExpr::eq("label", "u");
            let (plan, _) = opt.plan_tree_select(&pred_expr, d.tree.len()).unwrap();
            let pred = pred_expr.compile(d.class, d.store.class(d.class)).unwrap();
            let walk = time_median(3, || {
                aqua_algebra::tree::ops::select(&d.store, &d.tree, &pred)
                    .iter()
                    .map(aqua_algebra::Tree::len)
                    .sum::<usize>()
            });
            let fast = time_median(3, || {
                plan.execute(&cat, &d.tree)
                    .unwrap()
                    .iter()
                    .map(aqua_algebra::Tree::len)
                    .sum::<usize>()
            });
            assert_eq!(walk.result_size, fast.result_size);
            t2.row(vec![
                nodes.to_string(),
                format!("{sel_pct}"),
                ms(walk),
                ms(fast),
                format!(
                    "{:.1}x{}",
                    walk.secs / fast.secs.max(1e-12),
                    if plan.is_indexed() {
                        ""
                    } else {
                        " (scan chosen)"
                    }
                ),
                fast.result_size.to_string(),
            ]);
        }
    }
    t2.print("B6b: tree select — full walk vs node-index probe + structural compression");
}
