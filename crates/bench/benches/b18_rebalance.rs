//! B18 — online shard rebalancing: migration throughput and
//! post-rebalance read parity.
//!
//! Two row families over the same six-path `ShardStorm` population:
//!
//! * `migrate_*` — wall-clock for a whole `rebalance(to)` call, grow
//!   (1→4) and shrink (4→2). A rebalance is not idempotent, so each
//!   sample builds a fresh store and is timed individually with
//!   `Instant`; the row reports the median across samples plus the
//!   subtree-move throughput. The cost is dominated by the per-move
//!   2PC fsyncs, so moves/s — not MB/s — is the capacity number an
//!   operator plans with.
//! * `scatter_*` — a full scatter-gather value read (the storm
//!   fingerprint) against a store that *arrived* at 4 shards via
//!   rebalance versus one *opened fresh* at 4 shards with identical
//!   content. The two must render identical bytes (asserted), and the
//!   ratio row is the parity claim: a migrated layout serves reads at
//!   the same price as a native one — no residual indirection.
//!
//! `AQUA_BENCH_QUICK` shrinks the sample count for the CI gate;
//! `AQUA_BENCH_JSON=<path>` dumps rows for `bench_gate` (gated under
//! `--only b18/`).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use aqua_bench::timing::time_median;
use aqua_bench::Table;
use aqua_exec as exec;
use aqua_store::{DurableConfig, ShardedConfig, ShardedStore};
use aqua_workload::ShardStorm;

/// Paths the storm spreads over the shards (top-segment subtrees — the
/// unit of migration).
const PATHS: usize = 6;
/// Base population per path before the rebalance.
const TARGET: usize = 12;

fn samples() -> usize {
    // Each sample is a full store build + migration (hundreds of
    // fsyncs); keep the count low and take the median.
    aqua_bench::iters_for(7, 3)
}

struct Row {
    name: &'static str,
    mode: String,
    median_ms: f64,
    result_size: usize,
    moves: u64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"b18\",\"name\":\"{}\",\"mode\":\"{}\",\"median_ms\":{:.4},\
             \"result_size\":{},\"moves\":{}}}",
            self.name, self.mode, self.median_ms, self.result_size, self.moves
        )
    }
}

fn scratch(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aqua-b18-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded_cfg(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        shard: DurableConfig {
            segment_bytes: 64 * 1024,
            checkpoint_every: 0,
            prune: true,
            // Authenticated frames: every move binds post-apply roots,
            // the configuration the chaos matrix runs.
            authenticate: true,
        },
        recovery_threads: 0,
        pin_epoch: None,
    }
}

fn build_base(dir: &Path, shards: usize) -> (ShardedStore, ShardStorm) {
    let storm = ShardStorm::new(7, PATHS);
    let (mut ss, _) = ShardedStore::open(dir, sharded_cfg(shards)).expect("fresh open");
    storm.bootstrap(&mut ss).expect("bootstrap");
    storm.grow(&mut ss, TARGET).expect("grow");
    ss.sync().expect("sync");
    (ss, storm)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// One migration row: fresh store per sample, the `rebalance` call
/// timed wall-clock, fingerprint parity asserted before timing counts.
fn bench_migration(
    table: &mut Table,
    rows: &mut Vec<Row>,
    name: &'static str,
    from: usize,
    to: usize,
) {
    let mut times = Vec::new();
    let mut moves = 0u64;
    for n in 0..samples() {
        let dir = scratch(name, n);
        let (mut ss, storm) = build_base(&dir, from);
        let fp0 = storm.fingerprint(&ss);
        let t0 = Instant::now();
        let rep = ss.rebalance(to).expect("rebalance");
        times.push(t0.elapsed().as_secs_f64());
        moves = rep.moves;
        assert_eq!(
            storm.fingerprint(&ss),
            fp0,
            "migration must be value-preserving"
        );
        drop(ss);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let med = median(times);
    let per_sec = moves as f64 / med.max(1e-12);
    table.row(vec![
        name.into(),
        format!("{from} → {to} shards"),
        format!("{:.2}", med * 1e3),
        format!("{moves}"),
        format!("{per_sec:.0}/s"),
    ]);
    rows.push(Row {
        name,
        mode: format!("{from} -> {to} shards"),
        median_ms: med * 1e3,
        result_size: moves as usize,
        moves,
    });
}

/// The parity rows: an identical scatter-gather read against a
/// rebalanced layout and a native one.
fn bench_parity(table: &mut Table, rows: &mut Vec<Row>) {
    let dir_m = scratch("parity-migrated", 0);
    let (mut migrated, storm) = build_base(&dir_m, 1);
    migrated.rebalance(4).expect("rebalance");
    let dir_f = scratch("parity-fresh", 0);
    let (fresh, _) = build_base(&dir_f, 4);
    assert_eq!(
        storm.fingerprint(&migrated),
        storm.fingerprint(&fresh),
        "both layouts must render identical bytes"
    );

    let iters = aqua_bench::iters_for(40, 10);
    let mut med = [0.0f64; 2];
    for (i, (label, ss)) in [("scatter_migrated", &migrated), ("scatter_fresh", &fresh)]
        .into_iter()
        .enumerate()
    {
        let t = time_median(iters, || storm.fingerprint(ss).len());
        med[i] = t.secs;
        table.row(vec![
            label.into(),
            "4 shards".into(),
            format!("{:.2}", t.secs * 1e3),
            format!("{}", t.result_size),
            if i == 0 {
                "-".into()
            } else {
                format!("{:.2}x vs migrated", med[1] / med[0].max(1e-12))
            },
        ]);
        rows.push(Row {
            name: if i == 0 {
                "scatter_migrated"
            } else {
                "scatter_fresh"
            },
            mode: "4 shards".into(),
            median_ms: t.secs * 1e3,
            result_size: t.result_size,
            moves: 0,
        });
    }
    drop(migrated);
    drop(fresh);
    let _ = std::fs::remove_dir_all(&dir_m);
    let _ = std::fs::remove_dir_all(&dir_f);
}

fn main() {
    let host = exec::available_threads();
    let mut table = Table::new(&["phase", "mode", "median ms", "result", "rate"]);
    let mut rows = Vec::new();
    bench_migration(&mut table, &mut rows, "migrate_grow", 1, 4);
    bench_migration(&mut table, &mut rows, "migrate_shrink", 4, 2);
    bench_parity(&mut table, &mut rows);
    table.print(&format!(
        "B18 — online rebalance: migration throughput and read parity (host threads: {host})"
    ));

    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"b18_rebalance\",");
        let _ = writeln!(out, "  \"host_threads\": {host},");
        let _ = writeln!(out, "  \"samples\": {},", samples());
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{sep}", r.json());
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write JSON baseline");
        println!("wrote {path}");
    }
}
