//! B12 — serving-layer overhead: the same optimizer plan executed
//! directly versus through the `aqua-service` front end (admission →
//! deadline → retry → breaker) with nothing armed and nothing faulted.
//!
//! The pipeline's unfaulted cost is one admission lock round-trip, one
//! breaker decision, one submission-counter bump, and two disarmed
//! failpoint loads — all O(1) per submission — so the service rows must
//! stay within the bench gate's band of their direct twins. The gate
//! keys on the row names, so a regression in the front door itself (not
//! the engine) fails CI.
//!
//! `AQUA_BENCH_QUICK` shrinks iterations for the CI gate;
//! `AQUA_BENCH_JSON=<path>` dumps the rows for `bench_gate`.

use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_guard::{Budget, ExecGuard};
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Explain, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_service::{QueryService, Request};
use aqua_store::{AttrIndex, ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;

struct Out {
    table: Table,
    rows: Vec<(&'static str, Timed)>,
    iters: usize,
}

impl Out {
    fn new() -> Out {
        Out {
            table: Table::new(&["path", "median ms"]),
            rows: Vec::new(),
            iters: aqua_bench::iters_for(20, 5),
        }
    }

    fn row(&mut self, name: &'static str, t: Timed) {
        self.table.row(vec![name.into(), ms(t)]);
        self.rows.push((name, t));
    }

    fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"b12_service_overhead\",\n");
        s.push_str(&format!("  \"iters\": {},\n", self.iters));
        s.push_str("  \"rows\": [\n");
        for (i, (name, t)) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"bench\":\"b12\",\"name\":\"{name}\",\"median_ms\":{:.4},\"result_size\":{}}}{comma}\n",
                t.secs * 1e3,
                t.result_size
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Tree `sub_select` over the same 5k-node dataset `b10`'s guard rows
/// use: direct plan execution with a disarmed guard vs the full service
/// pipeline.
fn bench_tree(out: &mut Out, svc: &QueryService) {
    let d = RandomTreeGen::new(6)
        .nodes(5000)
        .label_weights(&[("d", 1), ("x", 9)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);

    let pattern = parse_tree_pattern("d(?*)", &PredEnv::with_default_attr("label")).unwrap();
    let cfg = MatchConfig::first_per_root();
    let (plan, _) = Optimizer::new(&cat)
        .plan_tree_sub_select(&pattern, d.tree.len())
        .unwrap();

    let direct = time_median(out.iters, || {
        let guard = ExecGuard::new(Budget::unlimited());
        let mut explain = Explain::default();
        plan.execute_guarded(&cat, &d.tree, &cfg, Some(&guard), &mut explain)
            .unwrap()
            .len()
    });
    out.row("sub_select_5k_direct", direct);

    let req = Request::new("bench");
    let service = time_median(out.iters, || {
        svc.tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
            .unwrap()
            .value
            .len()
    });
    assert_eq!(
        service.result_size, direct.result_size,
        "service answer must match direct execution"
    );
    out.row("sub_select_5k_service", service);
}

/// Set select over a 50k-object extent: direct capped-plan execution vs
/// the service pipeline.
fn bench_set(out: &mut Out, svc: &QueryService) {
    let mut store = aqua_object::ObjectStore::new();
    let class = store
        .define_class(
            aqua_object::ClassDef::new(
                "P",
                vec![aqua_object::AttrDef::stored(
                    "age",
                    aqua_object::AttrType::Int,
                )],
            )
            .unwrap(),
        )
        .unwrap();
    for i in 0..50_000 {
        store
            .insert_named("P", &[("age", aqua_object::Value::Int(i % 97))])
            .unwrap();
    }
    let idx = AttrIndex::build(&store, class, AttrId(0));
    let stats = ColumnStats::build(&store, class, AttrId(0));
    let mut cat = Catalog::new(&store, class);
    cat.add_attr_index(&idx).add_stats(&stats);

    let pred = PredExpr::eq("age", 41);
    let (plan, _) = Optimizer::new(&cat).plan_set_select(&pred).unwrap();

    let direct = time_median(out.iters, || {
        let guard = ExecGuard::new(Budget::unlimited());
        let mut explain = Explain::default();
        plan.execute_guarded(&cat, Some(&guard), &mut explain)
            .unwrap()
            .len()
    });
    out.row("set_select_50k_direct", direct);

    let req = Request::new("bench");
    let service = time_median(out.iters, || {
        svc.set_select(&req, &cat, &pred).unwrap().value.len()
    });
    assert_eq!(
        service.result_size, direct.result_size,
        "service answer must match direct execution"
    );
    out.row("set_select_50k_service", service);
}

fn main() {
    let mut out = Out::new();
    let svc = QueryService::default();
    bench_tree(&mut out, &svc);
    bench_set(&mut out, &svc);
    out.table
        .print("B12 — service front-end overhead (unfaulted path)");
    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        std::fs::write(&path, out.json()).expect("write AQUA_BENCH_JSON");
        eprintln!("wrote {path}");
    }
}
