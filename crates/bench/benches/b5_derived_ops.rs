//! B5 — ablation for "split is primitive" (§4/§8): the derived
//! operators (`sub_select`, `all_anc`, `all_desc` defined through
//! `split`) versus the direct `sub_select` implementation. The paper's
//! algebra pays for its small primitive set only a bounded constant
//! factor — not an asymptotic penalty.
//!
//! Columns: direct sub_select ms, via-split sub_select ms, overhead
//! factor, plus all_anc/all_desc ms for scale.

use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_workload::random_tree::RandomTreeGen;

fn factor(a: Timed, b: Timed) -> String {
    format!("{:.2}x", b.secs / a.secs.max(1e-12))
}

fn main() {
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("d(?* a ?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();

    let mut table = Table::new(&[
        "nodes",
        "matches",
        "direct_ms",
        "via_split_ms",
        "overhead",
        "all_anc_ms",
        "all_desc_ms",
    ]);
    for &nodes in &[1_000usize, 5_000, 20_000] {
        let d = RandomTreeGen::new(21)
            .nodes(nodes)
            .label_weights(&[("d", 1), ("a", 5), ("x", 14)])
            .generate();
        let cp = pattern.compile(d.class, d.store.class(d.class)).unwrap();

        let direct = time_median(3, || {
            aqua_algebra::tree::ops::sub_select(&d.store, &d.tree, &cp, &cfg)
                .unwrap()
                .len()
        });
        let derived = time_median(3, || {
            aqua_algebra::tree::ops::sub_select_via_split(&d.store, &d.tree, &cp, &cfg)
                .unwrap()
                .len()
        });
        assert_eq!(direct.result_size, derived.result_size);
        let anc = time_median(3, || {
            aqua_algebra::tree::ops::all_anc(&d.store, &d.tree, &cp, &cfg, |x, y| x.len() + y.len())
                .unwrap()
                .len()
        });
        let desc = time_median(3, || {
            aqua_algebra::tree::ops::all_desc(&d.store, &d.tree, &cp, &cfg, |y, z| {
                y.len() + z.len()
            })
            .unwrap()
            .len()
        });
        table.row(vec![
            nodes.to_string(),
            direct.result_size.to_string(),
            ms(direct),
            ms(derived),
            factor(direct, derived),
            ms(anc),
            ms(desc),
        ]);
    }
    table.print("B5: derived operators via split vs direct implementation (ablation)");
}
