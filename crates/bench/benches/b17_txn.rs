//! B17 — cross-shard transaction commit latency, swept over shard
//! count.
//!
//! Two row families, each at 1/2/4 shards over the *same* four-path
//! `ShardStorm` population:
//!
//! * `commit_1path` — a transaction touching a single path. It always
//!   collapses to one participant, so every cell measures the one-phase
//!   fast path: append + fsync on one shard WAL, no coordinator frame.
//!   This is the control row — it should be flat across shard counts.
//! * `commit_4paths` — one insert + list-push per path. At 1 shard the
//!   four paths share a participant (fast path again); at 2 and 4
//!   shards the commit pays the full presumed-abort 2PC bill: one
//!   durable prepare per participant, a synced coordinator decision
//!   frame, then the outcome fan-out. The x1-vs-x4 gap *is* the
//!   protocol overhead, measured on identical record bytes.
//!
//! Every commit's receipt is asserted (participant count, applied
//! records) before its timing counts. `AQUA_BENCH_QUICK` shrinks the
//! iteration count for the CI gate; `AQUA_BENCH_JSON=<path>` dumps rows
//! for `bench_gate` (gated under `--only b17/`).

use std::fmt::Write as _;
use std::path::PathBuf;

use aqua_bench::timing::{ms, time_median};
use aqua_bench::Table;
use aqua_exec as exec;
use aqua_object::Value;
use aqua_store::{DurableConfig, ShardedConfig, ShardedStore};
use aqua_workload::ShardStorm;

const SHARDS: &[usize] = &[1, 2, 4];
/// Paths the storm spreads over the shards; the 4-path transaction
/// touches all of them, one record each.
const PATHS: usize = 4;

fn iters() -> usize {
    // Commits are fsync-bound (~0.2-2ms each), so per-iteration jitter
    // is high; medians need more samples than the compute benches even
    // in quick mode to keep the CI gate stable.
    aqua_bench::iters_for(120, 40)
}

struct Row {
    name: &'static str,
    mode: String,
    median_ms: f64,
    result_size: usize,
    participants: usize,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"b17\",\"name\":\"{}\",\"mode\":\"{}\",\"median_ms\":{:.4},\
             \"result_size\":{},\"participants\":{}}}",
            self.name, self.mode, self.median_ms, self.result_size, self.participants
        )
    }
}

fn scratch(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aqua-b17-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded_cfg(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        shard: DurableConfig {
            segment_bytes: 64 * 1024,
            checkpoint_every: 0,
            prune: true,
            // Authenticated frames: every prepare/outcome binds the
            // post-apply root, the configuration the chaos matrix runs.
            authenticate: true,
        },
        recovery_threads: 0,
        pin_epoch: None,
    }
}

/// One row family: commit a transaction over `touch` paths, once per
/// timed iteration (each commit appends fresh records — commits are not
/// idempotent, so the population grows across iterations; median timing
/// absorbs the drift).
fn bench_commits(
    table: &mut Table,
    rows: &mut Vec<Row>,
    name: &'static str,
    touch: usize,
    base_ms: &mut [f64],
) {
    let storm = ShardStorm::new(7, PATHS);
    for &shards in SHARDS {
        let dir = scratch(name, shards);
        let (mut ss, _) = ShardedStore::open(&dir, sharded_cfg(shards)).expect("fresh open");
        storm.bootstrap(&mut ss).expect("bootstrap");
        storm.grow(&mut ss, 8).expect("grow");
        ss.sync().expect("sync");
        let classes: Vec<_> = (0..touch)
            .map(|k| {
                let list = storm.list_path(k);
                ss.shard(ss.shard_of(&list))
                    .store()
                    .class_id("Note")
                    .expect("bootstrapped")
            })
            .collect();

        let mut participants = 0usize;
        let t = time_median(iters(), || {
            let mut txn = ss.begin();
            for (k, &class) in classes.iter().enumerate() {
                let list = storm.list_path(k);
                let (_, oid) = txn.insert(&list, class, vec![Value::str("B"), Value::Int(1)]);
                txn.list_push(&list, oid);
            }
            let receipt = ss.commit(&txn).expect("commit");
            assert_eq!(receipt.records, touch * 2, "every buffered record applied");
            participants = receipt.participants.len();
            receipt.records
        });
        let _ = std::fs::remove_dir_all(&dir);
        if shards == 1 {
            base_ms[0] = t.secs;
        }
        let vs_x1 = t.secs / base_ms[0].max(1e-12);
        table.row(vec![
            name.into(),
            format!("shards x{shards}"),
            ms(t),
            format!("{participants}"),
            format!("{vs_x1:.2}x"),
        ]);
        rows.push(Row {
            name,
            mode: format!("shards x{shards}"),
            median_ms: t.secs * 1e3,
            result_size: t.result_size,
            participants,
        });
    }
}

fn main() {
    let host = exec::available_threads();
    let mut table = Table::new(&["phase", "mode", "median ms", "participants", "cost vs x1"]);
    let mut rows = Vec::new();
    let mut base = [0.0f64];
    bench_commits(&mut table, &mut rows, "commit_1path", 1, &mut base);
    let mut base = [0.0f64];
    bench_commits(&mut table, &mut rows, "commit_4paths", PATHS, &mut base);
    table.print(&format!(
        "B17 — cross-shard commit latency: fast path vs presumed-abort 2PC (host threads: {host})"
    ));

    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"b17_txn\",");
        let _ = writeln!(out, "  \"host_threads\": {host},");
        let _ = writeln!(out, "  \"iters\": {},", iters());
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{sep}", r.json());
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write JSON baseline");
        println!("wrote {path}");
    }
}
