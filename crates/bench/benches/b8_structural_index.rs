//! B8 — the structural (pre/postorder interval) index: O(1) ancestor
//! tests and contiguous descendant slices versus parent-chain walks and
//! subtree traversals. This is the access method that keeps
//! `all_anc`/`all_desc`-style context computations cheap on large trees.
//!
//! Sweep: tree size, with a fixed budget of random (u, v) queries.
//! Columns: walk-based ms, index-based ms, speedup, and the one-time
//! index build ms (the amortization cost).

use aqua_algebra::NodeId;
use aqua_bench::timing::{ms, speedup, time_median};
use aqua_bench::Table;
use aqua_store::StructuralIndex;
use aqua_workload::random_tree::RandomTreeGen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    const QUERIES: usize = 100_000;
    let mut t1 = Table::new(&[
        "nodes",
        "anc_walk_ms",
        "anc_index_ms",
        "speedup",
        "build_ms",
    ]);
    for &nodes in &[1_000usize, 10_000, 100_000] {
        let d = RandomTreeGen::new(13).nodes(nodes).max_arity(3).generate();
        let mut rng = StdRng::seed_from_u64(99);
        let pairs: Vec<(NodeId, NodeId)> = (0..QUERIES)
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..nodes as u32)),
                    NodeId(rng.gen_range(0..nodes as u32)),
                )
            })
            .collect();

        let build = time_median(3, || {
            StructuralIndex::build(&d.tree).subtree_size(d.tree.root())
        });
        let idx = StructuralIndex::build(&d.tree);

        let walk = time_median(3, || {
            pairs
                .iter()
                .filter(|&&(u, v)| d.tree.is_ancestor(u, v))
                .count()
        });
        let fast = time_median(3, || {
            pairs
                .iter()
                .filter(|&&(u, v)| idx.is_ancestor(u, v))
                .count()
        });
        assert_eq!(walk.result_size, fast.result_size);
        t1.row(vec![
            nodes.to_string(),
            ms(walk),
            ms(fast),
            speedup(walk, fast),
            ms(build),
        ]);
    }
    t1.print("B8a: ancestor tests — parent-chain walk vs interval index");

    // Descendant enumeration: subtree traversal vs contiguous slice.
    let mut t2 = Table::new(&["nodes", "traverse_ms", "slice_ms", "speedup"]);
    for &nodes in &[10_000usize, 100_000] {
        let d = RandomTreeGen::new(14).nodes(nodes).max_arity(3).generate();
        let idx = StructuralIndex::build(&d.tree);
        let mut rng = StdRng::seed_from_u64(7);
        let probes: Vec<NodeId> = (0..10_000)
            .map(|_| NodeId(rng.gen_range(0..nodes as u32)))
            .collect();
        let traverse = time_median(3, || {
            probes
                .iter()
                .map(|&n| d.tree.iter_preorder_from(n).count())
                .sum::<usize>()
        });
        let slice = time_median(3, || {
            probes
                .iter()
                .map(|&n| idx.descendants(n).len())
                .sum::<usize>()
        });
        assert_eq!(traverse.result_size, slice.result_size);
        t2.row(vec![
            nodes.to_string(),
            ms(traverse),
            ms(slice),
            speedup(traverse, slice),
        ]);
    }
    t2.print("B8b: descendant enumeration — traversal vs preorder slice");
}
