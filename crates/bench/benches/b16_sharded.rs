//! B16 — shard-parallel scaling: parallel recovery of a sharded store
//! and scatter-gather `sub_select`, swept over shard count.
//!
//! Two row families, each at 1/2/4 shards:
//!
//! * `recovery` — cold-opening a `ShardedStore` whose per-shard WALs
//!   hold a `ShardStorm` population (authenticated frames, global root
//!   folded from the per-shard merkle roots). Shards recover in
//!   parallel through the `aqua-exec` pool, so on a multi-core host the
//!   4-shard open should beat the 1-shard open on the *same bytes*.
//! * `scatter_sub_select` — a forest `sub_select` executed as a
//!   scatter-gather plan: members batched by owning shard, one worker
//!   per batch, gather re-sorted to member order. The 1-shard row *is*
//!   the serial loop (one batch ⇒ degree 1), making
//!   `speedup_vs_1shard` the honest shard-parallel win.
//!
//! Every row asserts byte-identity against the 1-shard answer before
//! timing counts — the par≡serial discipline is load-bearing here, not
//! decorative. `AQUA_BENCH_QUICK` shrinks populations for the CI gate;
//! `AQUA_BENCH_JSON=<path>` dumps rows for `bench_gate`, which enforces
//! the ≥2x 4-vs-1-shard floor on hosts with ≥4 cores.

use std::fmt::Write as _;
use std::path::PathBuf;

use aqua_algebra::bulk::TreeSet;
use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_exec as exec;
use aqua_guard::{Budget, SharedGuard};
use aqua_optimizer::{Catalog, Explain, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_store::{DurableConfig, ShardRouter, ShardedConfig, ShardedStore};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::ShardStorm;

const SHARDS: &[usize] = &[1, 2, 4];

fn iters() -> usize {
    aqua_bench::iters_for(7, 3)
}

struct Row {
    name: &'static str,
    mode: String,
    timed: Timed,
    speedup: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"b16\",\"name\":\"{}\",\"mode\":\"{}\",\"median_ms\":{:.4},\
             \"result_size\":{},\"speedup_vs_1shard\":{:.3}}}",
            self.name,
            self.mode,
            self.timed.secs * 1e3,
            self.timed.result_size,
            self.speedup
        )
    }
}

fn scratch(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aqua-b16-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded_cfg(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        shard: DurableConfig {
            segment_bytes: 64 * 1024,
            checkpoint_every: 0,
            prune: true,
            // Authenticated: recovery re-derives every per-shard root
            // and folds the global root — the cost the tentpole claims
            // parallelizes, so it stays in the measurement.
            authenticate: true,
        },
        recovery_threads: 0,
        pin_epoch: None,
    }
}

/// Parallel recovery: same storm, same per-path bytes, 1/2/4 WAL
/// streams. The open replays every shard and folds the global root.
fn bench_recovery(table: &mut Table, rows: &mut Vec<Row>) {
    let (paths, target) = if aqua_bench::quick() {
        (8, 60)
    } else {
        (8, 200)
    };
    let storm = ShardStorm::new(7, paths);
    let mut base_ms = 0.0;
    let mut base_fp = String::new();
    for &shards in SHARDS {
        let dir = scratch("recover", shards);
        {
            let (mut ss, _) = ShardedStore::open(&dir, sharded_cfg(shards)).expect("fresh open");
            storm.bootstrap(&mut ss).expect("bootstrap");
            storm.grow(&mut ss, target).expect("grow");
            ss.sync().expect("sync");
        }
        let t = time_median(iters(), || {
            let (ss, rep) = ShardedStore::open(&dir, sharded_cfg(shards)).expect("recovering open");
            assert_eq!(rep.shards.len(), shards);
            let fp = storm.fingerprint(&ss);
            if base_fp.is_empty() {
                base_fp = fp.clone();
            }
            assert_eq!(fp, base_fp, "recovered answers drift across shard counts");
            rep.frames_replayed() as usize
        });
        let _ = std::fs::remove_dir_all(&dir);
        if shards == 1 {
            base_ms = t.secs;
        }
        let speedup = base_ms / t.secs.max(1e-12);
        table.row(vec![
            "recovery".into(),
            format!("shards x{shards}"),
            ms(t),
            format!("{speedup:.2}x"),
            t.result_size.to_string(),
        ]);
        rows.push(Row {
            name: "recovery",
            mode: format!("shards x{shards}"),
            timed: t,
            speedup,
        });
    }
}

/// Scatter-gather query: the same forest `sub_select`, members routed
/// to their owning shard, one worker per shard batch.
fn bench_scatter(table: &mut Table, rows: &mut Vec<Row>) {
    let (members, nodes) = if aqua_bench::quick() {
        (40, 500)
    } else {
        (200, 500)
    };
    let f = RandomTreeGen::new(42)
        .nodes(nodes)
        .label_weights(&[("d", 1), ("x", 99)])
        .generate_forest(members);
    let set = TreeSet::from_trees(f.trees);
    let cats: Vec<Catalog<'_>> = set
        .members()
        .iter()
        .map(|_| Catalog::new(&f.store, f.class))
        .collect();
    let pattern = parse_tree_pattern("d(?*)", &PredEnv::with_default_attr("label")).unwrap();
    let cfg = MatchConfig::first_per_root();
    let opt = Optimizer::new(&cats[0]);
    let sizes: Vec<usize> = set.members().iter().map(aqua_algebra::Tree::len).collect();

    let mut base_ms = 0.0;
    let mut base_size = usize::MAX;
    for &shards in SHARDS {
        let router = ShardRouter::new(shards);
        let (plan, _) = opt
            .plan_forest_sub_select_sharded(&pattern, &sizes, shards, shards)
            .unwrap();
        let t = time_median(iters(), || {
            let fleet = SharedGuard::new(Budget::unlimited());
            let mut explain = Explain::default();
            plan.execute_scatter_gather(
                &cats,
                &set,
                &cfg,
                shards,
                |i| router.route_name(&format!("m{i}/doc")),
                Some(&fleet),
                &mut explain,
            )
            .unwrap()
            .len()
        });
        if shards == 1 {
            base_ms = t.secs;
            base_size = t.result_size;
        }
        assert_eq!(
            t.result_size, base_size,
            "scatter-gather answer must match the 1-shard (serial) answer"
        );
        let speedup = base_ms / t.secs.max(1e-12);
        table.row(vec![
            "scatter_sub_select".into(),
            format!("shards x{shards}"),
            ms(t),
            format!("{speedup:.2}x"),
            t.result_size.to_string(),
        ]);
        rows.push(Row {
            name: "scatter_sub_select",
            mode: format!("shards x{shards}"),
            timed: t,
            speedup,
        });
    }
}

fn main() {
    let host = exec::available_threads();
    let mut table = Table::new(&["phase", "mode", "median ms", "speedup vs x1", "results"]);
    let mut rows = Vec::new();
    bench_recovery(&mut table, &mut rows);
    bench_scatter(&mut table, &mut rows);
    table.print(&format!(
        "B16 — sharded recovery + scatter-gather scaling (host threads: {host})"
    ));

    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"b16_sharded\",");
        let _ = writeln!(out, "  \"host_threads\": {host},");
        let _ = writeln!(out, "  \"iters\": {},", iters());
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{sep}", r.json());
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write JSON baseline");
        println!("wrote {path}");
    }
}
