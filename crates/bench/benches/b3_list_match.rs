//! B3 — tractability of the list pattern language (§3.1: regular
//! expressions were chosen for their known tractability).
//!
//! Three claims:
//!   (a) a non-overlapping scan is linear in list length,
//!   (b) cost grows politely (≈ linearly) with pattern size,
//!   (c) the pathological `(A|A)^k A*` family shows no exponential
//!       blowup (the Pike-VM never backtracks).
//!
//! Columns: time, and ns per element (should be ~flat down each sweep).

use aqua_bench::timing::{ms, time_median};
use aqua_bench::Table;
use aqua_pattern::ast::Re;
use aqua_pattern::list::{ListPattern, MatchMode, Sym};
use aqua_pattern::PredExpr;
use aqua_workload::SongGen;

fn pitch(p: &str) -> Re<Sym> {
    Sym::pred(PredExpr::eq("pitch", p))
}

fn main() {
    // (a) length sweep, fixed melody pattern [A ? ? F].
    let mut t1 = Table::new(&["notes", "scan_ms", "ns_per_note", "matches"]);
    let re = pitch("A")
        .then(Sym::any())
        .then(Sym::any())
        .then(pitch("F"));
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let d = SongGen::new(7).notes(n).generate();
        let p = ListPattern::unanchored(re.clone(), d.class, d.store.class(d.class)).unwrap();
        let oids = d.song.oids();
        let m = time_median(3, || {
            p.find_matches(&d.store, &oids, MatchMode::Nonoverlapping)
                .len()
        });
        t1.row(vec![
            n.to_string(),
            ms(m),
            format!("{:.0}", m.secs * 1e9 / n as f64),
            m.result_size.to_string(),
        ]);
    }
    t1.print("B3a: non-overlapping list scan scales linearly in list length");

    // (b) pattern-size sweep on a fixed list.
    let d = SongGen::new(9).notes(50_000).generate();
    let oids = d.song.oids();
    let mut t2 = Table::new(&["pattern_terms", "scan_ms", "nfa_states"]);
    for &k in &[2usize, 4, 8, 16, 32] {
        let mut re = pitch("A");
        for _ in 1..k {
            re = re.then(Sym::any());
        }
        let p = ListPattern::unanchored(re, d.class, d.store.class(d.class)).unwrap();
        let m = time_median(3, || {
            p.find_matches(&d.store, &oids, MatchMode::Nonoverlapping)
                .len()
        });
        t2.row(vec![k.to_string(), ms(m), p.nfa_size().to_string()]);
    }
    t2.print("B3b: cost grows ~linearly with pattern length");

    // (c) pathological (A|A)^k A* — exponential for backtrackers.
    let all_a = SongGen::new(1).notes(64).plant(vec!["A"; 64], 1).generate();
    let a_oids = all_a.song.oids();
    let mut t3 = Table::new(&["k", "match_ms", "accepted"]);
    for &k in &[4usize, 8, 16, 24] {
        let mut re = pitch("A").or(pitch("A"));
        for _ in 1..k {
            re = re.then(pitch("A").or(pitch("A")));
        }
        re = re.then(pitch("A").star());
        let p = ListPattern::unanchored(re, all_a.class, all_a.store.class(all_a.class)).unwrap();
        let m = time_median(3, || usize::from(p.is_match(&all_a.store, &a_oids)));
        t3.row(vec![k.to_string(), ms(m), m.result_size.to_string()]);
    }
    t3.print("B3c: (A|A)^k A* on A^64 — no exponential blowup (Pike VM)");

    // (d) NFA Pike VM vs lazy DFA on the same scan.
    let mut t4 = Table::new(&["notes", "nfa_ms", "dfa_ms", "speedup", "dfa_states"]);
    let re = pitch("A")
        .then(Sym::any())
        .then(Sym::any())
        .then(pitch("F"));
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let d = SongGen::new(7).notes(n).generate();
        let p = ListPattern::unanchored(re.clone(), d.class, d.store.class(d.class)).unwrap();
        let oids = d.song.oids();
        let nfa_t = time_median(3, || {
            p.find_matches(&d.store, &oids, MatchMode::Nonoverlapping)
                .len()
        });
        let mut dfa = aqua_pattern::dfa::ListDfa::new(&p).unwrap();
        let dfa_t = time_median(3, || dfa.find_nonoverlapping(&d.store, &oids).len());
        assert_eq!(nfa_t.result_size, dfa_t.result_size);
        t4.row(vec![
            n.to_string(),
            ms(nfa_t),
            ms(dfa_t),
            format!("{:.1}x", nfa_t.secs / dfa_t.secs.max(1e-12)),
            dfa.materialized_states().to_string(),
        ]);
    }
    t4.print("B3d: Pike-VM scan vs lazy-DFA scan (ablation)");
}
