//! B2 — the relational analogy of §4: a conjunctive `select` over an
//! extent, decomposed so one conjunct is answered by an index.
//!
//! Sweep: extent size × probe-conjunct selectivity.
//! Columns: full scan ms, indexed plan ms, speedup, hits.

use aqua_bench::timing::{ms, speedup, time_median};
use aqua_bench::Table;
use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, ObjectStore, Value};
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::PredExpr;
use aqua_store::{AttrIndex, ColumnStats};

fn build_extent(n: usize, distinct_a: i64) -> (ObjectStore, aqua_object::ClassId) {
    let mut store = ObjectStore::new();
    let class = store
        .define_class(
            ClassDef::new(
                "P",
                vec![
                    AttrDef::stored("a", AttrType::Int),
                    AttrDef::stored("b", AttrType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    for i in 0..n as i64 {
        store
            .insert_named(
                "P",
                &[("a", Value::Int(i % distinct_a)), ("b", Value::Int(i % 7))],
            )
            .unwrap();
    }
    (store, class)
}

fn main() {
    let mut table = Table::new(&["extent", "sel%", "scan_ms", "indexed_ms", "speedup", "hits"]);
    for &n in &[10_000usize, 100_000] {
        for &distinct in &[1000i64, 100, 10] {
            let (store, class) = build_extent(n, distinct);
            let ia = AttrIndex::build(&store, class, AttrId(0));
            let sa = ColumnStats::build(&store, class, AttrId(0));
            let mut cat = Catalog::new(&store, class);
            cat.add_attr_index(&ia).add_stats(&sa);
            let opt = Optimizer::new(&cat);

            // a = 3 (selectivity 1/distinct) AND b = 2 (1/7).
            let pred = PredExpr::eq("a", 3).and(PredExpr::eq("b", 2));
            let (plan, _) = opt.plan_set_select(&pred).unwrap();
            assert!(plan.is_indexed());

            let compiled = pred.compile(class, store.class(class)).unwrap();
            let naive = time_median(5, || {
                store
                    .extent(class)
                    .iter()
                    .filter(|&&o| compiled.eval(&store, o))
                    .count()
            });
            let fast = time_median(5, || plan.execute(&cat).unwrap().len());
            assert_eq!(naive.result_size, fast.result_size);
            table.row(vec![
                n.to_string(),
                format!("{:.2}", 100.0 / distinct as f64),
                ms(naive),
                ms(fast),
                speedup(naive, fast),
                fast.result_size.to_string(),
            ]);
        }
    }
    table.print("B2: conjunctive select — extent scan vs index probe + residual (paper §4)");
}
