//! B11 — parallel bulk scan scaling: `TreeSet::par_sub_select` over a
//! forest, sweeping worker count × forest size × predicate selectivity.
//!
//! Stability makes the parallel answer byte-identical to the serial one
//! (asserted every run), so this bench isolates the *cost* of the fleet:
//! shard + steal + index-sorted merge against the serial loop. On a
//! multi-core host the 100k-node forest should scale with the worker
//! count; on a single-core host (CI containers — check the `host_threads`
//! field in the JSON) every degree collapses onto serial time and the
//! interesting number is the overhead, which should stay within noise.
//!
//! Set `AQUA_BENCH_JSON=<path>` to also write the rows as a JSON
//! baseline (see `BENCH_baseline.json` at the repo root), and
//! `AQUA_BENCH_QUICK` for the CI profile: fewer iterations and a
//! `[1, 4]` thread sweep, same workload sizes.

use std::fmt::Write as _;

use aqua_algebra::bulk::TreeSet;
use aqua_bench::timing::{ms, time_median, Timed};
use aqua_bench::Table;
use aqua_exec as exec;
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_workload::random_tree::RandomTreeGen;

fn iters() -> usize {
    aqua_bench::iters_for(7, 5)
}

fn threads() -> &'static [usize] {
    if aqua_bench::quick() {
        &[1, 4]
    } else {
        &[1, 2, 4, 8]
    }
}

struct Row {
    members: usize,
    nodes_per: usize,
    selectivity: &'static str,
    mode: String,
    timed: Timed,
    speedup: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"b11\",\"members\":{},\"nodes_per_member\":{},\"total_nodes\":{},\
             \"selectivity\":\"{}\",\"mode\":\"{}\",\"median_ms\":{:.4},\"result_size\":{},\
             \"speedup_vs_serial\":{:.3}}}",
            self.members,
            self.nodes_per,
            self.members * self.nodes_per,
            self.selectivity,
            self.mode,
            self.timed.secs * 1e3,
            self.timed.result_size,
            self.speedup
        )
    }
}

fn sweep(
    members: usize,
    nodes_per: usize,
    weights: &[(&str, u32)],
    selectivity: &'static str,
    table: &mut Table,
    rows: &mut Vec<Row>,
) {
    let f = RandomTreeGen::new(42)
        .nodes(nodes_per)
        .label_weights(weights)
        .generate_forest(members);
    let set = TreeSet::from_trees(f.trees);
    let compiled = parse_tree_pattern("d(?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(f.class, f.store.class(f.class))
        .unwrap();
    let cfg = MatchConfig::first_per_root();

    let serial = time_median(iters(), || {
        set.sub_select(&f.store, &compiled, &cfg).unwrap().len()
    });
    let total = members * nodes_per;
    let mut emit = |mode: String, timed: Timed| {
        table.row(vec![
            format!("{members}x{nodes_per} ({total})"),
            selectivity.into(),
            mode.clone(),
            ms(timed),
            format!("{:.2}x", serial.secs / timed.secs.max(1e-12)),
            timed.result_size.to_string(),
        ]);
        rows.push(Row {
            members,
            nodes_per,
            selectivity,
            mode,
            timed,
            speedup: serial.secs / timed.secs.max(1e-12),
        });
    };
    emit("serial".into(), serial);
    for &t in threads() {
        let par = time_median(iters(), || {
            set.par_sub_select(&f.store, &compiled, &cfg, t, None)
                .unwrap()
                .len()
        });
        assert_eq!(
            par.result_size, serial.result_size,
            "parallel answer must match serial"
        );
        emit(format!("par x{t}"), par);
    }
}

fn main() {
    let host = exec::available_threads();
    let mut table = Table::new(&[
        "forest (nodes)",
        "selectivity",
        "mode",
        "median ms",
        "speedup",
        "results",
    ]);
    let mut rows = Vec::new();

    // Size sweep at ~1% selectivity, up to the 100k-node forest.
    sweep(
        40,
        500,
        &[("d", 1), ("x", 99)],
        "~1%",
        &mut table,
        &mut rows,
    );
    sweep(
        200,
        500,
        &[("d", 1), ("x", 99)],
        "~1%",
        &mut table,
        &mut rows,
    );
    // Selectivity sweep at the big size: denser matches, bigger merges.
    sweep(
        200,
        500,
        &[("d", 1), ("x", 4)],
        "~20%",
        &mut table,
        &mut rows,
    );

    table.print(&format!(
        "B11 — parallel bulk sub_select scaling (host threads: {host})"
    ));

    if let Ok(path) = std::env::var("AQUA_BENCH_JSON") {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"b11_parallel_scaling\",");
        let _ = writeln!(out, "  \"host_threads\": {host},");
        let _ = writeln!(out, "  \"iters\": {},", iters());
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{sep}", r.json());
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write JSON baseline");
        println!("wrote {path}");
    }
}
