//! B7 — memoization ablation for the tree matcher.
//!
//! The matcher memoizes `(subpattern, node)` booleans, which matters
//! most for *closure* patterns (Figure 2's `[[a(b c α)]]^{*α}` family),
//! where evaluating the pattern at a node recursively evaluates it at
//! the node's descendants. The subject is the chain closure
//!
//!     [[a(@x)]]+@x
//!
//! evaluated at **every** node of a path-shaped tree of `a`s: each
//! suffix of the path is a chain, so every node matches — but without
//! memoization, `matches_at(depth k)` re-walks the whole remaining path,
//! Θ(n²) in total, while the memo shares suffix answers across roots,
//! Θ(n) in total. The speedup column should grow linearly with size.

use aqua_bench::timing::{ms, speedup, time_median};
use aqua_bench::Table;
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::{TreeAccess, TreeMatcher};
use aqua_workload::random_tree::RandomTreeGen;

fn main() {
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("[[a(@x)]]+@x", &env).unwrap();
    let mut table = Table::new(&[
        "nodes",
        "depth",
        "memo_ms",
        "no_memo_ms",
        "memo_speedup",
        "hits",
    ]);

    for &nodes in &[250usize, 500, 1000, 2000] {
        // max_arity(1) makes the tree a single path of `a`s.
        let d = RandomTreeGen::new(3)
            .nodes(nodes)
            .max_arity(1)
            .label_weights(&[("a", 1)])
            .generate();
        let cp = pattern.compile(d.class, d.store.class(d.class)).unwrap();
        let all_nodes: Vec<u32> = (0..TreeAccess::node_count(&d.tree) as u32).collect();

        let with = time_median(3, || {
            let mut m = TreeMatcher::new(&cp, &d.tree, &d.store);
            all_nodes.iter().filter(|&&n| m.matches_at(n)).count()
        });
        let without = time_median(3, || {
            let mut m = TreeMatcher::new(&cp, &d.tree, &d.store);
            m.memoize = false;
            all_nodes.iter().filter(|&&n| m.matches_at(n)).count()
        });
        assert_eq!(with.result_size, without.result_size);
        table.row(vec![
            nodes.to_string(),
            d.tree.height().to_string(),
            ms(with),
            ms(without),
            speedup(without, with),
            with.result_size.to_string(),
        ]);
    }
    table.print("B7: memoization ablation on the Figure-2 chain closure");
}
