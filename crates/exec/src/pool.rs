//! The scoped-thread work-stealing pool.
//!
//! One pool invocation = one bulk operator call. Workers are
//! `std::thread::scope` threads (they may borrow the store, the compiled
//! pattern, the member slice — everything is shared `&`-only), sharded
//! over contiguous index ranges. An idle worker steals the back half of
//! a victim's remaining range, so skewed member costs still balance.
//!
//! Determinism contract: every produced result carries its input index
//! and the merge sorts on it, so the output `Vec` is byte-identical to
//! the serial loop's regardless of schedule. On failure the error
//! reported is the one at the smallest input index any worker observed,
//! and — when a [`SharedGuard`] is in play — guard verdicts are
//! re-stamped with the fleet-wide merged [`Progress`](aqua_guard::Progress)
//! by the caller via [`SharedGuard::verdict`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use aqua_guard::{ExecGuard, SharedGuard};

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A shared cap on pool workers across concurrent bulk operations — the
/// backpressure hook a serving layer puts in front of
/// [`try_par_map_guarded`]. Each submission [`WorkerPermits::acquire`]s
/// permits before
/// spawning workers; when the machine is saturated the call blocks (a
/// queue, not a spin), and a late submission that can only get one
/// permit simply runs serially inline. Dropping the returned [`Permits`]
/// releases the slots and wakes one waiter.
#[derive(Debug)]
pub struct WorkerPermits {
    cap: usize,
    inner: Arc<PermitInner>,
}

#[derive(Debug)]
struct PermitInner {
    in_use: Mutex<usize>,
    freed: Condvar,
}

impl WorkerPermits {
    /// A permit pool with `cap` total worker slots (minimum 1).
    pub fn new(cap: usize) -> WorkerPermits {
        WorkerPermits {
            cap: cap.max(1),
            inner: Arc::new(PermitInner {
                in_use: Mutex::new(0),
                freed: Condvar::new(),
            }),
        }
    }

    /// Total worker slots.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        *lock(&self.inner.in_use)
    }

    /// Block until at least one slot is free, then take up to `want`
    /// (at least 1) of the free slots. Degrading the grant instead of
    /// waiting for all `want` keeps latency bounded under load: a
    /// starved submission runs narrower rather than queueing longer.
    pub fn acquire(&self, want: usize) -> Permits {
        let want = want.clamp(1, self.cap);
        let mut in_use = lock(&self.inner.in_use);
        while *in_use >= self.cap {
            in_use = self
                .inner
                .freed
                .wait(in_use)
                .unwrap_or_else(|p| p.into_inner());
        }
        let granted = want.min(self.cap - *in_use);
        *in_use += granted;
        Permits {
            granted,
            inner: Arc::clone(&self.inner),
        }
    }
}

/// RAII grant from [`WorkerPermits::acquire`]; releases its slots and
/// wakes waiters on drop.
#[derive(Debug)]
#[must_use = "dropping the grant releases the worker slots"]
pub struct Permits {
    granted: usize,
    inner: Arc<PermitInner>,
}

impl Permits {
    /// Number of worker slots granted — the thread count to hand to
    /// [`try_par_map_guarded`].
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for Permits {
    fn drop(&mut self) {
        let mut in_use = lock(&self.inner.in_use);
        *in_use -= self.granted;
        drop(in_use);
        self.inner.freed.notify_all();
    }
}

/// One worker's slice of the input: a half-open index range behind a
/// mutex so thieves can carve off the back half. Uncontended in the
/// common case — the lock is per-item, the work per item is a whole
/// tree/list match.
struct Shard {
    range: Mutex<(usize, usize)>,
}

impl Shard {
    fn new(lo: usize, hi: usize) -> Shard {
        Shard {
            range: Mutex::new((lo, hi)),
        }
    }

    /// The owner takes a contiguous run of up to `max` items from the
    /// front. Chunked popping keeps workers on cache-adjacent members
    /// and takes the shard lock once per run instead of once per item;
    /// thieves still carve the back half, so balance is preserved.
    fn pop_run(&self, max: usize) -> Option<(usize, usize)> {
        let mut r = lock(&self.range);
        if r.0 < r.1 {
            let hi = (r.0 + max).min(r.1);
            let run = (r.0, hi);
            r.0 = hi;
            Some(run)
        } else {
            None
        }
    }

    /// A thief takes the back half (rounded up) of what remains.
    fn steal(&self) -> Option<(usize, usize)> {
        let mut r = lock(&self.range);
        let remaining = r.1 - r.0;
        if remaining == 0 {
            return None;
        }
        let take = remaining.div_ceil(2);
        let stolen = (r.1 - take, r.1);
        r.1 -= take;
        Some(stolen)
    }

    fn install(&self, range: (usize, usize)) {
        *lock(&self.range) = range;
    }
}

/// One worker's run loop: drain own shard in contiguous chunks, then
/// steal until the forest is exhausted or someone aborted.
fn run_worker<T, R, E, F>(
    me: usize,
    shards: &[Shard],
    items: &[T],
    chunk: usize,
    abort: &AtomicBool,
    guard: Option<&ExecGuard>,
    f: &F,
) -> Result<Vec<(usize, R)>, (usize, E)>
where
    F: Fn(usize, &T, Option<&ExecGuard>) -> Result<R, E>,
{
    let mut out = Vec::new();
    let obs = guard.and_then(ExecGuard::metrics);
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let (lo, hi) = match shards[me].pop_run(chunk) {
            Some(run) => run,
            None => {
                let mut stolen = None;
                for (v, shard) in shards.iter().enumerate() {
                    if v == me {
                        continue;
                    }
                    if let Some(range) = shard.steal() {
                        stolen = Some(range);
                        break;
                    }
                }
                match stolen {
                    // Install the loot and pop a chunk of it next turn.
                    Some(range) => {
                        if let Some(m) = obs {
                            m.pool_steals.inc();
                        }
                        shards[me].install(range);
                        continue;
                    }
                    None => break,
                }
            }
        };
        for (idx, item) in items.iter().enumerate().take(hi).skip(lo) {
            // Abort promptly even mid-run: unfinished items just never
            // reach the merge (the caller reports the first error).
            if abort.load(Ordering::Relaxed) {
                return Ok(out);
            }
            if let Some(m) = obs {
                m.pool_items.inc();
            }
            match f(idx, item, guard) {
                Ok(r) => out.push((idx, r)),
                Err(e) => {
                    abort.store(true, Ordering::Relaxed);
                    return Err((idx, e));
                }
            }
        }
    }
    Ok(out)
}

/// Items per shard-lock acquisition: coarse enough to amortize the lock
/// and keep a worker on cache-adjacent members, fine enough that the
/// back-half steal still balances skewed member costs.
pub(crate) fn run_chunk(n: usize, threads: usize) -> usize {
    (n / (threads.max(1) * 8)).clamp(1, 64)
}

/// Map `f` over `items` on up to `threads` workers, merging results in
/// input order, with an optional fleet guard. `f` receives the input
/// index, the item, and this worker's guard (minted from `shared`).
///
/// With `threads <= 1` (or ≤ 1 item) no thread is spawned: the items run
/// inline, still under a single worker guard when `shared` is given, so
/// serial and parallel callers share one code path and one guard
/// semantics.
pub fn try_par_map_guarded<T, R, E, F>(
    items: &[T],
    threads: usize,
    shared: Option<&SharedGuard>,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T, Option<&ExecGuard>) -> Result<R, E> + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        let guard = shared.map(|s| s.worker());
        let obs = guard.as_ref().and_then(ExecGuard::metrics);
        if let Some(m) = obs {
            m.pool_workers.inc();
        }
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.iter().enumerate() {
            let r = f(i, item, guard.as_ref());
            if let Some(g) = &guard {
                g.flush();
                if let Some(m) = obs {
                    m.pool_items.inc();
                    m.pool_flushes.inc();
                }
            }
            out.push(r?);
        }
        return Ok(out);
    }

    let shards: Vec<Shard> = (0..threads)
        .map(|w| Shard::new(n * w / threads, n * (w + 1) / threads))
        .collect();
    let chunk = run_chunk(n, threads);
    let abort = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for me in 0..threads {
            let shards = &shards;
            let abort = &abort;
            let results = &results;
            let first_err = &first_err;
            let f = &f;
            scope.spawn(move || {
                let guard = shared.map(|s| s.worker());
                if let Some(m) = guard.as_ref().and_then(ExecGuard::metrics) {
                    m.pool_workers.inc();
                }
                let run = run_worker(me, shards, items, chunk, abort, guard.as_ref(), f);
                if let Some(g) = &guard {
                    g.flush();
                    if let Some(m) = g.metrics() {
                        m.pool_flushes.inc();
                    }
                }
                match run {
                    Ok(part) => lock(results).extend(part),
                    Err((idx, e)) => {
                        let mut slot = lock(first_err);
                        // Keep the smallest-index failure: with abort
                        // racing, that is the deterministic choice.
                        match &*slot {
                            Some((best, _)) if *best <= idx => {}
                            _ => *slot = Some((idx, e)),
                        }
                    }
                }
            });
        }
    });

    if let Some((_, e)) = first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    let mut pairs = results.into_inner().unwrap_or_else(|p| p.into_inner());
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n, "no aborts, so every item produced");
    Ok(pairs.into_iter().map(|(_, r)| r).collect())
}

/// Fallible order-preserving parallel map, no guard.
pub fn try_par_map<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_guarded(items, threads, None, |i, t, _| f(i, t))
}

/// Infallible order-preserving parallel map.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_par_map_guarded(items, threads, None, |i, t, _| {
        Ok::<R, std::convert::Infallible>(f(i, t))
    }) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_guard::{Budget, CancelToken, GuardError, Resource};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn uneven_costs_still_merge_in_order() {
        // Front-loaded cost: without stealing this serializes on worker 0.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, 4, |_, &x| {
            let spin = if x < 8 { 20_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k ^ x as u64);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn error_reports_smallest_index() {
        let items: Vec<usize> = (0..100).collect();
        let err =
            try_par_map(&items, 4, |_, &x| if x % 10 == 0 { Err(x) } else { Ok(x) }).unwrap_err();
        assert_eq!(err % 10, 0);
        // Item 0 always fails before worker 0 does anything else.
        assert_eq!(err, 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(par_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42u8], 8, |_, &x| x), vec![42]);
    }

    #[test]
    fn fleet_budget_stops_all_workers() {
        let shared = SharedGuard::new(Budget::unlimited().with_steps(5_000));
        let items: Vec<u64> = (0..64).collect();
        let err = try_par_map_guarded(&items, 4, Some(&shared), |_, _, g| {
            let g = g.expect("pool mints worker guards");
            for _ in 0..10_000 {
                g.step()?;
            }
            Ok::<(), GuardError>(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                ..
            }
        ));
        let v = shared.verdict().expect("verdict recorded for the fleet");
        assert!(v.progress().steps >= 5_000);
    }

    #[test]
    fn cancellation_stops_the_fleet() {
        let token = CancelToken::new();
        token.cancel();
        let shared = SharedGuard::cancellable(token);
        let items: Vec<u64> = (0..16).collect();
        let err = try_par_map_guarded(&items, 4, Some(&shared), |_, _, g| {
            g.expect("worker guard").checkpoint()?;
            Ok::<(), GuardError>(())
        })
        .unwrap_err();
        assert!(matches!(err, GuardError::Cancelled { .. }));
    }

    #[test]
    fn permits_grant_and_release() {
        let permits = WorkerPermits::new(4);
        assert_eq!(permits.cap(), 4);
        let a = permits.acquire(3);
        assert_eq!(a.granted(), 3);
        assert_eq!(permits.in_use(), 3);
        // Only one slot left: the grant degrades instead of waiting.
        let b = permits.acquire(4);
        assert_eq!(b.granted(), 1);
        assert_eq!(permits.in_use(), 4);
        drop(a);
        assert_eq!(permits.in_use(), 1);
        let c = permits.acquire(8);
        assert_eq!(c.granted(), 3, "want clamped to cap minus in-use");
    }

    #[test]
    fn permits_block_until_freed() {
        let permits = std::sync::Arc::new(WorkerPermits::new(2));
        let all = permits.acquire(2);
        let (tx, rx) = std::sync::mpsc::channel();
        let p2 = std::sync::Arc::clone(&permits);
        let waiter = std::thread::spawn(move || {
            let got = p2.acquire(1);
            tx.send(got.granted()).unwrap();
        });
        // The waiter cannot proceed while both slots are held.
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
        drop(all);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            1
        );
        waiter.join().unwrap();
    }

    #[test]
    fn chunk_sizing_amortizes_without_starving_thieves() {
        assert_eq!(run_chunk(0, 4), 1);
        assert_eq!(run_chunk(7, 8), 1);
        assert_eq!(run_chunk(1024, 4), 32);
        assert_eq!(run_chunk(1_000_000, 4), 64, "clamped");
    }

    #[test]
    fn serial_inline_path_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let a = par_map(&items, 1, |_, &x| x + 1);
        let b = par_map(&items, 7, |_, &x| x + 1);
        assert_eq!(a, b);
    }
}
