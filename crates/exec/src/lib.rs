//! # aqua-exec — parallel bulk execution
//!
//! The AQUA bulk operators are *stable*: result order is fixed by input
//! order, never by evaluation order (paper §2). That makes mapping over
//! the members of a `Set[Tree]` / `Set[List]` embarrassingly parallel —
//! any schedule produces the same answer as the serial loop, as long as
//! results are merged back in input order. This crate supplies that
//! schedule:
//!
//! * [`pool`] — a hand-rolled scoped-thread work-stealing pool (the
//!   workspace builds offline; no rayon). Members are sharded into
//!   contiguous per-worker ranges; idle workers steal the back half of
//!   the largest victim. Results carry their input index and are merged
//!   by sorting on it, so parallel output is byte-identical to serial.
//! * [`Parallelism`] — the knob callers and the optimizer thread
//!   through: serial, a fixed degree, or auto (hardware parallelism).
//!
//! Guarded variants mint one worker [`ExecGuard`](aqua_guard::ExecGuard)
//! per thread from a [`SharedGuard`](aqua_guard::SharedGuard), so one
//! budget / cancel token spans the fleet and the first verdict stops
//! every worker.

pub mod pool;

pub use pool::{par_map, try_par_map, try_par_map_guarded, Permits, WorkerPermits};

/// Hardware parallelism available to this process (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How many workers a bulk operator should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker: the serial path, exactly as before.
    Serial,
    /// Use [`available_threads`].
    #[default]
    Auto,
    /// An explicit worker count (clamped to ≥ 1).
    Fixed(usize),
}

impl Parallelism {
    /// Resolve to a concrete degree for `members` work items. Never more
    /// workers than items, never fewer than one.
    pub fn resolve(self, members: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => available_threads(),
            Parallelism::Fixed(n) => n.max(1),
        };
        cap.min(members.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_clamps() {
        assert_eq!(Parallelism::Serial.resolve(100), 1);
        assert_eq!(Parallelism::Fixed(8).resolve(3), 3);
        assert_eq!(Parallelism::Fixed(0).resolve(3), 1);
        assert_eq!(Parallelism::Fixed(2).resolve(0), 1);
        assert!(Parallelism::Auto.resolve(64) >= 1);
    }
}
