//! # aqua-exec — parallel bulk execution
//!
//! The AQUA bulk operators are *stable*: result order is fixed by input
//! order, never by evaluation order (paper §2). That makes mapping over
//! the members of a `Set[Tree]` / `Set[List]` embarrassingly parallel —
//! any schedule produces the same answer as the serial loop, as long as
//! results are merged back in input order. This crate supplies that
//! schedule:
//!
//! * [`pool`] — a hand-rolled scoped-thread work-stealing pool (the
//!   workspace builds offline; no rayon). Members are sharded into
//!   contiguous per-worker ranges; idle workers steal the back half of
//!   the largest victim. Results carry their input index and are merged
//!   by sorting on it, so parallel output is byte-identical to serial.
//! * [`Parallelism`] — the knob callers and the optimizer thread
//!   through: serial, a fixed degree, or auto (hardware parallelism).
//!
//! Guarded variants mint one worker [`ExecGuard`](aqua_guard::ExecGuard)
//! per thread from a [`SharedGuard`](aqua_guard::SharedGuard), so one
//! budget / cancel token spans the fleet and the first verdict stops
//! every worker.

pub mod pool;

pub use pool::{par_map, try_par_map, try_par_map_guarded, Permits, WorkerPermits};

/// Hardware parallelism available to this process (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How many workers a bulk operator should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker: the serial path, exactly as before.
    Serial,
    /// Use [`available_threads`].
    #[default]
    Auto,
    /// An explicit worker count (clamped to ≥ 1).
    Fixed(usize),
}

impl Parallelism {
    /// Resolve to a concrete degree for `members` work items. Never more
    /// workers than items, never fewer than one.
    pub fn resolve(self, members: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => available_threads(),
            Parallelism::Fixed(n) => n.max(1),
        };
        cap.min(members.max(1))
    }
}

/// One shard's slice of a scatter-gather plan: the member indices (into
/// the original set, ascending) whose work the owning shard executes.
/// Batches are the parallel work items of sharded execution — one
/// worker takes a whole batch, runs its members in index order, and the
/// gather phase re-sorts emitted results by member index, so the
/// par≡serial byte-identity discipline is preserved by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBatch {
    /// The shard that owns every member in this batch.
    pub shard: usize,
    /// Member indices routed to that shard, ascending.
    pub members: Vec<usize>,
}

/// Group `members` work items into per-shard [`ShardBatch`]es.
/// `shard_of(i)` names the shard owning member `i`; batches come back
/// ordered by shard, each with its members ascending, and empty shards
/// produce no batch. Pure and deterministic: same routing, same batches.
pub fn shard_batches(
    members: usize,
    shards: usize,
    shard_of: impl Fn(usize) -> usize,
) -> Vec<ShardBatch> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for i in 0..members {
        let s = shard_of(i).min(shards - 1);
        buckets[s].push(i);
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, m)| !m.is_empty())
        .map(|(shard, members)| ShardBatch { shard, members })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_partition_in_order() {
        let b = shard_batches(7, 3, |i| i % 3);
        assert_eq!(b.len(), 3);
        assert_eq!(
            b[0],
            ShardBatch {
                shard: 0,
                members: vec![0, 3, 6]
            }
        );
        assert_eq!(
            b[1],
            ShardBatch {
                shard: 1,
                members: vec![1, 4]
            }
        );
        assert_eq!(
            b[2],
            ShardBatch {
                shard: 2,
                members: vec![2, 5]
            }
        );
        let total: usize = b.iter().map(|x| x.members.len()).sum();
        assert_eq!(total, 7, "every member lands in exactly one batch");
    }

    #[test]
    fn empty_shards_and_out_of_range_routes() {
        let b = shard_batches(4, 8, |_| 2);
        assert_eq!(b.len(), 1, "empty shards produce no batch");
        assert_eq!(b[0].shard, 2);
        // A routing function that overflows the shard count clamps.
        let b = shard_batches(2, 2, |_| 99);
        assert_eq!(b[0].shard, 1);
        assert!(shard_batches(0, 4, |i| i).is_empty());
    }

    #[test]
    fn resolve_clamps() {
        assert_eq!(Parallelism::Serial.resolve(100), 1);
        assert_eq!(Parallelism::Fixed(8).resolve(3), 3);
        assert_eq!(Parallelism::Fixed(0).resolve(3), 1);
        assert_eq!(Parallelism::Fixed(2).resolve(0), 1);
        assert!(Parallelism::Auto.resolve(64) >= 1);
    }
}
