//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! This workspace builds in environments with no crates.io access, so the
//! pieces of `rand` it actually uses are reimplemented here: a seedable
//! deterministic generator ([`rngs::StdRng`]), integer `gen_range` over
//! `Range`/`RangeInclusive`, and `gen_bool`. The generator is SplitMix64 —
//! not cryptographic, but high-quality enough for workload generation and
//! property tests, and fully deterministic per seed (the only property the
//! callers rely on).
//!
//! Note the streams differ from upstream `rand`'s `StdRng`; any golden data
//! derived from specific seeds was regenerated against this implementation.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, mirroring `rand::SeedableRng`'s `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed. Same seed ⇒ same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty, as upstream does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..=0u8);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn covers_full_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
