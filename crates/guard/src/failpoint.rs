//! Hand-rolled failpoint registry for fault-injection tests.
//!
//! Production query engines are tested by forcing their dependencies to
//! fail: an index probe that errors mid-query, a store lookup that goes
//! away. This module provides named failpoints with no external
//! dependencies. Code under test calls `check("store.attr_index.probe")`
//! ([`check`]) at a boundary; tests arm that name with [`arm`] (or
//! [`arm_times`]) to make the boundary fail.
//!
//! The hot path is a single relaxed atomic load: with nothing armed,
//! `check` costs one branch. The registry is global, so concurrently
//! running tests must use scoped arming ([`scoped`]) and distinct
//! failpoint names, or serialize on a lock of their own.
//!
//! ```
//! use aqua_guard::failpoint;
//! let fp = failpoint::scoped("docs.example", "index file corrupt");
//! let err = failpoint::check("docs.example").unwrap_err();
//! assert_eq!(err.point, "docs.example");
//! drop(fp); // disarms
//! assert!(failpoint::check("docs.example").is_ok());
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Error produced by an armed failpoint. Carries the failpoint name so
/// fallback paths can report *which* boundary failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointError {
    /// Name of the failpoint that fired.
    pub point: String,
    /// The message the test armed it with.
    pub msg: String,
}

impl FailpointError {
    /// Injected faults model transient infrastructure failures (an index
    /// probe timing out, a store page momentarily unavailable), so they
    /// are always [`crate::ErrorClass::Transient`] — the retry-safe class.
    pub fn class(&self) -> crate::ErrorClass {
        crate::ErrorClass::Transient
    }
}

impl fmt::Display for FailpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failpoint {:?} fired: {}", self.point, self.msg)
    }
}

impl std::error::Error for FailpointError {}

struct Armed {
    msg: String,
    /// `None` = fire every time; `Some(n)` = fire `n` more times, then
    /// disarm automatically.
    remaining: Option<usize>,
}

/// Count of armed failpoints — the fast-path gate. Zero means `check`
/// returns `Ok` without touching the registry lock.
static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `point`: every subsequent [`check`] of that name fails with `msg`
/// until [`disarm`] is called.
pub fn arm(point: &str, msg: &str) {
    arm_impl(point, msg, None);
}

/// Arm `point` for exactly `times` firings, after which it disarms itself.
pub fn arm_times(point: &str, msg: &str, times: usize) {
    arm_impl(point, msg, Some(times));
}

fn arm_impl(point: &str, msg: &str, remaining: Option<usize>) {
    let mut reg = registry().lock().unwrap();
    let prev = reg.insert(
        point.to_owned(),
        Armed {
            msg: msg.to_owned(),
            remaining,
        },
    );
    if prev.is_none() {
        ARMED_COUNT.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm `point`. No-op if it was not armed.
pub fn disarm(point: &str) {
    let mut reg = registry().lock().unwrap();
    if reg.remove(point).is_some() {
        ARMED_COUNT.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Disarm everything.
pub fn reset() {
    let mut reg = registry().lock().unwrap();
    let n = reg.len();
    reg.clear();
    ARMED_COUNT.fetch_sub(n, Ordering::SeqCst);
}

/// The probe instrumented code calls at a failure boundary. `Ok(())`
/// unless a test armed `point`. With nothing armed anywhere, this is a
/// single atomic load.
#[inline]
pub fn check(point: &str) -> Result<(), FailpointError> {
    if ARMED_COUNT.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: &str) -> Result<(), FailpointError> {
    let mut reg = registry().lock().unwrap();
    let Some(armed) = reg.get_mut(point) else {
        return Ok(());
    };
    let err = FailpointError {
        point: point.to_owned(),
        msg: armed.msg.clone(),
    };
    match &mut armed.remaining {
        None => {}
        Some(0) => {
            // Exhausted earlier; treat as disarmed.
            reg.remove(point);
            ARMED_COUNT.fetch_sub(1, Ordering::SeqCst);
            return Ok(());
        }
        Some(n) => {
            *n -= 1;
            if *n == 0 {
                reg.remove(point);
                ARMED_COUNT.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    Err(err)
}

/// RAII arming: the failpoint stays armed until the returned handle is
/// dropped. Preferred in tests — the failpoint cannot leak into later
/// tests even on panic.
pub fn scoped(point: &str, msg: &str) -> ScopedFailpoint {
    arm(point, msg);
    ScopedFailpoint {
        point: point.to_owned(),
    }
}

/// Handle returned by [`scoped`]; disarms its failpoint on drop.
#[must_use = "dropping the handle disarms the failpoint immediately"]
pub struct ScopedFailpoint {
    point: String,
}

impl Drop for ScopedFailpoint {
    fn drop(&mut self) {
        disarm(&self.point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint names are global; each test uses its own.

    #[test]
    fn unarmed_is_ok() {
        assert!(check("fp.test.unarmed").is_ok());
    }

    #[test]
    fn armed_fires_until_disarmed() {
        arm("fp.test.basic", "boom");
        let err = check("fp.test.basic").unwrap_err();
        assert_eq!(err.point, "fp.test.basic");
        assert_eq!(err.msg, "boom");
        assert!(check("fp.test.basic").is_err());
        disarm("fp.test.basic");
        assert!(check("fp.test.basic").is_ok());
    }

    #[test]
    fn arm_times_self_disarms() {
        arm_times("fp.test.twice", "flaky", 2);
        assert!(check("fp.test.twice").is_err());
        assert!(check("fp.test.twice").is_err());
        assert!(check("fp.test.twice").is_ok());
        assert!(check("fp.test.twice").is_ok());
    }

    #[test]
    fn scoped_disarms_on_drop() {
        {
            let _fp = scoped("fp.test.scoped", "scoped boom");
            assert!(check("fp.test.scoped").is_err());
        }
        assert!(check("fp.test.scoped").is_ok());
    }

    #[test]
    fn display_names_the_point() {
        let _fp = scoped("fp.test.display", "io error");
        let msg = check("fp.test.display").unwrap_err().to_string();
        assert!(msg.contains("fp.test.display"), "{msg}");
        assert!(msg.contains("io error"), "{msg}");
    }
}
