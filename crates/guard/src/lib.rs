//! # aqua-guard — execution guards for query evaluation
//!
//! The AQUA operators (`split`, `sub_select`, `all_anc`, …) are driven by
//! patterns whose cost is input-dependent and potentially explosive:
//! Kleene closures over concatenation points, `(a|a)*`-style list
//! patterns, deep recursive tree matches. A production engine must bound
//! and degrade rather than hang or panic, so every evaluation loop in the
//! stack checks an [`ExecGuard`]:
//!
//! * [`Budget`] — declarative limits: a step budget (node visits /
//!   VM transitions), a wall-clock deadline, and an output-size cap.
//! * [`CancelToken`] — a shareable atomic flag; clone it to another
//!   thread and call [`CancelToken::cancel`] to stop a running query.
//! * [`ExecGuard`] — the per-query counter bundle the loops actually
//!   poke. Cheap by design: one counter increment per step, with the
//!   clock and the cancel flag consulted only every
//!   [`CHECK_PERIOD`] steps.
//! * [`GuardError`] — the typed verdicts ([`GuardError::BudgetExceeded`],
//!   [`GuardError::Timeout`], [`GuardError::Cancelled`]), each carrying a
//!   [`Progress`] snapshot so callers can see how far execution got.
//!
//! The [`failpoint`] module is a separate concern riding in the same
//! crate: a tiny hand-rolled fault-injection registry that tests use to
//! force index-probe and store-lookup failures, exercising the
//! optimizer's fallback paths.

pub mod failpoint;

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many steps pass between wall-clock / cancellation checks.
/// Checking `Instant::now()` and the atomic flag on every node visit
/// would dominate tight loops; every 1024th step keeps the overhead
/// unmeasurable while bounding detection latency.
pub const CHECK_PERIOD: u64 = 1024;

/// Declarative resource limits for one query execution.
///
/// `Budget::default()` (alias [`Budget::unlimited`]) imposes nothing;
/// builder methods tighten individual axes:
///
/// ```
/// use aqua_guard::Budget;
/// let b = Budget::unlimited().with_steps(10_000).with_deadline_ms(50);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of steps (node visits, VM transitions, matcher
    /// recursions) before [`GuardError::BudgetExceeded`].
    pub max_steps: Option<u64>,
    /// Wall-clock deadline, measured from [`ExecGuard`] construction.
    pub max_duration: Option<Duration>,
    /// Maximum number of produced results (matches, output trees, …)
    /// before [`GuardError::BudgetExceeded`].
    pub max_results: Option<u64>,
}

impl Budget {
    /// No limits at all. Equivalent to `Budget::default()`.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Limit the step count.
    pub fn with_steps(mut self, max_steps: u64) -> Budget {
        self.max_steps = Some(max_steps);
        self
    }

    /// Limit wall-clock time.
    pub fn with_deadline(mut self, max: Duration) -> Budget {
        self.max_duration = Some(max);
        self
    }

    /// Limit wall-clock time, in milliseconds.
    pub fn with_deadline_ms(self, ms: u64) -> Budget {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Limit the number of produced results.
    pub fn with_results(mut self, max_results: u64) -> Budget {
        self.max_results = Some(max_results);
        self
    }

    /// Whether this budget can ever trip (used to skip guard plumbing
    /// entirely for unlimited executions).
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.max_duration.is_none() && self.max_results.is_none()
    }
}

/// A shareable cancellation flag.
///
/// Clones share one underlying atomic; cancelling any clone cancels the
/// query on whichever thread is running it, at its next guard check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](CancelToken::cancel) been called (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Partial-progress snapshot attached to every [`GuardError`], so a
/// caller that hits a limit still learns how much work was done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Progress {
    /// Steps executed before the verdict (node visits, VM transitions).
    pub steps: u64,
    /// Results produced before the verdict.
    pub results: u64,
    /// Wall-clock time elapsed before the verdict.
    pub elapsed: Duration,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps, {} results, {:.1}ms elapsed",
            self.steps,
            self.results,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

/// Which budget axis was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The step budget ([`Budget::max_steps`]).
    Steps,
    /// The output cap ([`Budget::max_results`]).
    Results,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Steps => write!(f, "step"),
            Resource::Results => write!(f, "result"),
        }
    }
}

/// Typed verdicts for bounded execution. Every variant carries the
/// [`Progress`] made before the limit tripped — exhaustion is an answer,
/// not an accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardError {
    /// A step or output budget ran out.
    BudgetExceeded {
        /// Which axis tripped.
        resource: Resource,
        /// The configured limit.
        limit: u64,
        /// Work completed before tripping.
        progress: Progress,
    },
    /// The wall-clock deadline passed.
    Timeout {
        /// The configured deadline.
        limit: Duration,
        /// Work completed before tripping.
        progress: Progress,
    },
    /// The [`CancelToken`] was cancelled.
    Cancelled {
        /// Work completed before cancellation was observed.
        progress: Progress,
    },
}

impl GuardError {
    /// The progress snapshot, whichever variant.
    pub fn progress(&self) -> Progress {
        match self {
            GuardError::BudgetExceeded { progress, .. }
            | GuardError::Timeout { progress, .. }
            | GuardError::Cancelled { progress } => *progress,
        }
    }
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::BudgetExceeded {
                resource,
                limit,
                progress,
            } => write!(f, "{resource} budget of {limit} exceeded after {progress}"),
            GuardError::Timeout { limit, progress } => write!(
                f,
                "deadline of {:.1}ms passed after {progress}",
                limit.as_secs_f64() * 1e3
            ),
            GuardError::Cancelled { progress } => {
                write!(f, "cancelled after {progress}")
            }
        }
    }
}

impl std::error::Error for GuardError {}

/// The live counter bundle one query execution carries through the
/// stack. Constructed from a [`Budget`] (plus an optional
/// [`CancelToken`]), passed by shared reference — interior mutability via
/// `Cell` keeps call sites free of `&mut` threading. Not `Sync`:
/// one guard belongs to one query on one thread; cross-thread control
/// arrives through the token.
#[derive(Debug)]
pub struct ExecGuard {
    budget: Budget,
    cancel: Option<CancelToken>,
    start: Instant,
    steps: Cell<u64>,
    results: Cell<u64>,
    /// Steps until the next clock/cancel check.
    fuse: Cell<u64>,
}

impl ExecGuard {
    /// Guard with limits only.
    pub fn new(budget: Budget) -> ExecGuard {
        ExecGuard {
            budget,
            cancel: None,
            start: Instant::now(),
            steps: Cell::new(0),
            results: Cell::new(0),
            fuse: Cell::new(CHECK_PERIOD),
        }
    }

    /// Guard with limits and a cancellation token.
    pub fn with_cancel(budget: Budget, token: CancelToken) -> ExecGuard {
        ExecGuard {
            cancel: Some(token),
            ..ExecGuard::new(budget)
        }
    }

    /// Guard that only honours cancellation (no budget).
    pub fn cancellable(token: CancelToken) -> ExecGuard {
        ExecGuard::with_cancel(Budget::unlimited(), token)
    }

    /// Current progress snapshot.
    pub fn snapshot(&self) -> Progress {
        Progress {
            steps: self.steps.get(),
            results: self.results.get(),
            elapsed: self.start.elapsed(),
        }
    }

    /// Account one unit of work (a node visit, a VM transition, a matcher
    /// recursion). Cheap: one counter bump; the clock and cancel flag are
    /// consulted every [`CHECK_PERIOD`] calls.
    #[inline]
    pub fn step(&self) -> Result<(), GuardError> {
        self.steps_n(1)
    }

    /// Account `n` units of work at once.
    #[inline]
    pub fn steps_n(&self, n: u64) -> Result<(), GuardError> {
        let steps = self.steps.get() + n;
        self.steps.set(steps);
        if let Some(max) = self.budget.max_steps {
            if steps > max {
                return Err(GuardError::BudgetExceeded {
                    resource: Resource::Steps,
                    limit: max,
                    progress: self.snapshot(),
                });
            }
        }
        let fuse = self.fuse.get();
        if fuse <= n {
            self.fuse.set(CHECK_PERIOD);
            self.checkpoint()
        } else {
            self.fuse.set(fuse - n);
            Ok(())
        }
    }

    /// Account one produced result (a match, an output tree, …).
    #[inline]
    pub fn result_emitted(&self) -> Result<(), GuardError> {
        let results = self.results.get() + 1;
        self.results.set(results);
        if let Some(max) = self.budget.max_results {
            if results > max {
                return Err(GuardError::BudgetExceeded {
                    resource: Resource::Results,
                    limit: max,
                    progress: self.snapshot(),
                });
            }
        }
        Ok(())
    }

    /// Force an immediate deadline + cancellation check, regardless of the
    /// step fuse. Called at coarse boundaries (per query root, per plan
    /// stage) where prompt cancellation matters more than raw throughput.
    pub fn checkpoint(&self) -> Result<(), GuardError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(GuardError::Cancelled {
                    progress: self.snapshot(),
                });
            }
        }
        if let Some(max) = self.budget.max_duration {
            let elapsed = self.start.elapsed();
            if elapsed > max {
                return Err(GuardError::Timeout {
                    limit: max,
                    progress: self.snapshot(),
                });
            }
        }
        Ok(())
    }
}

/// Convenience for optional guards: account a step if a guard is present.
#[inline]
pub fn step(guard: Option<&ExecGuard>) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.step(),
        None => Ok(()),
    }
}

/// Convenience for optional guards: account `n` steps if a guard is present.
#[inline]
pub fn steps_n(guard: Option<&ExecGuard>, n: u64) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.steps_n(n),
        None => Ok(()),
    }
}

/// Convenience for optional guards: checkpoint if a guard is present.
#[inline]
pub fn checkpoint(guard: Option<&ExecGuard>) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.checkpoint(),
        None => Ok(()),
    }
}

/// Convenience for optional guards: account an emitted result if a guard
/// is present.
#[inline]
pub fn result_emitted(guard: Option<&ExecGuard>) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.result_emitted(),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let g = ExecGuard::new(Budget::unlimited());
        for _ in 0..10_000 {
            g.step().unwrap();
        }
        g.result_emitted().unwrap();
        g.checkpoint().unwrap();
        assert_eq!(g.snapshot().steps, 10_000);
    }

    #[test]
    fn step_budget_trips_with_progress() {
        let g = ExecGuard::new(Budget::unlimited().with_steps(10));
        for _ in 0..10 {
            g.step().unwrap();
        }
        let err = g.step().unwrap_err();
        match err {
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                limit,
                progress,
            } => {
                assert_eq!(limit, 10);
                assert_eq!(progress.steps, 11);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn result_cap_trips() {
        let g = ExecGuard::new(Budget::unlimited().with_results(2));
        g.result_emitted().unwrap();
        g.result_emitted().unwrap();
        let err = g.result_emitted().unwrap_err();
        assert!(matches!(
            err,
            GuardError::BudgetExceeded {
                resource: Resource::Results,
                limit: 2,
                ..
            }
        ));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let g = ExecGuard::cancellable(token.clone());
        g.checkpoint().unwrap();
        token.cancel();
        assert!(matches!(
            g.checkpoint().unwrap_err(),
            GuardError::Cancelled { .. }
        ));
        // And through the amortized step path as well.
        let g2 = ExecGuard::cancellable(token.clone());
        let mut tripped = false;
        for _ in 0..(2 * CHECK_PERIOD) {
            if g2.step().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "step fuse never consulted the cancel flag");
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().unwrap();
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_trips() {
        let g = ExecGuard::new(Budget::unlimited().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(
            g.checkpoint().unwrap_err(),
            GuardError::Timeout { .. }
        ));
    }

    #[test]
    fn display_mentions_progress() {
        let g = ExecGuard::new(Budget::unlimited().with_steps(1));
        g.step().unwrap();
        let err = g.step().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("step budget of 1"), "{msg}");
        assert!(msg.contains("2 steps"), "{msg}");
    }
}
