//! # aqua-guard — execution guards for query evaluation
//!
//! The AQUA operators (`split`, `sub_select`, `all_anc`, …) are driven by
//! patterns whose cost is input-dependent and potentially explosive:
//! Kleene closures over concatenation points, `(a|a)*`-style list
//! patterns, deep recursive tree matches. A production engine must bound
//! and degrade rather than hang or panic, so every evaluation loop in the
//! stack checks an [`ExecGuard`]:
//!
//! * [`Budget`] — declarative limits: a step budget (node visits /
//!   VM transitions), a wall-clock deadline, and an output-size cap.
//! * [`CancelToken`] — a shareable atomic flag; clone it to another
//!   thread and call [`CancelToken::cancel`] to stop a running query.
//! * [`ExecGuard`] — the per-query counter bundle the loops actually
//!   poke. Cheap by design: one counter increment per step, with the
//!   clock and the cancel flag consulted only every
//!   [`CHECK_PERIOD`] steps.
//! * [`GuardError`] — the typed verdicts ([`GuardError::BudgetExceeded`],
//!   [`GuardError::Timeout`], [`GuardError::Cancelled`]), each carrying a
//!   [`Progress`] snapshot so callers can see how far execution got.
//! * [`SharedGuard`] — the multi-worker form: one budget/token spanning a
//!   fleet of worker [`ExecGuard`]s (one per thread). Workers batch step
//!   accounting locally and sync into shared atomics every
//!   [`CHECK_PERIOD`] steps, so the hot path stays contention-free; the
//!   first verdict any worker reaches is adopted by every sibling at its
//!   next checkpoint, and all snapshots merge fleet-wide totals.
//!
//! The [`failpoint`] module is a separate concern riding in the same
//! crate: a tiny hand-rolled fault-injection registry that tests use to
//! force index-probe and store-lookup failures, exercising the
//! optimizer's fallback paths.

pub mod failpoint;

pub use aqua_obs::{Metrics, MetricsSnapshot};

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How many steps pass between wall-clock / cancellation checks.
/// Checking `Instant::now()` and the atomic flag on every node visit
/// would dominate tight loops; every 1024th step keeps the overhead
/// unmeasurable while bounding detection latency.
pub const CHECK_PERIOD: u64 = 1024;

/// An absolute point in time every stage of a query observes as one
/// shared budget.
///
/// [`Budget::max_duration`] is *relative* — measured from guard
/// construction, so a retried attempt under a fresh guard would get a
/// fresh clock. A `Deadline` is *absolute*: the serving layer stamps it
/// once at admission, threads it through every attempt, every
/// [`SharedGuard`] worker, and every stage (compile, plan, match,
/// merge), and they all run out together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline(instant)
    }

    /// A deadline `budget` from now.
    pub fn from_now(budget: Duration) -> Deadline {
        Deadline(Instant::now() + budget)
    }

    /// The absolute instant.
    pub fn instant(&self) -> Instant {
        self.0
    }

    /// Time left before the deadline (zero once passed).
    pub fn remaining(&self) -> Duration {
        self.0.saturating_duration_since(Instant::now())
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.0
    }
}

/// Coarse failure taxonomy the serving layer keys its policies on:
/// retry [`Transient`](ErrorClass::Transient) failures, surface
/// [`Resource`](ErrorClass::Resource) exhaustion as a final (but
/// well-explained) answer, and never retry
/// [`Permanent`](ErrorClass::Permanent) errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The operation may succeed if simply re-run: injected faults,
    /// flaky probes, briefly unavailable dependencies. AQUA query
    /// stages are idempotent and side-effect-free (a rewritten
    /// sub-pattern probe can always be re-asked), so transient retries
    /// are always safe.
    Transient,
    /// A budget axis ran out (steps, results, deadline). Retrying
    /// without a bigger budget re-fails; the verdict is an answer.
    Resource,
    /// Retrying can never help: cancellation, malformed queries,
    /// missing schema.
    Permanent,
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorClass::Transient => write!(f, "transient"),
            ErrorClass::Resource => write!(f, "resource"),
            ErrorClass::Permanent => write!(f, "permanent"),
        }
    }
}

/// Declarative resource limits for one query execution.
///
/// `Budget::default()` (alias [`Budget::unlimited`]) imposes nothing;
/// builder methods tighten individual axes:
///
/// ```
/// use aqua_guard::Budget;
/// let b = Budget::unlimited().with_steps(10_000).with_deadline_ms(50);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of steps (node visits, VM transitions, matcher
    /// recursions) before [`GuardError::BudgetExceeded`].
    pub max_steps: Option<u64>,
    /// Wall-clock deadline, measured from [`ExecGuard`] construction.
    pub max_duration: Option<Duration>,
    /// Maximum number of produced results (matches, output trees, …)
    /// before [`GuardError::BudgetExceeded`].
    pub max_results: Option<u64>,
    /// Absolute deadline, shared by every attempt and every stage —
    /// unlike [`max_duration`](Budget::max_duration), which restarts
    /// with each guard.
    pub deadline: Option<Deadline>,
}

impl Budget {
    /// No limits at all. Equivalent to `Budget::default()`.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Limit the step count.
    pub fn with_steps(mut self, max_steps: u64) -> Budget {
        self.max_steps = Some(max_steps);
        self
    }

    /// Limit wall-clock time.
    pub fn with_deadline(mut self, max: Duration) -> Budget {
        self.max_duration = Some(max);
        self
    }

    /// Limit wall-clock time, in milliseconds.
    pub fn with_deadline_ms(self, ms: u64) -> Budget {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Limit the number of produced results.
    pub fn with_results(mut self, max_results: u64) -> Budget {
        self.max_results = Some(max_results);
        self
    }

    /// Impose an absolute deadline (see [`Deadline`]). Guards observe
    /// it at every checkpoint alongside the relative
    /// [`max_duration`](Budget::max_duration).
    pub fn with_deadline_at(mut self, deadline: Deadline) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Whether this budget can ever trip (used to skip guard plumbing
    /// entirely for unlimited executions).
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none()
            && self.max_duration.is_none()
            && self.max_results.is_none()
            && self.deadline.is_none()
    }

    /// The budget a *retry attempt* runs under after `spent` steps were
    /// already charged by earlier attempts: the step axis shrinks so
    /// total spend across attempts never exceeds the configured budget,
    /// while the deadline (absolute) and the other axes carry over
    /// unchanged.
    pub fn remaining_after(mut self, spent: u64) -> Budget {
        if let Some(max) = self.max_steps {
            self.max_steps = Some(max.saturating_sub(spent));
        }
        self
    }
}

/// A shareable cancellation flag.
///
/// Clones share one underlying atomic; cancelling any clone cancels the
/// query on whichever thread is running it, at its next guard check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](CancelToken::cancel) been called (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Partial-progress snapshot attached to every [`GuardError`], so a
/// caller that hits a limit still learns how much work was done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Progress {
    /// Steps executed before the verdict (node visits, VM transitions).
    pub steps: u64,
    /// Results produced before the verdict.
    pub results: u64,
    /// Wall-clock time elapsed before the verdict.
    pub elapsed: Duration,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps, {} results, {:.1}ms elapsed",
            self.steps,
            self.results,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

/// Which budget axis was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The step budget ([`Budget::max_steps`]).
    Steps,
    /// The output cap ([`Budget::max_results`]).
    Results,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Steps => write!(f, "step"),
            Resource::Results => write!(f, "result"),
        }
    }
}

/// Typed verdicts for bounded execution. Every variant carries the
/// [`Progress`] made before the limit tripped — exhaustion is an answer,
/// not an accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardError {
    /// A step or output budget ran out.
    BudgetExceeded {
        /// Which axis tripped.
        resource: Resource,
        /// The configured limit.
        limit: u64,
        /// Work completed before tripping.
        progress: Progress,
    },
    /// The wall-clock deadline passed.
    Timeout {
        /// The configured deadline.
        limit: Duration,
        /// Work completed before tripping.
        progress: Progress,
    },
    /// The [`CancelToken`] was cancelled.
    Cancelled {
        /// Work completed before cancellation was observed.
        progress: Progress,
    },
}

impl GuardError {
    /// The progress snapshot, whichever variant.
    pub fn progress(&self) -> Progress {
        match self {
            GuardError::BudgetExceeded { progress, .. }
            | GuardError::Timeout { progress, .. }
            | GuardError::Cancelled { progress } => *progress,
        }
    }

    /// Which [`ErrorClass`] this verdict falls in: budget and deadline
    /// exhaustion are [`Resource`](ErrorClass::Resource) (a bigger
    /// budget, not a retry, is the remedy); cancellation is
    /// [`Permanent`](ErrorClass::Permanent) (the caller asked).
    pub fn class(&self) -> ErrorClass {
        match self {
            GuardError::BudgetExceeded { .. } | GuardError::Timeout { .. } => ErrorClass::Resource,
            GuardError::Cancelled { .. } => ErrorClass::Permanent,
        }
    }

    /// The same verdict carrying a different progress snapshot — used to
    /// re-stamp a worker's verdict with the fleet-wide merged totals.
    pub fn with_progress(mut self, p: Progress) -> GuardError {
        match &mut self {
            GuardError::BudgetExceeded { progress, .. }
            | GuardError::Timeout { progress, .. }
            | GuardError::Cancelled { progress } => *progress = p,
        }
        self
    }
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::BudgetExceeded {
                resource,
                limit,
                progress,
            } => write!(f, "{resource} budget of {limit} exceeded after {progress}"),
            GuardError::Timeout { limit, progress } => write!(
                f,
                "deadline of {:.1}ms passed after {progress}",
                limit.as_secs_f64() * 1e3
            ),
            GuardError::Cancelled { progress } => {
                write!(f, "cancelled after {progress}")
            }
        }
    }
}

impl std::error::Error for GuardError {}

/// The live counter bundle one query execution carries through the
/// stack. Constructed from a [`Budget`] (plus an optional
/// [`CancelToken`]), passed by shared reference — interior mutability via
/// `Cell` keeps call sites free of `&mut` threading. Not `Sync`:
/// one guard belongs to one query on one thread; cross-thread control
/// arrives through the token, or — for fleets — through the
/// [`SharedGuard`] this guard was minted from.
#[derive(Debug)]
pub struct ExecGuard {
    budget: Budget,
    cancel: Option<CancelToken>,
    start: Instant,
    steps: Cell<u64>,
    results: Cell<u64>,
    /// Steps until the next clock/cancel check.
    fuse: Cell<u64>,
    /// Fuse reload value: [`CHECK_PERIOD`] for standalone guards,
    /// possibly smaller for workers of a tightly-budgeted fleet.
    sync_period: u64,
    /// The fleet this guard reports into, if minted by
    /// [`SharedGuard::worker`].
    shared: Option<Arc<SharedCore>>,
    /// Local steps already flushed into the shared counter.
    flushed: Cell<u64>,
    /// Detailed-metrics sink, when armed. `None` (the default) keeps
    /// every instrumentation probe down to one branch — the disarmed
    /// contract [`aqua_obs`] documents.
    obs: Option<Metrics>,
}

impl ExecGuard {
    /// Guard with limits only.
    pub fn new(budget: Budget) -> ExecGuard {
        ExecGuard {
            budget,
            cancel: None,
            start: Instant::now(),
            steps: Cell::new(0),
            results: Cell::new(0),
            fuse: Cell::new(CHECK_PERIOD),
            sync_period: CHECK_PERIOD,
            shared: None,
            flushed: Cell::new(0),
            obs: None,
        }
    }

    /// Guard with limits and a cancellation token.
    pub fn with_cancel(budget: Budget, token: CancelToken) -> ExecGuard {
        ExecGuard {
            cancel: Some(token),
            ..ExecGuard::new(budget)
        }
    }

    /// Guard that only honours cancellation (no budget).
    pub fn cancellable(token: CancelToken) -> ExecGuard {
        ExecGuard::with_cancel(Budget::unlimited(), token)
    }

    /// Arm detailed metrics: operators running under this guard record
    /// into `sink`. Without this, [`metrics`](ExecGuard::metrics) stays
    /// `None` and instrumentation costs one branch per probe.
    pub fn with_metrics(mut self, sink: Metrics) -> ExecGuard {
        self.obs = Some(sink);
        self
    }

    /// The armed metrics sink, if any. Hot paths hoist this once per
    /// loop and poke counters only when `Some`.
    #[inline]
    pub fn metrics(&self) -> Option<&Metrics> {
        self.obs.as_ref()
    }

    /// Freeze the armed sink (zeros when disarmed) and stamp the
    /// engine-progress fields from this guard's own [`Progress`] — so
    /// `engine_steps` equals [`snapshot`](ExecGuard::snapshot)`.steps`
    /// exactly, by construction.
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        let mut s = self.obs.as_ref().map(Metrics::snapshot).unwrap_or_default();
        let p = self.snapshot();
        s.engine_steps = p.steps;
        s.engine_results = p.results;
        s.engine_elapsed_nanos = p.elapsed.as_nanos().min(u64::MAX as u128) as u64;
        s
    }

    /// Current progress snapshot. For a fleet worker this merges the
    /// shared totals with the not-yet-flushed local steps.
    pub fn snapshot(&self) -> Progress {
        match &self.shared {
            Some(core) => {
                let pending = self.steps.get() - self.flushed.get();
                Progress {
                    steps: core.steps.load(Ordering::Relaxed) + pending,
                    results: core.results.load(Ordering::Relaxed),
                    elapsed: self.start.elapsed(),
                }
            }
            None => Progress {
                steps: self.steps.get(),
                results: self.results.get(),
                elapsed: self.start.elapsed(),
            },
        }
    }

    /// Record a verdict in the fleet (if any) so siblings adopt it, and
    /// hand it back for local propagation.
    fn fail(&self, e: GuardError) -> GuardError {
        if let Some(core) = &self.shared {
            core.trip(e);
        }
        e
    }

    /// Account one unit of work (a node visit, a VM transition, a matcher
    /// recursion). Cheap: one counter bump; the clock and cancel flag are
    /// consulted every [`CHECK_PERIOD`] calls.
    #[inline]
    pub fn step(&self) -> Result<(), GuardError> {
        self.steps_n(1)
    }

    /// Account `n` units of work at once.
    #[inline]
    pub fn steps_n(&self, n: u64) -> Result<(), GuardError> {
        let steps = self.steps.get() + n;
        self.steps.set(steps);
        if let Some(max) = self.budget.max_steps {
            if steps > max {
                return Err(self.fail(GuardError::BudgetExceeded {
                    resource: Resource::Steps,
                    limit: max,
                    progress: self.snapshot(),
                }));
            }
        }
        let fuse = self.fuse.get();
        if fuse <= n {
            self.fuse.set(self.sync_period);
            self.checkpoint()
        } else {
            self.fuse.set(fuse - n);
            Ok(())
        }
    }

    /// Account one produced result (a match, an output tree, …). Fleet
    /// workers count into the shared total immediately — the output cap
    /// is exact, never overshot by batching.
    #[inline]
    pub fn result_emitted(&self) -> Result<(), GuardError> {
        if let Some(core) = &self.shared {
            let total = core.results.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(max) = core.budget.max_results {
                if total > max {
                    return Err(self.fail(GuardError::BudgetExceeded {
                        resource: Resource::Results,
                        limit: max,
                        progress: self.snapshot(),
                    }));
                }
            }
            return Ok(());
        }
        let results = self.results.get() + 1;
        self.results.set(results);
        if let Some(max) = self.budget.max_results {
            if results > max {
                return Err(GuardError::BudgetExceeded {
                    resource: Resource::Results,
                    limit: max,
                    progress: self.snapshot(),
                });
            }
        }
        Ok(())
    }

    /// Flush any not-yet-synced local steps into the fleet totals.
    /// No-op for standalone guards. Call when a worker finishes so the
    /// final merged [`Progress`] accounts every step.
    pub fn flush(&self) {
        if let Some(core) = &self.shared {
            let total = self.steps.get();
            let pending = total - self.flushed.get();
            if pending > 0 {
                core.steps.fetch_add(pending, Ordering::Relaxed);
                self.flushed.set(total);
            }
        }
    }

    /// Force an immediate deadline + cancellation check, regardless of the
    /// step fuse. Called at coarse boundaries (per query root, per plan
    /// stage) where prompt cancellation matters more than raw throughput.
    /// Fleet workers also flush their batched steps here, adopt any
    /// sibling's verdict, and check the shared step budget.
    pub fn checkpoint(&self) -> Result<(), GuardError> {
        if let Some(core) = &self.shared {
            self.flush();
            if core.tripped.load(Ordering::Acquire) {
                if let Some(e) = core.verdict() {
                    return Err(e.with_progress(self.snapshot()));
                }
            }
            if let Some(max) = core.budget.max_steps {
                if core.steps.load(Ordering::Relaxed) > max {
                    return Err(self.fail(GuardError::BudgetExceeded {
                        resource: Resource::Steps,
                        limit: max,
                        progress: self.snapshot(),
                    }));
                }
            }
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.fail(GuardError::Cancelled {
                    progress: self.snapshot(),
                }));
            }
        }
        if let Some(max) = self.budget.max_duration {
            let elapsed = self.start.elapsed();
            if elapsed > max {
                return Err(self.fail(GuardError::Timeout {
                    limit: max,
                    progress: self.snapshot(),
                }));
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if deadline.expired() {
                // Report the budget this guard effectively had: from its
                // start to the shared absolute deadline.
                return Err(self.fail(GuardError::Timeout {
                    limit: deadline.instant().saturating_duration_since(self.start),
                    progress: self.snapshot(),
                }));
            }
        }
        Ok(())
    }
}

/// Shared innards of one fleet-wide guard.
#[derive(Debug)]
struct SharedCore {
    budget: Budget,
    cancel: Option<CancelToken>,
    start: Instant,
    steps: AtomicU64,
    results: AtomicU64,
    /// First verdict reached by any worker; siblings adopt it.
    verdict: Mutex<Option<GuardError>>,
    /// Fast flag so checkpoints skip the mutex until something tripped.
    tripped: AtomicBool,
    /// Fleet-wide metrics sink; workers minted after
    /// [`SharedGuard::attach_metrics`] record into clones of it.
    obs: OnceLock<Metrics>,
}

impl SharedCore {
    fn trip(&self, e: GuardError) {
        let mut v = self.verdict.lock().unwrap_or_else(|p| p.into_inner());
        if v.is_none() {
            *v = Some(e);
        }
        drop(v);
        self.tripped.store(true, Ordering::Release);
    }

    fn verdict(&self) -> Option<GuardError> {
        *self.verdict.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// One budget / cancel token spanning a fleet of workers.
///
/// Mint one worker [`ExecGuard`] per thread via
/// [`worker`](SharedGuard::worker). Workers count steps into a local
/// `Cell` and sync the batch into the shared atomic at every checkpoint
/// (at most [`CHECK_PERIOD`] steps apart), so the per-step hot path never
/// touches shared state; result caps are counted shared and exact. The
/// step budget can therefore be overshot by at most
/// `workers × min(CHECK_PERIOD, max_steps)` — bounded detection latency,
/// same deal as the serial fuse. The first verdict any worker reaches
/// (budget, deadline, cancellation) is recorded here and adopted by every
/// sibling at its next checkpoint, so one trip stops the whole fleet;
/// every reported [`Progress`] merges fleet-wide totals.
///
/// Clones share the same fleet state.
#[derive(Debug, Clone)]
pub struct SharedGuard {
    core: Arc<SharedCore>,
}

impl SharedGuard {
    /// Fleet guard with limits only.
    pub fn new(budget: Budget) -> SharedGuard {
        SharedGuard::build(budget, None)
    }

    /// Fleet guard with limits and a cancellation token.
    pub fn with_cancel(budget: Budget, token: CancelToken) -> SharedGuard {
        SharedGuard::build(budget, Some(token))
    }

    /// Fleet guard that only honours cancellation (no budget).
    pub fn cancellable(token: CancelToken) -> SharedGuard {
        SharedGuard::with_cancel(Budget::unlimited(), token)
    }

    fn build(budget: Budget, cancel: Option<CancelToken>) -> SharedGuard {
        SharedGuard {
            core: Arc::new(SharedCore {
                budget,
                cancel,
                start: Instant::now(),
                steps: AtomicU64::new(0),
                results: AtomicU64::new(0),
                verdict: Mutex::new(None),
                tripped: AtomicBool::new(false),
                obs: OnceLock::new(),
            }),
        }
    }

    /// Arm fleet-wide detailed metrics. Every worker minted *after*
    /// this call records into `sink` (one shared registry — relaxed
    /// atomics, no per-worker merging needed). Returns `false` if a
    /// sink was already attached (the first one wins).
    pub fn attach_metrics(&self, sink: Metrics) -> bool {
        self.core.obs.set(sink).is_ok()
    }

    /// The attached fleet metrics sink, if any.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.core.obs.get()
    }

    /// Freeze the fleet sink (zeros when disarmed) and stamp the
    /// engine-progress fields from the merged fleet
    /// [`Progress`](SharedGuard::snapshot). Call after workers have
    /// flushed so `engine_steps` carries the full fleet total.
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        let mut s = self
            .core
            .obs
            .get()
            .map(Metrics::snapshot)
            .unwrap_or_default();
        let p = self.snapshot();
        s.engine_steps = p.steps;
        s.engine_results = p.results;
        s.engine_elapsed_nanos = p.elapsed.as_nanos().min(u64::MAX as u128) as u64;
        s
    }

    /// The budget every worker shares.
    pub fn budget(&self) -> &Budget {
        &self.core.budget
    }

    /// Mint a worker guard for one thread. The worker shares this
    /// fleet's start instant (so deadlines are absolute, not per-worker)
    /// and checks the *shared* step/result budgets; its own `Budget`
    /// carries no local caps.
    pub fn worker(&self) -> ExecGuard {
        let core = &self.core;
        // A fleet with a step budget tighter than the fuse syncs more
        // often, so tiny budgets are detected promptly.
        let sync_period = match core.budget.max_steps {
            Some(m) => CHECK_PERIOD.min(m.max(1)),
            None => CHECK_PERIOD,
        };
        ExecGuard {
            budget: Budget {
                max_steps: None,
                max_results: None,
                max_duration: core.budget.max_duration,
                deadline: core.budget.deadline,
            },
            cancel: core.cancel.clone(),
            start: core.start,
            steps: Cell::new(0),
            results: Cell::new(0),
            fuse: Cell::new(sync_period),
            sync_period,
            shared: Some(Arc::clone(core)),
            flushed: Cell::new(0),
            obs: core.obs.get().cloned(),
        }
    }

    /// Fleet-wide progress: totals flushed by the workers so far.
    pub fn snapshot(&self) -> Progress {
        Progress {
            steps: self.core.steps.load(Ordering::Relaxed),
            results: self.core.results.load(Ordering::Relaxed),
            elapsed: self.core.start.elapsed(),
        }
    }

    /// The first verdict any worker reached, re-stamped with the current
    /// merged totals. `None` while nothing has tripped.
    pub fn verdict(&self) -> Option<GuardError> {
        if !self.core.tripped.load(Ordering::Acquire) {
            return None;
        }
        self.core
            .verdict()
            .map(|e| e.with_progress(self.snapshot()))
    }
}

/// Convenience for optional guards: account a step if a guard is present.
#[inline]
pub fn step(guard: Option<&ExecGuard>) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.step(),
        None => Ok(()),
    }
}

/// Convenience for optional guards: account `n` steps if a guard is present.
#[inline]
pub fn steps_n(guard: Option<&ExecGuard>, n: u64) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.steps_n(n),
        None => Ok(()),
    }
}

/// Convenience for optional guards: checkpoint if a guard is present.
#[inline]
pub fn checkpoint(guard: Option<&ExecGuard>) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.checkpoint(),
        None => Ok(()),
    }
}

/// Convenience for optional guards: account an emitted result if a guard
/// is present.
#[inline]
pub fn result_emitted(guard: Option<&ExecGuard>) -> Result<(), GuardError> {
    match guard {
        Some(g) => g.result_emitted(),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let g = ExecGuard::new(Budget::unlimited());
        for _ in 0..10_000 {
            g.step().unwrap();
        }
        g.result_emitted().unwrap();
        g.checkpoint().unwrap();
        assert_eq!(g.snapshot().steps, 10_000);
    }

    #[test]
    fn step_budget_trips_with_progress() {
        let g = ExecGuard::new(Budget::unlimited().with_steps(10));
        for _ in 0..10 {
            g.step().unwrap();
        }
        let err = g.step().unwrap_err();
        match err {
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                limit,
                progress,
            } => {
                assert_eq!(limit, 10);
                assert_eq!(progress.steps, 11);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn result_cap_trips() {
        let g = ExecGuard::new(Budget::unlimited().with_results(2));
        g.result_emitted().unwrap();
        g.result_emitted().unwrap();
        let err = g.result_emitted().unwrap_err();
        assert!(matches!(
            err,
            GuardError::BudgetExceeded {
                resource: Resource::Results,
                limit: 2,
                ..
            }
        ));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let g = ExecGuard::cancellable(token.clone());
        g.checkpoint().unwrap();
        token.cancel();
        assert!(matches!(
            g.checkpoint().unwrap_err(),
            GuardError::Cancelled { .. }
        ));
        // And through the amortized step path as well.
        let g2 = ExecGuard::cancellable(token.clone());
        let mut tripped = false;
        for _ in 0..(2 * CHECK_PERIOD) {
            if g2.step().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "step fuse never consulted the cancel flag");
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().unwrap();
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_trips() {
        let g = ExecGuard::new(Budget::unlimited().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(
            g.checkpoint().unwrap_err(),
            GuardError::Timeout { .. }
        ));
    }

    #[test]
    fn shared_guard_merges_worker_steps() {
        let shared = SharedGuard::new(Budget::unlimited());
        let a = shared.worker();
        let b = shared.worker();
        for _ in 0..10 {
            a.step().unwrap();
        }
        for _ in 0..7 {
            b.step().unwrap();
        }
        // Nothing flushed yet (counts below the fuse), but worker
        // snapshots see their own pending steps.
        assert_eq!(a.snapshot().steps, 10);
        a.flush();
        b.flush();
        assert_eq!(shared.snapshot().steps, 17);
        // A worker snapshot now merges the fleet total.
        assert_eq!(a.snapshot().steps, 17);
    }

    #[test]
    fn shared_step_budget_trips_and_siblings_adopt() {
        let shared =
            SharedGuard::with_cancel(Budget::unlimited().with_steps(10), CancelToken::new());
        let a = shared.worker();
        let mut tripped = None;
        for _ in 0..100 {
            if let Err(e) = a.step() {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("tight fleet budget must trip");
        assert!(matches!(
            e,
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                limit: 10,
                ..
            }
        ));
        // A sibling that did no work adopts the verdict at its first
        // checkpoint, with merged progress.
        let b = shared.worker();
        let adopted = b.checkpoint().unwrap_err();
        assert!(matches!(
            adopted,
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                ..
            }
        ));
        assert!(adopted.progress().steps >= 10);
        assert!(shared.verdict().is_some());
    }

    #[test]
    fn shared_result_cap_is_exact() {
        let shared = SharedGuard::new(Budget::unlimited().with_results(3));
        let a = shared.worker();
        let b = shared.worker();
        a.result_emitted().unwrap();
        b.result_emitted().unwrap();
        a.result_emitted().unwrap();
        let e = b.result_emitted().unwrap_err();
        assert!(matches!(
            e,
            GuardError::BudgetExceeded {
                resource: Resource::Results,
                limit: 3,
                ..
            }
        ));
        assert_eq!(e.progress().results, 4);
    }

    #[test]
    fn shared_cancellation_reaches_workers() {
        let token = CancelToken::new();
        let shared = SharedGuard::cancellable(token.clone());
        let w = shared.worker();
        w.checkpoint().unwrap();
        token.cancel();
        assert!(matches!(
            w.checkpoint().unwrap_err(),
            GuardError::Cancelled { .. }
        ));
        assert!(matches!(
            shared.verdict(),
            Some(GuardError::Cancelled { .. })
        ));
    }

    #[test]
    fn shared_guard_across_real_threads() {
        let shared = SharedGuard::new(Budget::unlimited().with_steps(50_000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = shared.worker();
                s.spawn(move || {
                    loop {
                        if g.step().is_err() {
                            break;
                        }
                    }
                    g.flush();
                });
            }
        });
        let v = shared.verdict().expect("fleet budget must trip");
        assert!(matches!(
            v,
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                ..
            }
        ));
        // Bounded overshoot: at most workers × sync_period past the limit.
        let total = shared.snapshot().steps;
        assert!(total >= 50_000, "tripped early at {total}");
        assert!(total <= 50_000 + 5 * CHECK_PERIOD, "overshoot: {total}");
    }

    #[test]
    fn obs_snapshot_stamps_engine_progress() {
        // Disarmed: detailed counters zero, engine fields still stamped.
        let g = ExecGuard::new(Budget::unlimited());
        for _ in 0..5 {
            g.step().unwrap();
        }
        g.result_emitted().unwrap();
        let s = g.obs_snapshot();
        assert!(s.is_disarmed_zero());
        assert_eq!(s.engine_steps, g.snapshot().steps);
        assert_eq!(s.engine_results, 1);

        // Armed: counters flow through, engine fields agree with the
        // guard's own Progress exactly.
        let sink = Metrics::new();
        let g = ExecGuard::new(Budget::unlimited()).with_metrics(sink.clone());
        for _ in 0..7 {
            g.step().unwrap();
            if let Some(m) = g.metrics() {
                m.vm_steps.inc();
            }
        }
        let s = g.obs_snapshot();
        assert_eq!(s.vm_steps, 7);
        assert_eq!(s.engine_steps, 7);
        assert_eq!(s.engine_steps, g.snapshot().steps);
        assert!(sink.same_sink(g.metrics().unwrap()));
    }

    #[test]
    fn fleet_workers_share_the_attached_sink() {
        let shared = SharedGuard::new(Budget::unlimited());
        let sink = Metrics::new();
        assert!(shared.attach_metrics(sink.clone()));
        assert!(!shared.attach_metrics(Metrics::new()), "first sink wins");
        std::thread::scope(|s| {
            for _ in 0..3 {
                let g = shared.worker();
                s.spawn(move || {
                    for _ in 0..10 {
                        g.step().unwrap();
                        g.metrics().expect("inherited sink").match_visits.inc();
                    }
                    g.flush();
                });
            }
        });
        let s = shared.obs_snapshot();
        assert_eq!(s.match_visits, 30);
        assert_eq!(s.engine_steps, 30, "fleet total after flushes");
        assert_eq!(s.engine_steps, shared.snapshot().steps);
    }

    #[test]
    fn absolute_deadline_trips_and_spans_guards() {
        let deadline = Deadline::from_now(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(deadline.expired());
        assert_eq!(deadline.remaining(), Duration::ZERO);
        // A fresh guard (a "retry attempt") still observes the expired
        // deadline — unlike max_duration, which would have restarted.
        let g = ExecGuard::new(Budget::unlimited().with_deadline_at(deadline));
        assert!(matches!(
            g.checkpoint().unwrap_err(),
            GuardError::Timeout { .. }
        ));
        // Fleet workers inherit the same absolute deadline.
        let shared = SharedGuard::new(Budget::unlimited().with_deadline_at(deadline));
        let w = shared.worker();
        assert!(matches!(
            w.checkpoint().unwrap_err(),
            GuardError::Timeout { .. }
        ));
    }

    #[test]
    fn remaining_after_shrinks_only_steps() {
        let b = Budget::unlimited()
            .with_steps(100)
            .with_results(5)
            .with_deadline_at(Deadline::from_now(Duration::from_secs(60)));
        let r = b.remaining_after(30);
        assert_eq!(r.max_steps, Some(70));
        assert_eq!(r.max_results, Some(5));
        assert_eq!(r.deadline, b.deadline);
        // Overspent: the next attempt trips on its first step.
        let g = ExecGuard::new(b.remaining_after(1000));
        assert!(matches!(
            g.step().unwrap_err(),
            GuardError::BudgetExceeded {
                resource: Resource::Steps,
                limit: 0,
                ..
            }
        ));
        // No step cap to begin with: nothing to shrink.
        assert_eq!(Budget::unlimited().remaining_after(10).max_steps, None);
    }

    #[test]
    fn guard_errors_classify() {
        let g = ExecGuard::new(Budget::unlimited().with_steps(0));
        assert_eq!(g.step().unwrap_err().class(), ErrorClass::Resource);
        let g = ExecGuard::new(Budget::unlimited().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(g.checkpoint().unwrap_err().class(), ErrorClass::Resource);
        let token = CancelToken::new();
        token.cancel();
        let g = ExecGuard::cancellable(token);
        assert_eq!(g.checkpoint().unwrap_err().class(), ErrorClass::Permanent);
    }

    #[test]
    fn display_mentions_progress() {
        let g = ExecGuard::new(Budget::unlimited().with_steps(1));
        g.step().unwrap();
        let err = g.step().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("step budget of 1"), "{msg}");
        assert!(msg.contains("2 steps"), "{msg}");
    }
}
