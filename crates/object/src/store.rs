//! The in-memory object store.
//!
//! Substitutes for the persistent OODB the paper assumes (DESIGN.md §2).
//! Provides exactly what the algebra and optimizer consume: class
//! registration, typed insertion, O(1) OID dereference, and class extents
//! (the set of all instances of a class) for scans and index builds.

use std::collections::HashMap;

use crate::error::{ObjectError, Result};

/// Failpoint checked on every fallible object-store lookup
/// ([`ObjectStore::get`]); arm it to simulate a failing object fetch.
pub const OBJECT_GET_PROBE: &str = "object.store.get";
use crate::object::Object;
use crate::oid::Oid;
use crate::schema::{AttrId, ClassDef, ClassId};
use crate::value::Value;

/// An in-memory object database: classes, objects, and extents.
#[derive(Debug, Default, Clone)]
pub struct ObjectStore {
    classes: Vec<ClassDef>,
    class_by_name: HashMap<String, ClassId>,
    objects: Vec<Object>,
    extents: Vec<Vec<Oid>>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a class; its extent starts empty.
    pub fn define_class(&mut self, def: ClassDef) -> Result<ClassId> {
        if self.class_by_name.contains_key(def.name()) {
            return Err(ObjectError::DuplicateClass {
                class: def.name().to_owned(),
            });
        }
        let id = ClassId(self.classes.len() as u32);
        self.class_by_name.insert(def.name().to_owned(), id);
        self.classes.push(def);
        self.extents.push(Vec::new());
        Ok(id)
    }

    /// Look up a class by name.
    pub fn class_id(&self, name: &str) -> Result<ClassId> {
        self.class_by_name
            .get(name)
            .copied()
            .ok_or_else(|| ObjectError::NoSuchClass {
                class: name.to_owned(),
            })
    }

    /// The schema of a class.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Schema lookup by name.
    pub fn class_by_name(&self, name: &str) -> Result<&ClassDef> {
        Ok(self.class(self.class_id(name)?))
    }

    /// Insert an object of class `class` with the given attribute row.
    /// The row is validated against the schema.
    pub fn insert(&mut self, class: ClassId, values: Vec<Value>) -> Result<Oid> {
        self.classes[class.0 as usize].check_row(&values)?;
        let oid = Oid(self.objects.len() as u64);
        self.objects.push(Object::new(oid, class, values));
        self.extents[class.0 as usize].push(oid);
        Ok(oid)
    }

    /// Insert by class name with named attribute values; unnamed attributes
    /// default to `Null`. Convenience for tests, examples, and workloads.
    pub fn insert_named(&mut self, class_name: &str, attrs: &[(&str, Value)]) -> Result<Oid> {
        let class = self.class_id(class_name)?;
        let def = self.class(class);
        let mut row = vec![Value::Null; def.arity()];
        for (name, value) in attrs {
            let (id, _) = def.attr(name).ok_or_else(|| ObjectError::NoSuchAttr {
                class: class_name.to_owned(),
                attr: (*name).to_owned(),
            })?;
            row[id.index()] = value.clone();
        }
        self.insert(class, row)
    }

    /// Dereference an OID.
    pub fn get(&self, oid: Oid) -> Result<&Object> {
        aqua_guard::failpoint::check(OBJECT_GET_PROBE)?;
        self.objects
            .get(oid.index())
            .ok_or(ObjectError::DanglingOid { oid })
    }

    /// Dereference an OID, panicking on a dangling reference. The algebra
    /// uses this internally for OIDs it obtained from this same store,
    /// which are valid by construction.
    #[inline]
    pub fn deref(&self, oid: Oid) -> &Object {
        &self.objects[oid.index()]
    }

    /// Attribute value of the object behind `oid`.
    #[inline]
    pub fn attr(&self, oid: Oid, attr: AttrId) -> &Value {
        self.deref(oid).get(attr)
    }

    /// Update one stored attribute of an existing object.
    pub fn update(&mut self, oid: Oid, attr: AttrId, value: Value) -> Result<()> {
        let class = self.get(oid)?.class();
        let def = &self.classes[class.0 as usize];
        let decl = &def.attrs()[attr.index()];
        if !decl.ty.admits(&value) {
            return Err(ObjectError::TypeMismatch {
                class: def.name().to_owned(),
                attr: decl.name.clone(),
                expected: decl.ty,
                got: value.type_name(),
            });
        }
        self.objects[oid.index()].set(attr, value);
        Ok(())
    }

    /// The extent (all instances, in insertion order) of a class.
    pub fn extent(&self, class: ClassId) -> &[Oid] {
        &self.extents[class.0 as usize]
    }

    /// Number of registered classes. `ClassId`s are dense, so classes
    /// are exactly `ClassId(0)..ClassId(class_count())`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total number of objects in the store.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterate over all objects in OID order.
    pub fn iter(&self) -> impl Iterator<Item = &Object> {
        self.objects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, AttrType};

    fn store_with_person() -> (ObjectStore, ClassId) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(
                ClassDef::new(
                    "Person",
                    vec![
                        AttrDef::stored("name", AttrType::Str),
                        AttrDef::stored("age", AttrType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        (s, c)
    }

    #[test]
    fn insert_and_deref() {
        let (mut s, c) = store_with_person();
        let oid = s
            .insert(c, vec![Value::str("ann"), Value::Int(30)])
            .unwrap();
        assert_eq!(s.attr(oid, AttrId(0)), &Value::str("ann"));
        assert_eq!(s.get(oid).unwrap().class(), c);
    }

    #[test]
    fn insert_named_defaults_to_null() {
        let (mut s, _) = store_with_person();
        let oid = s
            .insert_named("Person", &[("name", Value::str("bo"))])
            .unwrap();
        assert_eq!(s.attr(oid, AttrId(1)), &Value::Null);
    }

    #[test]
    fn insert_named_unknown_attr_fails() {
        let (mut s, _) = store_with_person();
        assert!(matches!(
            s.insert_named("Person", &[("height", Value::Int(3))]),
            Err(ObjectError::NoSuchAttr { .. })
        ));
    }

    #[test]
    fn extent_tracks_insertion_order() {
        let (mut s, c) = store_with_person();
        let a = s.insert(c, vec![Value::str("a"), Value::Int(1)]).unwrap();
        let b = s.insert(c, vec![Value::str("b"), Value::Int(2)]).unwrap();
        assert_eq!(s.extent(c), &[a, b]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn typed_insert_rejected() {
        let (mut s, c) = store_with_person();
        assert!(matches!(
            s.insert(c, vec![Value::Int(1), Value::Int(2)]),
            Err(ObjectError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn update_checks_type() {
        let (mut s, c) = store_with_person();
        let oid = s.insert(c, vec![Value::str("x"), Value::Int(1)]).unwrap();
        s.update(oid, AttrId(1), Value::Int(2)).unwrap();
        assert_eq!(s.attr(oid, AttrId(1)), &Value::Int(2));
        assert!(s.update(oid, AttrId(1), Value::str("bad")).is_err());
    }

    #[test]
    fn dangling_oid() {
        let (s, _) = store_with_person();
        assert!(matches!(
            s.get(Oid(99)),
            Err(ObjectError::DanglingOid { .. })
        ));
    }

    #[test]
    fn duplicate_class_rejected() {
        let (mut s, _) = store_with_person();
        assert!(matches!(
            s.define_class(ClassDef::new("Person", vec![]).unwrap()),
            Err(ObjectError::DuplicateClass { .. })
        ));
    }

    #[test]
    fn class_lookup() {
        let (s, c) = store_with_person();
        assert_eq!(s.class_id("Person").unwrap(), c);
        assert!(s.class_id("Alien").is_err());
        assert_eq!(s.class_by_name("Person").unwrap().arity(), 2);
    }
}
