//! The scalar value universe for stored attributes.
//!
//! Alphabet-predicates (paper §3.1) are restricted to *stored attribute
//! values, constants, comparisons, and boolean connectives* so that any
//! alphabet-predicate evaluates in constant time. [`Value`] is the type of
//! those stored attribute values and constants.

use std::cmp::Ordering;
use std::fmt;

use crate::oid::Oid;

/// A stored attribute value or predicate constant.
///
/// Comparisons between values of *different* variants are undefined (they
/// return `None` from [`Value::try_cmp`]), mirroring a typed schema: the
/// schema layer rejects ill-typed predicates before evaluation, and the
/// evaluator treats an undefined comparison as `false`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The absence of a value (an unset optional attribute).
    Null,
    /// A boolean attribute.
    Bool(bool),
    /// A 64-bit signed integer attribute.
    Int(i64),
    /// A 64-bit float attribute. `NaN` never compares equal.
    Float(f64),
    /// A string attribute.
    Str(String),
    /// A reference-valued attribute (an OID of another object).
    Ref(Oid),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Compare two values of the same variant; `None` if the variants
    /// differ, either value is `Null`, or a float comparison involves NaN.
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Ref(a), Value::Ref(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// True when this value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Ref(_) => "ref",
        }
    }

    /// A total-order key usable by ordered indices. Variants are ranked by
    /// discriminant; floats use IEEE total ordering so NaNs are storable.
    pub fn index_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
                Value::Ref(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Ref(a), Value::Ref(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(oid) => write!(f, "{oid}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Oid> for Value {
    fn from(oid: Oid) -> Self {
        Value::Ref(oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_variant_comparisons() {
        assert_eq!(Value::Int(1).try_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("a").try_cmp(&Value::str("a")),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Bool(true).try_cmp(&Value::Bool(false)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn cross_variant_comparison_is_undefined() {
        assert_eq!(Value::Int(1).try_cmp(&Value::str("1")), None);
        assert_eq!(Value::Null.try_cmp(&Value::Null), None);
        assert_eq!(Value::Int(0).try_cmp(&Value::Null), None);
    }

    #[test]
    fn nan_comparison_is_undefined_but_indexable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.try_cmp(&Value::Float(1.0)), None);
        // index_cmp is total: NaN has a stable position.
        assert_eq!(nan.index_cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn index_cmp_ranks_variants() {
        assert_eq!(Value::Null.index_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::str("z").index_cmp(&Value::Ref(Oid(0))),
            Ordering::Less
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(Oid(5)), Value::Ref(Oid(5)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
