//! Error type for the object layer.

use std::fmt;

use crate::oid::Oid;
use crate::schema::AttrType;

/// Result alias for object-layer operations.
pub type Result<T> = std::result::Result<T, ObjectError>;

/// Errors raised by schema definition, object insertion, and lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectError {
    /// A class declared two attributes with the same name.
    DuplicateAttr { class: String, attr: String },
    /// A class declared more attributes than `AttrId` can address.
    TooManyAttrs { class: String },
    /// Two classes with the same name were registered.
    DuplicateClass { class: String },
    /// Lookup of an unregistered class.
    NoSuchClass { class: String },
    /// Lookup of an attribute a class does not declare.
    NoSuchAttr { class: String, attr: String },
    /// An alphabet-predicate referenced a computed attribute (forbidden by
    /// paper §3.1 footnote 2).
    ComputedAttrInPredicate { class: String, attr: String },
    /// An inserted row had the wrong number of attribute values.
    ArityMismatch {
        class: String,
        expected: usize,
        got: usize,
    },
    /// An inserted value did not inhabit the declared attribute type.
    TypeMismatch {
        class: String,
        attr: String,
        expected: AttrType,
        got: &'static str,
    },
    /// Dereference of an OID the store never issued.
    DanglingOid { oid: Oid },
    /// A fault-injection point fired (testing only; see
    /// [`aqua_guard::failpoint`]).
    Injected { point: String, msg: String },
}

impl From<aqua_guard::failpoint::FailpointError> for ObjectError {
    fn from(e: aqua_guard::failpoint::FailpointError) -> Self {
        ObjectError::Injected {
            point: e.point,
            msg: e.msg,
        }
    }
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::DuplicateAttr { class, attr } => {
                write!(f, "class {class:?} declares attribute {attr:?} twice")
            }
            ObjectError::TooManyAttrs { class } => {
                write!(f, "class {class:?} declares more than 65535 attributes")
            }
            ObjectError::DuplicateClass { class } => {
                write!(f, "class {class:?} is already registered")
            }
            ObjectError::NoSuchClass { class } => write!(f, "no class named {class:?}"),
            ObjectError::NoSuchAttr { class, attr } => {
                write!(f, "class {class:?} has no attribute {attr:?}")
            }
            ObjectError::ComputedAttrInPredicate { class, attr } => write!(
                f,
                "attribute {class}.{attr} is computed; alphabet-predicates may only \
                 reference stored attributes"
            ),
            ObjectError::ArityMismatch {
                class,
                expected,
                got,
            } => write!(
                f,
                "class {class:?} expects {expected} attribute values, got {got}"
            ),
            ObjectError::TypeMismatch {
                class,
                attr,
                expected,
                got,
            } => write!(f, "attribute {class}.{attr} expects {expected}, got {got}"),
            ObjectError::DanglingOid { oid } => write!(f, "dangling OID {oid}"),
            ObjectError::Injected { point, msg } => {
                write!(f, "injected fault at {point:?}: {msg}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ObjectError::TypeMismatch {
            class: "Person".into(),
            attr: "age".into(),
            expected: AttrType::Int,
            got: "string",
        };
        let msg = e.to_string();
        assert!(msg.contains("Person.age"));
        assert!(msg.contains("int"));
        assert!(msg.contains("string"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ObjectError::DanglingOid { oid: Oid(3) });
        assert!(e.to_string().contains("#3"));
    }
}
