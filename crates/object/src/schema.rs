//! Class schemas.
//!
//! A class defines the positional layout of an object's stored attributes.
//! The paper's footnote 2 (§3.1) requires the optimizer to verify that
//! attributes referenced by alphabet-predicates are *stored*, not
//! computed; [`AttrKind`] records that distinction.

use std::fmt;

use crate::error::{ObjectError, Result};
use crate::value::Value;

/// Index of a class within an [`ObjectStore`](crate::ObjectStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

/// Positional index of an attribute within its class layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The raw offset of this attribute in the object's value vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    Bool,
    Int,
    Float,
    Str,
    /// A reference to another object.
    Ref,
}

impl AttrType {
    /// Whether `value` inhabits this type. `Null` inhabits every type
    /// (attributes are optional).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (AttrType::Bool, Value::Bool(_))
                | (AttrType::Int, Value::Int(_))
                | (AttrType::Float, Value::Float(_))
                | (AttrType::Str, Value::Str(_))
                | (AttrType::Ref, Value::Ref(_))
        )
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Bool => "bool",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "string",
            AttrType::Ref => "ref",
        };
        f.write_str(s)
    }
}

/// Whether an attribute is stored in the object or computed by a method.
///
/// Only *stored* attributes may appear in alphabet-predicates (paper
/// §3.1 footnote 2): this keeps predicate evaluation constant-time and is
/// checked by the pattern layer via [`ClassDef::stored_attr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    Stored,
    Computed,
}

/// Declaration of a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDef {
    pub name: String,
    pub ty: AttrType,
    pub kind: AttrKind,
}

impl AttrDef {
    /// A stored attribute declaration.
    pub fn stored(name: impl Into<String>, ty: AttrType) -> Self {
        AttrDef {
            name: name.into(),
            ty,
            kind: AttrKind::Stored,
        }
    }

    /// A computed attribute declaration (unusable in alphabet-predicates).
    pub fn computed(name: impl Into<String>, ty: AttrType) -> Self {
        AttrDef {
            name: name.into(),
            ty,
            kind: AttrKind::Computed,
        }
    }
}

/// A class: a named, ordered list of attribute declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    name: String,
    attrs: Vec<AttrDef>,
}

impl ClassDef {
    /// Define a class. Attribute names must be unique within the class.
    pub fn new(name: impl Into<String>, attrs: Vec<AttrDef>) -> Result<Self> {
        let name = name.into();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(ObjectError::DuplicateAttr {
                    class: name,
                    attr: a.name.clone(),
                });
            }
        }
        if attrs.len() > u16::MAX as usize {
            return Err(ObjectError::TooManyAttrs { class: name });
        }
        Ok(ClassDef { name, attrs })
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attribute declarations, in layout order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Number of attributes in the layout.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<(AttrId, &AttrDef)> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| (AttrId(i as u16), &self.attrs[i]))
    }

    /// Look up a *stored* attribute by name; errors if the attribute is
    /// missing or computed. This is the check the paper's footnote 2
    /// assigns to the query optimizer.
    pub fn stored_attr(&self, name: &str) -> Result<(AttrId, &AttrDef)> {
        let (id, def) = self.attr(name).ok_or_else(|| ObjectError::NoSuchAttr {
            class: self.name.clone(),
            attr: name.to_owned(),
        })?;
        if def.kind != AttrKind::Stored {
            return Err(ObjectError::ComputedAttrInPredicate {
                class: self.name.clone(),
                attr: name.to_owned(),
            });
        }
        Ok((id, def))
    }

    /// Validate a full row of attribute values against this layout.
    pub fn check_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.attrs.len() {
            return Err(ObjectError::ArityMismatch {
                class: self.name.clone(),
                expected: self.attrs.len(),
                got: values.len(),
            });
        }
        for (def, v) in self.attrs.iter().zip(values) {
            if !def.ty.admits(v) {
                return Err(ObjectError::TypeMismatch {
                    class: self.name.clone(),
                    attr: def.name.clone(),
                    expected: def.ty,
                    got: v.type_name(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> ClassDef {
        ClassDef::new(
            "Person",
            vec![
                AttrDef::stored("name", AttrType::Str),
                AttrDef::stored("age", AttrType::Int),
                AttrDef::computed("age_in_days", AttrType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let c = person();
        let (id, def) = c.attr("age").unwrap();
        assert_eq!(id, AttrId(1));
        assert_eq!(def.ty, AttrType::Int);
        assert!(c.attr("nope").is_none());
    }

    #[test]
    fn stored_attr_rejects_computed() {
        let c = person();
        assert!(c.stored_attr("name").is_ok());
        let err = c.stored_attr("age_in_days").unwrap_err();
        assert!(matches!(err, ObjectError::ComputedAttrInPredicate { .. }));
    }

    #[test]
    fn duplicate_attr_rejected() {
        let err = ClassDef::new(
            "C",
            vec![
                AttrDef::stored("x", AttrType::Int),
                AttrDef::stored("x", AttrType::Str),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ObjectError::DuplicateAttr { .. }));
    }

    #[test]
    fn row_validation() {
        let c = person();
        assert!(c
            .check_row(&[Value::str("ann"), Value::Int(30), Value::Null])
            .is_ok());
        // Null admitted anywhere.
        assert!(c
            .check_row(&[Value::Null, Value::Null, Value::Null])
            .is_ok());
        // Wrong arity.
        assert!(matches!(
            c.check_row(&[Value::str("ann")]),
            Err(ObjectError::ArityMismatch { .. })
        ));
        // Wrong type.
        assert!(matches!(
            c.check_row(&[Value::Int(1), Value::Int(30), Value::Null]),
            Err(ObjectError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn admits_matrix() {
        assert!(AttrType::Int.admits(&Value::Int(1)));
        assert!(!AttrType::Int.admits(&Value::str("1")));
        assert!(AttrType::Str.admits(&Value::Null));
    }
}
