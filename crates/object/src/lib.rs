//! # aqua-object — the object model substrate for AQUA
//!
//! The AQUA algebra (Subramanian, Leung, Vandenberg, Zdonik; ICDE 1995) is
//! defined over an object-oriented data model in which *all entities are
//! objects*: every entity has identity (an [`Oid`]) and a set of stored
//! attributes. This crate provides that substrate:
//!
//! * [`Oid`] — object identity.
//! * [`Value`] — the scalar value universe for stored attributes.
//! * [`Object`] — an object instance: an identity, a class, and attribute
//!   values laid out positionally according to the class schema.
//! * [`ClassDef`]/[`AttrDef`] — schemas. Alphabet-predicates may only
//!   reference *stored* attributes (paper §3.1), so schemas distinguish
//!   stored from computed attributes.
//! * [`ObjectStore`] — an in-memory object database with class extents.
//! * [`Cell`] — the cell indirection of paper §2: list/tree nodes hold
//!   cells, which hold OIDs, so nodes are unique while objects may repeat.
//! * [`EqKind`] — equality as a parameter (paper §2): identity, shallow
//!   value, or deep value equality.
//!
//! The paper assumes a persistent OODB; this crate substitutes an
//! in-memory store (see DESIGN.md §2, "Substitutions"). Everything the
//! algebra and the optimizer need from the backend — extent scans,
//! attribute lookup in constant time, and OID dereferencing — is preserved.

pub mod cell;
pub mod equality;
pub mod error;
pub mod object;
pub mod oid;
pub mod schema;
pub mod store;
pub mod value;

pub use cell::Cell;
pub use equality::EqKind;
pub use error::{ObjectError, Result};
pub use object::Object;
pub use oid::Oid;
pub use schema::{AttrDef, AttrId, AttrKind, AttrType, ClassDef, ClassId};
pub use store::{ObjectStore, OBJECT_GET_PROBE};
pub use value::Value;
