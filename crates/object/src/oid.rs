//! Object identifiers.
//!
//! Every entity in the AQUA model has identity (paper §2). An [`Oid`] is
//! the store-level handle for that identity: a dense `u64` assigned by the
//! [`ObjectStore`](crate::ObjectStore) at insertion time. OIDs are never
//! reused within a store.

use std::fmt;

/// The identity of an object in an [`ObjectStore`](crate::ObjectStore).
///
/// OIDs are dense (assigned `0, 1, 2, …` per store) so that stores and
/// indices can use them directly as vector offsets. They are meaningful
/// only relative to the store that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl Oid {
    /// The raw index value of this OID.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for Oid {
    fn from(raw: u64) -> Self {
        Oid(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_hash_prefixed() {
        assert_eq!(Oid(42).to_string(), "#42");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Oid(1) < Oid(2));
        assert_eq!(Oid(7), Oid(7));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(Oid(123).index(), 123);
        assert_eq!(Oid::from(9u64), Oid(9));
    }
}
