//! Cells — the node/element indirection of paper §2.
//!
//! The nodes of a list or tree form a *set*, which cannot contain
//! duplicates, yet lists and trees must be allowed to contain the same
//! object more than once. The paper resolves this by making the element
//! type of every list and tree `Cell[T]`: a cell is an object whose only
//! purpose is to hold the identity of another object. All nodes are then
//! unique (each holds a distinct cell) while several cells may reference
//! the same object. Query operators implicitly dereference the cell.

use crate::oid::Oid;

/// A cell holding the identity of a list/tree element's underlying object.
///
/// `List[T]` is shorthand for `List[Cell[T]]` (paper §2); in this
/// implementation every tree/list node's payload is a `Cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    contents: Oid,
}

impl Cell {
    /// Wrap an object identity in a fresh cell.
    #[inline]
    pub fn new(contents: Oid) -> Self {
        Cell { contents }
    }

    /// The identity of the contained object (the implicit dereference the
    /// query operators perform).
    #[inline]
    pub fn contents(self) -> Oid {
        self.contents
    }
}

impl From<Oid> for Cell {
    fn from(oid: Oid) -> Self {
        Cell::new(oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cells_may_share_contents() {
        let a = Cell::new(Oid(7));
        let b = Cell::new(Oid(7));
        // Cells compare by contents; node uniqueness is supplied by the
        // tree arena (distinct NodeIds), not by the cell itself.
        assert_eq!(a.contents(), b.contents());
    }

    #[test]
    fn from_oid() {
        assert_eq!(Cell::from(Oid(3)).contents(), Oid(3));
    }
}
