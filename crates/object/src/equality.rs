//! Equality as a parameter (paper §2).
//!
//! Since every AQUA entity has identity, "are these two things equal?"
//! has several defensible answers, and the paper makes equality a
//! *parameter* of the operators that need one (e.g. set `union`).
//! [`EqKind`] enumerates the notions this implementation supports and
//! [`EqKind::eq`] evaluates them against a store.

use std::collections::HashSet;

use crate::oid::Oid;
use crate::store::ObjectStore;
use crate::value::Value;

/// A notion of object equality, passed as a parameter to operators that
/// compare elements (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EqKind {
    /// Identity equality: same OID.
    #[default]
    Identity,
    /// Shallow value equality: same class and attribute-wise equal values,
    /// where reference attributes compare by OID.
    Shallow,
    /// Deep value equality: same class and attribute-wise equal values,
    /// where reference attributes compare by recursively applying deep
    /// equality (cycles compare equal if the correspondence is consistent).
    Deep,
}

impl EqKind {
    /// Evaluate this equality notion on two objects in `store`.
    pub fn eq(self, store: &ObjectStore, a: Oid, b: Oid) -> bool {
        match self {
            EqKind::Identity => a == b,
            EqKind::Shallow => shallow_eq(store, a, b),
            EqKind::Deep => deep_eq(store, a, b, &mut HashSet::new()),
        }
    }
}

fn shallow_eq(store: &ObjectStore, a: Oid, b: Oid) -> bool {
    if a == b {
        return true;
    }
    let (oa, ob) = (store.deref(a), store.deref(b));
    oa.class() == ob.class() && oa.values() == ob.values()
}

fn deep_eq(store: &ObjectStore, a: Oid, b: Oid, seen: &mut HashSet<(Oid, Oid)>) -> bool {
    if a == b {
        return true;
    }
    // A revisited pair is provisionally equal: the cycle is consistent so
    // far, and any inequality will be found along another path.
    if !seen.insert((a, b)) {
        return true;
    }
    let (oa, ob) = (store.deref(a), store.deref(b));
    if oa.class() != ob.class() || oa.values().len() != ob.values().len() {
        return false;
    }
    oa.values()
        .iter()
        .zip(ob.values())
        .all(|(va, vb)| match (va, vb) {
            (Value::Ref(ra), Value::Ref(rb)) => deep_eq(store, *ra, *rb, seen),
            _ => va == vb,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, AttrType, ClassDef};

    fn setup() -> ObjectStore {
        let mut s = ObjectStore::new();
        s.define_class(
            ClassDef::new(
                "Node",
                vec![
                    AttrDef::stored("label", AttrType::Str),
                    AttrDef::stored("next", AttrType::Ref),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    fn node(s: &mut ObjectStore, label: &str, next: Value) -> Oid {
        s.insert_named("Node", &[("label", Value::str(label)), ("next", next)])
            .unwrap()
    }

    #[test]
    fn identity_distinguishes_clones() {
        let mut s = setup();
        let a = node(&mut s, "x", Value::Null);
        let b = node(&mut s, "x", Value::Null);
        assert!(!EqKind::Identity.eq(&s, a, b));
        assert!(EqKind::Identity.eq(&s, a, a));
    }

    #[test]
    fn shallow_compares_values() {
        let mut s = setup();
        let a = node(&mut s, "x", Value::Null);
        let b = node(&mut s, "x", Value::Null);
        let c = node(&mut s, "y", Value::Null);
        assert!(EqKind::Shallow.eq(&s, a, b));
        assert!(!EqKind::Shallow.eq(&s, a, c));
    }

    #[test]
    fn shallow_refs_compare_by_oid() {
        let mut s = setup();
        let t1 = node(&mut s, "t", Value::Null);
        let t2 = node(&mut s, "t", Value::Null);
        let a = node(&mut s, "x", Value::Ref(t1));
        let b = node(&mut s, "x", Value::Ref(t2));
        // t1 != t2 as OIDs, so shallow says unequal…
        assert!(!EqKind::Shallow.eq(&s, a, b));
        // …but deep chases the references and finds equal values.
        assert!(EqKind::Deep.eq(&s, a, b));
    }

    #[test]
    fn deep_handles_cycles() {
        let mut s = setup();
        let a = node(&mut s, "c", Value::Null);
        let b = node(&mut s, "c", Value::Null);
        // Tie each into a self-cycle: a -> a, b -> b.
        let (na, _) = s.class_by_name("Node").unwrap().attr("next").unwrap();
        s.update(a, na, Value::Ref(a)).unwrap();
        s.update(b, na, Value::Ref(b)).unwrap();
        assert!(EqKind::Deep.eq(&s, a, b));
    }

    #[test]
    fn deep_detects_difference_through_cycle() {
        let mut s = setup();
        let a = node(&mut s, "c", Value::Null);
        let b = node(&mut s, "d", Value::Null); // different label
        let (na, _) = s.class_by_name("Node").unwrap().attr("next").unwrap();
        s.update(a, na, Value::Ref(a)).unwrap();
        s.update(b, na, Value::Ref(b)).unwrap();
        assert!(!EqKind::Deep.eq(&s, a, b));
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(EqKind::default(), EqKind::Identity);
    }
}
