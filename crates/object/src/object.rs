//! Object instances.

use crate::oid::Oid;
use crate::schema::{AttrId, ClassId};
use crate::value::Value;

/// An object: identity, class, and stored attribute values in the class's
/// layout order.
///
/// Objects are created through [`ObjectStore::insert`](crate::ObjectStore::insert),
/// which validates the value row against the class schema, so an `Object`
/// held by the store is always well-typed.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    oid: Oid,
    class: ClassId,
    values: Vec<Value>,
}

impl Object {
    pub(crate) fn new(oid: Oid, class: ClassId, values: Vec<Value>) -> Self {
        Object { oid, class, values }
    }

    /// This object's identity.
    #[inline]
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// The class this object is an instance of.
    #[inline]
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Stored attribute value at positional id `attr`. Constant time —
    /// this is what keeps alphabet-predicate evaluation O(1).
    #[inline]
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }

    /// All attribute values in layout order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub(crate) fn set(&mut self, attr: AttrId, value: Value) {
        self.values[attr.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let o = Object::new(Oid(1), ClassId(0), vec![Value::Int(5), Value::str("x")]);
        assert_eq!(o.oid(), Oid(1));
        assert_eq!(o.class(), ClassId(0));
        assert_eq!(o.get(AttrId(0)), &Value::Int(5));
        assert_eq!(o.get(AttrId(1)), &Value::str("x"));
        assert_eq!(o.values().len(), 2);
    }
}
