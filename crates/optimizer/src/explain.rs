//! Plan explanations.
//!
//! Every planning call returns an [`Explain`] alongside the chosen plan:
//! the candidate plans with their estimated costs, the rewrite rules
//! that fired, and the winner. The examples print these, mirroring how
//! the paper argues its rewrites ("the intuition is that split uses the
//! index on d to pick all the subtrees…").

use std::fmt;

use aqua_obs::MetricsSnapshot;

/// Record of one planning session.
#[derive(Debug, Clone, Default)]
pub struct Explain {
    /// Rendered candidate plans with estimated costs.
    pub considered: Vec<String>,
    /// Names of the rewrite rules that produced candidates.
    pub rules: Vec<String>,
    /// Rendered chosen plan.
    pub chosen: String,
    /// The chosen plan's estimated cost (cost-model units), kept as a
    /// number so it can be compared against [`Explain::metrics`] without
    /// re-parsing the rendered plan.
    pub predicted_cost: Option<f64>,
    /// Execution-time degradations: an indexed stage hit an injected
    /// fault and execution fell back to the naive path. Empty when the
    /// chosen plan ran as planned.
    pub fallbacks: Vec<String>,
    /// Worker count chosen for bulk (forest/set-wide) execution: 0 for
    /// plans where parallelism was never considered, 1 for "considered,
    /// stay serial", ≥ 2 for a parallel fleet.
    pub parallelism: usize,
    /// What execution actually did, frozen from the guard when the plan
    /// ran guarded: every guarded `execute_*` stamps one, with the
    /// engine-progress fields equal to the guard's own `Progress` and
    /// the detailed counters live whenever a metrics sink was armed
    /// (zeros otherwise). `None` for unguarded executions and plans that
    /// were never executed.
    pub metrics: Option<MetricsSnapshot>,
    /// Retry attempts a serving layer launched beyond the first (0 when
    /// the plan ran once, or ran bare).
    pub retries: usize,
    /// Serving-layer decisions taken around this execution, in order:
    /// retries with their cause, circuit-breaker trips, degraded
    /// dispatches. Empty for bare library calls.
    pub service_events: Vec<String>,
    /// Integrity decisions around this execution: certificates emitted
    /// and checked, verification verdicts. Empty unless the caller asked
    /// for verified execution.
    pub integrity_events: Vec<String>,
    /// Scatter-gather routing when the plan executed sharded: one entry
    /// per dispatched per-shard batch (`"shard 2: 5 members"`), in shard
    /// order. Empty for unsharded execution.
    pub shard_batches: Vec<String>,
}

impl Explain {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn consider(&mut self, plan: &impl fmt::Display) {
        self.considered.push(plan.to_string());
    }

    pub(crate) fn rule(&mut self, name: &str) {
        self.rules.push(name.to_owned());
    }

    pub(crate) fn choose(&mut self, plan: &impl fmt::Display) {
        self.chosen = plan.to_string();
    }

    /// Record the chosen plan's estimated cost.
    pub(crate) fn cost(&mut self, units: f64) {
        self.predicted_cost = Some(units);
    }

    /// Stamp what execution observed (see [`Explain::metrics`]).
    pub(crate) fn observe(&mut self, snapshot: MetricsSnapshot) {
        self.metrics = Some(snapshot);
    }

    /// Did the named rule fire during planning?
    pub fn used_rule(&self, name_prefix: &str) -> bool {
        self.rules.iter().any(|r| r.starts_with(name_prefix))
    }

    /// Record an execution-time fallback to the naive path.
    pub(crate) fn fallback(&mut self, why: String) {
        self.fallbacks.push(why);
    }

    /// Did execution degrade to a naive path?
    pub fn fell_back(&self) -> bool {
        !self.fallbacks.is_empty()
    }

    /// Record the chosen bulk-execution degree.
    pub(crate) fn degree(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    /// The chosen bulk-execution degree (1 when parallelism was never
    /// considered).
    pub fn chosen_degree(&self) -> usize {
        self.parallelism.max(1)
    }

    /// Record a serving-layer retry and its cause. Public: the service
    /// crate sits outside the optimizer.
    pub fn record_retry(&mut self, why: &str) {
        self.retries += 1;
        self.service_events
            .push(format!("retry #{}: {why}", self.retries));
    }

    /// Record a serving-layer decision (breaker trip, degraded dispatch,
    /// probe) that shaped this execution.
    pub fn record_service_event(&mut self, event: impl Into<String>) {
        self.service_events.push(event.into());
    }

    /// Record an integrity decision (certificate emitted/checked, root
    /// verified). Public: the service crate sits outside the optimizer.
    pub fn record_integrity_event(&mut self, event: impl Into<String>) {
        self.integrity_events.push(event.into());
    }

    /// Record one dispatched scatter-gather batch.
    pub(crate) fn shard_batch(&mut self, shard: usize, members: usize) {
        self.shard_batches
            .push(format!("shard {shard}: {members} members"));
    }

    /// Did this plan execute scatter-gather?
    pub fn scattered(&self) -> bool {
        !self.shard_batches.is_empty()
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| {
            let r = if first { Ok(()) } else { writeln!(f) };
            first = false;
            r
        };
        if !self.considered.is_empty() {
            sep(f)?;
            write!(f, "considered:")?;
            for c in &self.considered {
                write!(f, "\n  {c}")?;
            }
        }
        if !self.rules.is_empty() {
            sep(f)?;
            write!(f, "rules: {}", self.rules.join(", "))?;
        }
        if !self.chosen.is_empty() {
            sep(f)?;
            write!(f, "chosen: {}", self.chosen)?;
        }
        if let Some(c) = self.predicted_cost {
            sep(f)?;
            write!(f, "predicted cost: {c:.1} units")?;
        }
        if self.parallelism > 0 {
            sep(f)?;
            write!(
                f,
                "parallelism: {} worker{}",
                self.parallelism,
                if self.parallelism == 1 { "" } else { "s" }
            )?;
        }
        for fb in &self.fallbacks {
            sep(f)?;
            write!(f, "fallback: {fb}")?;
        }
        if !self.shard_batches.is_empty() {
            sep(f)?;
            write!(f, "scatter: {}", self.shard_batches.join(", "))?;
        }
        for ev in &self.service_events {
            sep(f)?;
            write!(f, "service: {ev}")?;
        }
        for ev in &self.integrity_events {
            sep(f)?;
            write!(f, "integrity: {ev}")?;
        }
        if let Some(m) = &self.metrics {
            sep(f)?;
            write!(
                f,
                "observed: {} steps, {} results, {:.1}ms",
                m.engine_steps,
                m.engine_results,
                m.engine_elapsed_nanos as f64 / 1e6
            )?;
            if m.vm_steps > 0 {
                write!(f, "\n  pike-vm: {} steps", m.vm_steps)?;
                if let Some(bound) = m.vm_state_set.max_bound() {
                    write!(f, ", state sets < {bound}")?;
                }
            }
            if m.match_candidates > 0 {
                write!(
                    f,
                    "\n  matcher: {} candidates, {} pruned, {} matches, {} visits",
                    m.match_candidates, m.match_candidates_pruned, m.matches_found, m.match_visits
                )?;
            }
            if m.split_pieces > 0 {
                write!(f, "\n  split: {} pieces", m.split_pieces)?;
            }
            if m.cache_lookups > 0 {
                write!(
                    f,
                    "\n  pattern cache: {}/{} hits",
                    m.cache_hits, m.cache_lookups
                )?;
            }
            if m.pool_workers > 0 {
                write!(
                    f,
                    "\n  pool: {} workers, {} items, {} steals",
                    m.pool_workers, m.pool_items, m.pool_steals
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let mut e = Explain::new();
        e.consider(&"plan-a cost=10");
        e.consider(&"plan-b cost=2");
        e.rule("decompose-subselect-via-split(§4)");
        e.choose(&"plan-b cost=2");
        assert!(e.used_rule("decompose"));
        assert!(!e.used_rule("positional"));
        let s = e.to_string();
        assert!(s.contains("plan-a") && s.contains("chosen: plan-b"));
    }
}
