//! Plan explanations.
//!
//! Every planning call returns an [`Explain`] alongside the chosen plan:
//! the candidate plans with their estimated costs, the rewrite rules
//! that fired, and the winner. The examples print these, mirroring how
//! the paper argues its rewrites ("the intuition is that split uses the
//! index on d to pick all the subtrees…").

use std::fmt;

/// Record of one planning session.
#[derive(Debug, Clone, Default)]
pub struct Explain {
    /// Rendered candidate plans with estimated costs.
    pub considered: Vec<String>,
    /// Names of the rewrite rules that produced candidates.
    pub rules: Vec<String>,
    /// Rendered chosen plan.
    pub chosen: String,
}

impl Explain {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn consider(&mut self, plan: &impl fmt::Display) {
        self.considered.push(plan.to_string());
    }

    pub(crate) fn rule(&mut self, name: &str) {
        self.rules.push(name.to_owned());
    }

    pub(crate) fn choose(&mut self, plan: &impl fmt::Display) {
        self.chosen = plan.to_string();
    }

    /// Did the named rule fire during planning?
    pub fn used_rule(&self, name_prefix: &str) -> bool {
        self.rules.iter().any(|r| r.starts_with(name_prefix))
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "considered:")?;
        for c in &self.considered {
            writeln!(f, "  {c}")?;
        }
        if !self.rules.is_empty() {
            writeln!(f, "rules: {}", self.rules.join(", "))?;
        }
        write!(f, "chosen: {}", self.chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let mut e = Explain::new();
        e.consider(&"plan-a cost=10");
        e.consider(&"plan-b cost=2");
        e.rule("decompose-subselect-via-split(§4)");
        e.choose(&"plan-b cost=2");
        assert!(e.used_rule("decompose"));
        assert!(!e.used_rule("positional"));
        let s = e.to_string();
        assert!(s.contains("plan-a") && s.contains("chosen: plan-b"));
    }
}
