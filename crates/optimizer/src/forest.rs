//! Forest-wide planning: `sub_select` over a `Set[Tree]` with a chosen
//! parallel degree.
//!
//! The per-member plan (naive scan vs indexed probe) is the §4 story
//! unchanged; what a forest adds is a *degree* decision — how many pool
//! workers the bulk call should use — made by
//! [`CostModel::parallel_degree`](crate::CostModel::parallel_degree)
//! from the estimated forest-wide scan cost, and recorded in
//! [`Explain::parallelism`]. Execution shards members over the
//! [`aqua_exec`] pool; because access methods are per member (a
//! [`TreeNodeIndex`](aqua_store::TreeNodeIndex) covers one tree), the
//! executor takes one [`Catalog`] per member. Index-probe faults degrade
//! that member to the naive scan exactly as in the serial path, with the
//! fallback recorded per member, in member order, whatever the schedule.

use aqua_algebra::bulk::TreeSet;
use aqua_algebra::Tree;
use aqua_exec as exec;
use aqua_guard::SharedGuard;
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::TreePattern;

use crate::catalog::Catalog;
use crate::error::{OptError, Result};
use crate::explain::Explain;
use crate::plan::TreePlan;
use crate::Optimizer;

/// A physical plan for `sub_select` over a forest: the per-member plan
/// plus the chosen worker count.
pub struct ForestPlan {
    /// The per-member plan, shared `&`-only across workers.
    pub plan: TreePlan,
    /// Chosen worker count (1 = serial).
    pub degree: usize,
}

impl Optimizer<'_> {
    /// Plan `sub_select(pattern)` over a forest whose members have
    /// `member_sizes` nodes, willing to use up to `max_threads` workers.
    /// The representative catalog (this optimizer's) chooses the
    /// per-member plan; the degree comes from the estimated forest-wide
    /// cost. `Explain::parallelism` records the decision.
    pub fn plan_forest_sub_select(
        &self,
        pattern: &TreePattern,
        member_sizes: &[usize],
        max_threads: usize,
    ) -> Result<(ForestPlan, Explain)> {
        let members = member_sizes.len();
        let total: usize = member_sizes.iter().sum();
        let avg = total.checked_div(members).map_or(1, |a| a.max(1));
        let (plan, mut explain) = self.plan_tree_sub_select(pattern, avg)?;
        let est_forest = plan.est_cost() * members as f64;
        let degree = self.cost.parallel_degree(members, est_forest, max_threads);
        explain.degree(degree);
        explain.cost(est_forest);
        Ok((ForestPlan { plan, degree }, explain))
    }

    /// [`plan_forest_sub_select`](Self::plan_forest_sub_select) for a
    /// sharded store: the parallel work items of a scatter-gather plan
    /// are per-shard *batches*, not members, so the degree is clamped to
    /// the shard count — more workers than shards would only idle.
    pub fn plan_forest_sub_select_sharded(
        &self,
        pattern: &TreePattern,
        member_sizes: &[usize],
        max_threads: usize,
        shards: usize,
    ) -> Result<(ForestPlan, Explain)> {
        let (mut fp, mut explain) =
            self.plan_forest_sub_select(pattern, member_sizes, max_threads)?;
        fp.degree = fp.degree.min(shards.max(1));
        explain.degree(fp.degree);
        explain.rule("scatter-gather-by-shard");
        Ok((fp, explain))
    }
}

/// Prefer the fleet's merged verdict over whichever worker's error won
/// the race to the pool.
fn fleet_err(guard: Option<&SharedGuard>, e: OptError) -> OptError {
    match guard.and_then(|g| g.verdict()) {
        Some(v) => OptError::Guard(v),
        None => e,
    }
}

impl ForestPlan {
    /// Execute over `set`, one catalog per member (access methods are
    /// per tree). Results are merged in member order — identical to the
    /// serial loop for every degree — and per-member fallbacks are
    /// recorded in `explain` in member order.
    pub fn execute_guarded(
        &self,
        catalogs: &[Catalog<'_>],
        set: &TreeSet,
        cfg: &MatchConfig,
        guard: Option<&SharedGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<(usize, Tree)>> {
        self.execute_guarded_at(self.degree, catalogs, set, cfg, guard, explain)
    }

    /// [`execute_guarded`](Self::execute_guarded) at an explicit worker
    /// count, overriding the planned degree — the hook a serving layer
    /// under backpressure uses to run a plan narrower than planned (a
    /// [`WorkerPermits`](aqua_exec::WorkerPermits) grant) without
    /// replanning.
    pub fn execute_guarded_at(
        &self,
        degree: usize,
        catalogs: &[Catalog<'_>],
        set: &TreeSet,
        cfg: &MatchConfig,
        guard: Option<&SharedGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<(usize, Tree)>> {
        if catalogs.len() != set.len() {
            return Err(OptError::CatalogMismatch {
                members: set.len(),
                catalogs: catalogs.len(),
            });
        }
        let degree = degree.max(1);
        explain.degree(degree);
        type MemberOut = (Vec<Tree>, Vec<String>);
        let run: std::result::Result<Vec<MemberOut>, OptError> =
            exec::try_par_map_guarded(set.members(), degree, guard, |i, tree, g| {
                let mut local = Explain::default();
                // The non-stamping core: members share the fleet sink,
                // so one fleet-wide snapshot (below) covers them all.
                let out = self
                    .plan
                    .execute_core(&catalogs[i], tree, cfg, g, &mut local)?;
                Ok::<_, OptError>((out, local.fallbacks))
            });
        // Workers have flushed by now; stamp the merged fleet totals
        // whether execution succeeded or tripped.
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        let per = run.map_err(|e| fleet_err(guard, e))?;
        let mut out = Vec::new();
        for (i, (trees, fallbacks)) in per.into_iter().enumerate() {
            for why in fallbacks {
                explain.fallback(format!("member {i}: {why}"));
            }
            for t in trees {
                out.push((i, t));
            }
        }
        Ok(out)
    }

    /// Scatter-gather execution over a sharded store: members are
    /// grouped into per-shard [`ShardBatch`](exec::ShardBatch)es by
    /// `shard_of` (member index → owning shard), one worker runs a whole
    /// batch against its shard's extents, and the gather phase re-sorts
    /// everything by member index — so the answer is byte-identical to
    /// [`execute_guarded`](Self::execute_guarded) and to the serial
    /// loop, whatever the routing or schedule. Fallbacks land in
    /// `explain` in member order, and each dispatched batch is stamped
    /// into [`Explain::shard_batches`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_scatter_gather(
        &self,
        catalogs: &[Catalog<'_>],
        set: &TreeSet,
        cfg: &MatchConfig,
        shards: usize,
        shard_of: impl Fn(usize) -> usize + Sync,
        guard: Option<&SharedGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<(usize, Tree)>> {
        self.execute_scatter_gather_at(
            self.degree,
            catalogs,
            set,
            cfg,
            shards,
            shard_of,
            guard,
            explain,
        )
    }

    /// [`execute_scatter_gather`](Self::execute_scatter_gather) at an
    /// explicit worker count — the backpressure hook, mirroring
    /// [`execute_guarded_at`](Self::execute_guarded_at): a serving layer
    /// holding fewer worker permits than planned runs the same plan
    /// narrower without replanning.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_scatter_gather_at(
        &self,
        degree: usize,
        catalogs: &[Catalog<'_>],
        set: &TreeSet,
        cfg: &MatchConfig,
        shards: usize,
        shard_of: impl Fn(usize) -> usize + Sync,
        guard: Option<&SharedGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<(usize, Tree)>> {
        if catalogs.len() != set.len() {
            return Err(OptError::CatalogMismatch {
                members: set.len(),
                catalogs: catalogs.len(),
            });
        }
        let batches = exec::shard_batches(set.len(), shards, shard_of);
        let degree = degree.clamp(1, batches.len().max(1));
        explain.degree(degree);
        for b in &batches {
            explain.shard_batch(b.shard, b.members.len());
        }
        if let Some(m) = guard.and_then(|g| g.metrics()) {
            m.scatter_queries.inc();
            m.scatter_batches.add(batches.len() as u64);
        }
        type BatchOut = Vec<(usize, Vec<Tree>, Vec<String>)>;
        let run: std::result::Result<Vec<BatchOut>, OptError> =
            exec::try_par_map_guarded(&batches, degree, guard, |_, batch, g| {
                let mut done = Vec::with_capacity(batch.members.len());
                for &i in &batch.members {
                    let mut local = Explain::default();
                    let out = self.plan.execute_core(
                        &catalogs[i],
                        &set.members()[i],
                        cfg,
                        g,
                        &mut local,
                    )?;
                    done.push((i, out, local.fallbacks));
                }
                Ok::<_, OptError>(done)
            });
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        let per = run.map_err(|e| fleet_err(guard, e))?;
        // Gather: batches come back in batch order; re-sort emitted
        // members by index to restore the serial answer exactly.
        let mut members: Vec<(usize, Vec<Tree>, Vec<String>)> = per.into_iter().flatten().collect();
        members.sort_by_key(|(i, _, _)| *i);
        let mut out = Vec::new();
        for (i, trees, fallbacks) in members {
            for why in fallbacks {
                explain.fallback(format!("member {i}: {why}"));
            }
            for t in trees {
                out.push((i, t));
            }
        }
        Ok(out)
    }
}
