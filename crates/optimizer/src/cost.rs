//! The cost model.
//!
//! Deliberately simple (the paper defers its cost model to the EPOQ
//! work): plan cost = number of node/element tests × per-test pattern
//! weight, plus probe costs for indexed plans. What matters for the
//! rewrites is the *shape*: a full pattern scan touches every node with
//! the whole pattern, an indexed plan touches `log(distinct) +
//! candidates` entries and runs the pattern only on the candidates.

use aqua_pattern::PredExpr;
use aqua_store::ColumnStats;

/// Tunable cost weights.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of evaluating one alphabet-predicate on one element.
    pub pred_test: f64,
    /// Cost of one B-tree probe step.
    pub probe_step: f64,
    /// Selectivity assumed for a predicate with no statistics.
    pub default_selectivity: f64,
    /// Cost of spawning one pool worker (scoped-thread startup plus its
    /// share of the order-preserving merge). Parallelism only pays when
    /// the per-worker slice of the scan dwarfs this.
    pub worker_spawn: f64,
    /// Throughput multiplier of the batched columnar scan over the
    /// per-element pointer walk: flat predicate programs run over
    /// contiguous OID columns in chunks (amortized dereferences, bitset
    /// combination, chunked guard charging), so one "scan" of `n`
    /// elements costs `n / batch_factor` pred-test units.
    pub batch_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pred_test: 1.0,
            probe_step: 2.0,
            default_selectivity: 0.1,
            worker_spawn: 5_000.0,
            batch_factor: 4.0,
        }
    }
}

impl CostModel {
    /// Estimated fraction of elements satisfying `pred`, given optional
    /// statistics.
    pub fn selectivity(&self, pred: &PredExpr, stats: Option<&ColumnStats>) -> f64 {
        match stats {
            Some(s) => s.selectivity(pred),
            None => self.default_selectivity,
        }
    }

    /// Cost of scanning `n` elements testing a pattern of `size` states
    /// at each, one element at a time (pointer walk).
    pub fn scan(&self, n: usize, pattern_size: usize) -> f64 {
        n as f64 * pattern_size as f64 * self.pred_test
    }

    /// Cost of the same scan run batched over a contiguous OID column
    /// (see [`batch_factor`](CostModel::batch_factor)).
    pub fn scan_batched(&self, n: usize, pattern_size: usize) -> f64 {
        self.scan(n, pattern_size) / self.batch_factor.max(1.0)
    }

    /// Cost of an index probe returning `hits` candidates out of
    /// `distinct` keys, then verifying a `pattern_size` pattern at each.
    pub fn probe_then_verify(&self, distinct: usize, hits: f64, pattern_size: usize) -> f64 {
        let probe = self.probe_step * (distinct.max(2) as f64).log2();
        probe + hits * (1.0 + pattern_size as f64 * self.pred_test)
    }

    /// How many pool workers a forest-wide bulk operator should use,
    /// given the estimated cost of the whole (serial) scan. Parallelism
    /// is granted one worker per [`worker_spawn`](CostModel::worker_spawn)
    /// of estimated work, capped by the member count (a member is the
    /// unit of sharding) and the caller's thread budget. Returns ≥ 1;
    /// 1 means "stay serial".
    pub fn parallel_degree(&self, members: usize, est_scan_cost: f64, max_threads: usize) -> usize {
        if members <= 1 || max_threads <= 1 {
            return 1;
        }
        let by_work = (est_scan_cost / self.worker_spawn.max(1.0)).floor() as usize;
        by_work.clamp(1, max_threads.min(members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_beats_scan_when_selective() {
        let m = CostModel::default();
        let n = 100_000;
        let scan = m.scan(n, 8);
        // 0.1% selectivity → 100 candidates.
        let probe = m.probe_then_verify(1000, 100.0, 8);
        assert!(probe < scan);
    }

    #[test]
    fn scan_beats_probe_when_unselective() {
        let m = CostModel::default();
        let n = 100;
        let scan = m.scan(n, 2);
        let probe = m.probe_then_verify(2, n as f64, 2);
        assert!(scan <= probe);
    }

    #[test]
    fn default_selectivity_without_stats() {
        let m = CostModel::default();
        let s = m.selectivity(&PredExpr::eq("x", 1), None);
        assert!((s - 0.1).abs() < 1e-9);
    }
}
