//! The catalog: what access methods and statistics exist.
//!
//! Rewrite rules fire only when the access method they need is
//! registered here — exactly the paper's precondition "Assume that we
//! can use an index to efficiently locate all nodes in T that match d"
//! (§4).

use std::collections::HashMap;

use aqua_object::{ClassId, ObjectStore};
use aqua_store::{AttrIndex, ColumnStats, ListPosIndex, StructuralIndex, TreeNodeIndex};

/// Access methods and statistics available for one element class.
pub struct Catalog<'a> {
    pub store: &'a ObjectStore,
    pub class: ClassId,
    tree_indices: HashMap<String, &'a TreeNodeIndex>,
    attr_indices: HashMap<String, &'a AttrIndex>,
    list_indices: HashMap<String, &'a ListPosIndex>,
    stats: HashMap<String, &'a ColumnStats>,
    structural: Option<&'a StructuralIndex>,
    epoch: Option<u64>,
}

impl<'a> Catalog<'a> {
    /// An empty catalog for `class`.
    pub fn new(store: &'a ObjectStore, class: ClassId) -> Self {
        Catalog {
            store,
            class,
            tree_indices: HashMap::new(),
            attr_indices: HashMap::new(),
            list_indices: HashMap::new(),
            stats: HashMap::new(),
            structural: None,
            epoch: None,
        }
    }

    /// Declare the store's current mutation epoch. When set, every
    /// index probe passes it through the staleness gate: an index built
    /// at an older epoch refuses to answer
    /// ([`aqua_store::StoreError::StaleIndex`]) and the plan falls back
    /// to a scan, recording the fallback in its `Explain`. When unset
    /// (the default), staleness checking is off — the legacy trust-the-
    /// caller mode.
    pub fn set_epoch(&mut self, epoch: u64) -> &mut Self {
        self.epoch = Some(epoch);
        self
    }

    /// The declared store epoch, if any.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    fn attr_name(&self, attr: aqua_object::AttrId) -> String {
        self.store.class(self.class).attrs()[attr.index()]
            .name
            .clone()
    }

    /// Register a tree-node index (keyed by its attribute's name).
    pub fn add_tree_index(&mut self, idx: &'a TreeNodeIndex) -> &mut Self {
        self.tree_indices.insert(self.attr_name(idx.attr()), idx);
        self
    }

    /// Register an extent index.
    pub fn add_attr_index(&mut self, idx: &'a AttrIndex) -> &mut Self {
        self.attr_indices.insert(self.attr_name(idx.attr()), idx);
        self
    }

    /// Register a list positional index.
    pub fn add_list_index(&mut self, idx: &'a ListPosIndex) -> &mut Self {
        self.list_indices.insert(self.attr_name(idx.attr()), idx);
        self
    }

    /// Register column statistics.
    pub fn add_stats(&mut self, stats: &'a ColumnStats) -> &mut Self {
        self.stats.insert(self.attr_name(stats.attr()), stats);
        self
    }

    /// Register the structural (interval) index of the subject tree.
    pub fn add_structural_index(&mut self, idx: &'a StructuralIndex) -> &mut Self {
        self.structural = Some(idx);
        self
    }

    /// The structural index, if registered.
    pub fn structural(&self) -> Option<&'a StructuralIndex> {
        self.structural
    }

    /// Tree index on `attr`, if registered.
    pub fn tree_index(&self, attr: &str) -> Option<&'a TreeNodeIndex> {
        self.tree_indices.get(attr).copied()
    }

    /// Extent index on `attr`, if registered.
    pub fn attr_index(&self, attr: &str) -> Option<&'a AttrIndex> {
        self.attr_indices.get(attr).copied()
    }

    /// List index on `attr`, if registered.
    pub fn list_index(&self, attr: &str) -> Option<&'a ListPosIndex> {
        self.list_indices.get(attr).copied()
    }

    /// Statistics on `attr`, if collected.
    pub fn stats(&self, attr: &str) -> Option<&'a ColumnStats> {
        self.stats.get(attr).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, Value};

    #[test]
    fn registration_and_lookup() {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(ClassDef::new("P", vec![AttrDef::stored("v", AttrType::Int)]).unwrap())
            .unwrap();
        store.insert_named("P", &[("v", Value::Int(1))]).unwrap();
        let idx = AttrIndex::build(&store, class, AttrId(0));
        let stats = ColumnStats::build(&store, class, AttrId(0));
        let mut cat = Catalog::new(&store, class);
        cat.add_attr_index(&idx).add_stats(&stats);
        assert!(cat.attr_index("v").is_some());
        assert!(cat.attr_index("w").is_none());
        assert!(cat.stats("v").is_some());
        assert!(cat.tree_index("v").is_none());
    }
}
