//! Rule: split a conjunctive `select` (paper §4's relational analogy).
//!
//! "A **select** with a complex conjunctive predicate might be rewritten
//! as an intersection of two or more selects, each containing a
//! different conjunct … some of which might be very cheap to process
//! (e.g., by using an index)." We realize the cheap piece as an index
//! probe and the rest as a residual filter; the most selective indexed
//! conjunct is chosen as the probe.

use aqua_pattern::PredExpr;

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::error::Result;
use crate::plan::SetPlan;

/// Try to produce an indexed candidate plan.
pub fn apply(pred: &PredExpr, catalog: &Catalog<'_>, cost: &CostModel) -> Result<Option<SetPlan>> {
    let conjuncts = pred.conjuncts();
    let n = catalog.store.extent(catalog.class).len();
    // Pick the most selective conjunct that has the probe shape and an
    // index.
    let mut best: Option<(usize, &str, aqua_pattern::CmpOp, &aqua_object::Value, f64)> = None;
    for (i, c) in conjuncts.iter().enumerate() {
        let PredExpr::Cmp { attr, op, constant } = c else {
            continue;
        };
        if catalog.attr_index(attr).is_none() {
            continue;
        }
        let sel = match catalog.stats(attr) {
            Some(s) => s.cmp_selectivity(*op, constant),
            None => cost.default_selectivity,
        };
        if best.is_none_or(|(_, _, _, _, b)| sel < b) {
            best = Some((i, attr, *op, constant, sel));
        }
    }
    let Some((probe_i, attr, op, value, sel)) = best else {
        return Ok(None);
    };
    let residual_conjuncts: Vec<PredExpr> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != probe_i)
        .map(|(_, c)| (*c).clone())
        .collect();
    let residual = if residual_conjuncts.is_empty() {
        None
    } else {
        Some(
            PredExpr::conjoin(&residual_conjuncts)
                .compile(catalog.class, catalog.store.class(catalog.class))?,
        )
    };
    let idx = catalog.attr_index(attr).expect("checked above");
    let est_candidates = sel * n as f64;
    let est_cost = cost.probe_then_verify(
        idx.distinct(),
        est_candidates,
        residual_conjuncts.len().max(1),
    );
    Ok(Some(SetPlan::IndexedExtentScan {
        attr: attr.to_owned(),
        op,
        value: value.clone(),
        residual,
        pred: pred.compile(catalog.class, catalog.store.class(catalog.class))?,
        pred_text: pred.to_string(),
        est_candidates,
        est_cost,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, ObjectStore, Value};
    use aqua_store::{AttrIndex, ColumnStats};

    fn setup() -> (ObjectStore, aqua_object::ClassId) {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new(
                    "P",
                    vec![
                        AttrDef::stored("a", AttrType::Int),
                        AttrDef::stored("b", AttrType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        for i in 0..100i64 {
            store
                .insert_named("P", &[("a", Value::Int(i % 50)), ("b", Value::Int(i % 2))])
                .unwrap();
        }
        (store, class)
    }

    #[test]
    fn picks_most_selective_indexed_conjunct() {
        let (store, class) = setup();
        let ia = AttrIndex::build(&store, class, AttrId(0));
        let ib = AttrIndex::build(&store, class, AttrId(1));
        let sa = ColumnStats::build(&store, class, AttrId(0));
        let sb = ColumnStats::build(&store, class, AttrId(1));
        let mut cat = Catalog::new(&store, class);
        cat.add_attr_index(&ia)
            .add_attr_index(&ib)
            .add_stats(&sa)
            .add_stats(&sb);
        // a = 7 (selectivity 2%) AND b = 0 (selectivity 50%): probe on a.
        let pred = PredExpr::eq("b", 0).and(PredExpr::eq("a", 8));
        let plan = apply(&pred, &cat, &CostModel::default())
            .unwrap()
            .expect("rule fires");
        match &plan {
            SetPlan::IndexedExtentScan { attr, residual, .. } => {
                assert_eq!(attr, "a");
                assert!(residual.is_some());
            }
            other => panic!("unexpected plan {other}"),
        }
        // And the result equals the naive filter.
        let got = plan.execute(&cat).unwrap();
        let naive: Vec<_> = store
            .extent(class)
            .iter()
            .copied()
            .filter(|&o| {
                store.attr(o, AttrId(0)) == &Value::Int(8)
                    && store.attr(o, AttrId(1)) == &Value::Int(0)
            })
            .collect();
        assert_eq!(got, naive);
        assert!(!got.is_empty());
    }

    #[test]
    fn declines_without_any_indexed_conjunct() {
        let (store, class) = setup();
        let cat = Catalog::new(&store, class);
        let pred = PredExpr::eq("a", 7);
        assert!(apply(&pred, &cat, &CostModel::default()).unwrap().is_none());
    }

    #[test]
    fn single_conjunct_has_no_residual() {
        let (store, class) = setup();
        let ia = AttrIndex::build(&store, class, AttrId(0));
        let mut cat = Catalog::new(&store, class);
        cat.add_attr_index(&ia);
        let pred = PredExpr::eq("a", 7);
        let plan = apply(&pred, &cat, &CostModel::default()).unwrap().unwrap();
        match &plan {
            SetPlan::IndexedExtentScan { residual, .. } => assert!(residual.is_none()),
            other => panic!("unexpected plan {other}"),
        }
        assert_eq!(plan.execute(&cat).unwrap().len(), 2);
    }
}
