//! Rule: decompose `sub_select` through `split` (paper §4).
//!
//! `sub_select(tp)(T)` ≡ `apply(sub_select(⊤tp))(split(root(tp), …)(T))`:
//! the pattern's root predicate is answered by a tree-node index, and
//! the ⊤-anchored residual pattern is verified only at the candidate
//! roots. Applicable when the root predicate (or one of its conjuncts)
//! has the probe shape `attr op constant` and the catalog has a
//! [`TreeNodeIndex`](aqua_store::TreeNodeIndex) on that attribute.

use aqua_pattern::decompose::tree_root_pred;
use aqua_pattern::TreePattern;

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::error::Result;
use crate::plan::TreePlan;
use crate::rules::probe_shape;

/// Try to produce an indexed candidate plan.
pub fn apply(
    pattern: &TreePattern,
    tree_size: usize,
    catalog: &Catalog<'_>,
    cost: &CostModel,
) -> Result<Option<TreePlan>> {
    let Some(root_pred) = tree_root_pred(&pattern.pat) else {
        return Ok(None);
    };
    let Some((_, attr, op, value)) = probe_shape(&root_pred) else {
        return Ok(None);
    };
    let Some(idx) = catalog.tree_index(attr) else {
        return Ok(None);
    };
    let selectivity = match catalog.stats(attr) {
        Some(s) => s.cmp_selectivity(op, value),
        None => match op {
            aqua_pattern::CmpOp::Eq => 1.0 / idx.distinct().max(1) as f64,
            _ => cost.default_selectivity,
        },
    };
    let est_candidates = selectivity * tree_size as f64;
    let compiled = pattern.compile(catalog.class, catalog.store.class(catalog.class))?;
    let est_cost = cost.probe_then_verify(idx.distinct(), est_candidates, compiled.size());
    Ok(Some(TreePlan::IndexedPatternScan {
        attr: attr.to_owned(),
        op,
        value: value.clone(),
        pattern_text: pattern.to_string(),
        pattern: compiled,
        est_candidates,
        est_cost,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_algebra::tree::ops::sub_select;
    use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, ObjectStore, Value};
    use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
    use aqua_pattern::tree_match::MatchConfig;
    use aqua_store::TreeNodeIndex;

    fn setup() -> (ObjectStore, aqua_object::ClassId, aqua_algebra::Tree) {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        // Build r(x(d(e)) x x d(e))
        let mut mk = |l: &str| {
            store
                .insert_named("N", &[("label", Value::str(l))])
                .unwrap()
        };
        let (r, x1, d1, e1, x2, x3, d2, e2) = (
            mk("r"),
            mk("x"),
            mk("d"),
            mk("e"),
            mk("x"),
            mk("x"),
            mk("d"),
            mk("e"),
        );
        let mut b = aqua_algebra::TreeBuilder::new();
        let ne1 = b.node(e1, vec![]);
        let nd1 = b.node(d1, vec![ne1]);
        let nx1 = b.node(x1, vec![nd1]);
        let nx2 = b.node(x2, vec![]);
        let nx3 = b.node(x3, vec![]);
        let ne2 = b.node(e2, vec![]);
        let nd2 = b.node(d2, vec![ne2]);
        let root = b.node(r, vec![nx1, nx2, nx3, nd2]);
        let tree = b.finish(root).unwrap();
        (store, class, tree)
    }

    #[test]
    fn rule_fires_with_index_and_matches_naive() {
        let (store, class, tree) = setup();
        let idx = TreeNodeIndex::build(&store, &tree, class, AttrId(0));
        let mut catalog = Catalog::new(&store, class);
        catalog.add_tree_index(&idx);
        let pattern = parse_tree_pattern("d(e)", &PredEnv::with_default_attr("label")).unwrap();
        let plan = apply(&pattern, tree.len(), &catalog, &CostModel::default())
            .unwrap()
            .expect("rule should fire");
        assert!(plan.is_indexed());
        let cfg = MatchConfig::default();
        let fast = plan.execute(&catalog, &tree, &cfg).unwrap();
        let compiled = pattern.compile(class, store.class(class)).unwrap();
        let naive = sub_select(&store, &tree, &compiled, &cfg).unwrap();
        assert_eq!(fast.len(), naive.len());
        assert_eq!(fast.len(), 2);
        for (a, b) in fast.iter().zip(&naive) {
            assert!(a.structural_eq(b));
        }
    }

    #[test]
    fn rule_declines_without_index_or_root_pred() {
        let (store, class, tree) = setup();
        let catalog = Catalog::new(&store, class);
        let env = PredEnv::with_default_attr("label");
        let pattern = parse_tree_pattern("d(e)", &env).unwrap();
        assert!(apply(&pattern, tree.len(), &catalog, &CostModel::default())
            .unwrap()
            .is_none());
        // Wildcard root has no predicate to probe.
        let idx = TreeNodeIndex::build(&store, &tree, class, AttrId(0));
        let mut catalog = Catalog::new(&store, class);
        catalog.add_tree_index(&idx);
        let wild = parse_tree_pattern("?(e)", &env).unwrap();
        assert!(apply(&wild, tree.len(), &catalog, &CostModel::default())
            .unwrap()
            .is_none());
    }
}
