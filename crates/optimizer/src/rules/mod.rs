//! The rewrite rules.
//!
//! Each rule inspects a logical query, checks the catalog for the access
//! method it needs, and — when applicable — produces an indexed
//! candidate plan with an estimated cost. The optimizer keeps the
//! cheaper of {naive, candidate}; rules never change results, only
//! plans (property-tested in the integration suite).

pub mod decompose;
pub mod positional;
pub mod select_split;

use aqua_pattern::{CmpOp, PredExpr};

/// Extract an index-probe shape `attr op constant` from a predicate:
/// either the predicate itself is a comparison, or one of its top-level
/// conjuncts is. Returns the probe plus the probe conjunct's index
/// within `conjuncts()` (so callers can compute the residual).
pub(crate) fn probe_shape(pred: &PredExpr) -> Option<(usize, &str, CmpOp, &aqua_object::Value)> {
    for (i, c) in pred.conjuncts().into_iter().enumerate() {
        if let PredExpr::Cmp { attr, op, constant } = c {
            return Some((i, attr.as_str(), *op, constant));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_shape_finds_first_comparison() {
        let p = PredExpr::True
            .and(PredExpr::eq("a", 1))
            .and(PredExpr::eq("b", 2));
        let (i, attr, op, v) = probe_shape(&p).unwrap();
        assert_eq!((i, attr, op), (1, "a", CmpOp::Eq));
        assert_eq!(v, &aqua_object::Value::Int(1));
        assert!(probe_shape(&PredExpr::True).is_none());
        assert!(probe_shape(&PredExpr::eq("a", 1).or(PredExpr::eq("b", 2))).is_none());
    }
}
