//! Rule: probe a positional index for list patterns.
//!
//! When the required-predicate analysis
//! ([`aqua_pattern::decompose::list_required_pred`]) shows that every
//! match of the pattern has `attr = v` at a *fixed offset* from the
//! match start, the candidate starts are `positions(v) − offset` — a
//! positional-index probe — and the pattern runs only from those starts.
//! This is the list analogue of the §4 tree rewrite.

use aqua_pattern::ast::Re;
use aqua_pattern::decompose::list_required_pred;
use aqua_pattern::list::{ListPattern, Sym};
use aqua_pattern::PredExpr;

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::error::Result;
use crate::plan::ListPlan;

/// Try to produce a positional-probe candidate plan.
pub fn apply(
    re: &Re<Sym>,
    anchor_start: bool,
    anchor_end: bool,
    list_len: usize,
    catalog: &Catalog<'_>,
    cost: &CostModel,
) -> Result<Option<ListPlan>> {
    let Some(required) = list_required_pred(re) else {
        return Ok(None);
    };
    let Some(offset) = required.offset else {
        return Ok(None);
    };
    // Point-lookup shape only: positional probes are exact-value.
    let Some((attr, value)) = required.pred.as_point_lookup() else {
        return Ok(None);
    };
    let Some(idx) = catalog.list_index(attr) else {
        return Ok(None);
    };
    let sel = match catalog.stats(attr) {
        Some(s) => s.cmp_selectivity(aqua_pattern::CmpOp::Eq, value),
        None => cost.default_selectivity,
    };
    let est_candidates = sel * list_len as f64;
    let pattern = ListPattern::compile(
        re.clone(),
        anchor_start,
        anchor_end,
        catalog.class,
        catalog.store.class(catalog.class),
    )?;
    // Each candidate start costs one forward NFA run (≤ list length, but
    // typically pattern-length bounded); model it as pattern-sized.
    let est_cost = cost.probe_then_verify(idx.len().max(2), est_candidates, pattern.nfa_size());
    let _ = PredExpr::True; // (keep PredExpr in scope for doc links)
    Ok(Some(ListPlan::PositionalScan {
        attr: attr.to_owned(),
        value: value.clone(),
        offset,
        pattern,
        est_candidates,
        est_cost,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_algebra::list::ops::find_matches;
    use aqua_algebra::List;
    use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, ObjectStore, Value};
    use aqua_pattern::list::MatchMode;
    use aqua_pattern::parser::{parse_list_pattern, PredEnv};
    use aqua_store::ListPosIndex;

    fn setup(song: &str) -> (ObjectStore, aqua_object::ClassId, List) {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        let mut l = List::new();
        for ch in song.chars() {
            let oid = store
                .insert_named("Note", &[("pitch", Value::str(ch.to_string()))])
                .unwrap();
            l.push(oid);
        }
        (store, class, l)
    }

    #[test]
    fn fires_and_matches_naive() {
        let (store, class, list) = setup("GAXYFBACDFAAF");
        let idx = ListPosIndex::build(&store, &list, class, AttrId(0));
        let mut cat = Catalog::new(&store, class);
        cat.add_list_index(&idx);
        let (re, s, e) =
            parse_list_pattern("[A ? ? F]", &PredEnv::with_default_attr("pitch")).unwrap();
        let plan = apply(&re, s, e, list.len(), &cat, &CostModel::default())
            .unwrap()
            .expect("rule fires");
        assert!(plan.is_indexed());
        let fast = plan.execute(&cat, &list).unwrap();
        let pattern = ListPattern::compile(re, s, e, class, store.class(class)).unwrap();
        let naive = find_matches(&store, &list, &pattern, MatchMode::All);
        assert_eq!(fast, naive);
        assert!(!fast.is_empty());
    }

    #[test]
    fn declines_without_fixed_offset_or_index() {
        let (store, class, list) = setup("AF");
        let env = PredEnv::with_default_attr("pitch");
        // ?* A — no fixed offset for A… wait, offset of A is lost by ?*;
        // the required pred exists but offset is None → decline.
        let (re, s, e) = parse_list_pattern("[?* A]", &env).unwrap();
        let idx = ListPosIndex::build(&store, &list, class, AttrId(0));
        let mut cat = Catalog::new(&store, class);
        cat.add_list_index(&idx);
        assert!(apply(&re, s, e, list.len(), &cat, &CostModel::default())
            .unwrap()
            .is_none());
        // Fixed offset but no index → decline.
        let cat2 = Catalog::new(&store, class);
        let (re2, s2, e2) = parse_list_pattern("[A F]", &env).unwrap();
        assert!(
            apply(&re2, s2, e2, list.len(), &cat2, &CostModel::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn anchored_patterns_still_correct() {
        let (store, class, list) = setup("AFXAF");
        let idx = ListPosIndex::build(&store, &list, class, AttrId(0));
        let mut cat = Catalog::new(&store, class);
        cat.add_list_index(&idx);
        let env = PredEnv::with_default_attr("pitch");
        let (re, s, e) = parse_list_pattern("^[A F]", &env).unwrap();
        let plan = apply(&re, s, e, list.len(), &cat, &CostModel::default())
            .unwrap()
            .unwrap();
        let fast = plan.execute(&cat, &list).unwrap();
        assert_eq!(fast.len(), 1);
        assert_eq!((fast[0].start, fast[0].end), (0, 2));
    }
}
