//! # aqua-optimizer — rewrite-based query optimization for AQUA
//!
//! Realizes the optimization story of paper §4 ("Why Split?") and §5,
//! in the spirit of the EPOQ optimizer the authors targeted: queries
//! are decomposed so that a cheap alphabet-predicate is answered by an
//! index, and the residual pattern runs only on the candidates.
//!
//! Three rewrite rules (one per query family):
//!
//! * [`rules::decompose`] — `sub_select(tp)(T)` →
//!   `apply(sub_select(⊤tp))(split(root(tp), …)(T))`: probe a
//!   [`TreeNodeIndex`](aqua_store::TreeNodeIndex) with the pattern's
//!   root predicate, verify the pattern only at the candidate roots
//!   (experiment B1).
//! * [`rules::select_split`] — `select(p₁ ∧ p₂ ∧ …)` over an extent →
//!   index probe on the most selective indexed conjunct, residual filter
//!   on the rest — the relational analogy §4 draws (experiment B2).
//! * [`rules::positional`] — list `sub_select(lp)` where `lp` requires a
//!   predicate at a fixed offset → probe a
//!   [`ListPosIndex`](aqua_store::ListPosIndex), verify only at the
//!   candidate starts.
//!
//! The [`cost`] model chooses between the naive plan and each rewrite
//! using [`ColumnStats`](aqua_store::ColumnStats); [`Explain`] records
//! what was considered and why the winner won. Executed plans return
//! exactly what the naive operators return, and the equivalence is
//! property-tested in the integration suite.

pub mod catalog;
pub mod cost;
pub mod error;
pub mod explain;
pub mod forest;
pub mod plan;
pub mod rules;
pub mod select_plan;

pub use catalog::Catalog;
pub use cost::CostModel;
pub use error::{OptError, Result};
pub use explain::Explain;
pub use forest::ForestPlan;
pub use plan::{ListPlan, SetPlan, TreePlan};
pub use select_plan::{plan_tree_select, TreeSelectPlan};

use aqua_pattern::ast::Re;
use aqua_pattern::list::Sym;
use aqua_pattern::{PredExpr, TreePattern};

/// The optimizer: a rule pipeline over a [`Catalog`].
pub struct Optimizer<'a> {
    catalog: &'a Catalog<'a>,
    cost: CostModel,
}

impl<'a> Optimizer<'a> {
    /// An optimizer over `catalog` with the default cost model.
    pub fn new(catalog: &'a Catalog<'a>) -> Self {
        Optimizer {
            catalog,
            cost: CostModel::default(),
        }
    }

    /// Override the cost model (used by the benchmark ablations).
    pub fn with_cost_model(catalog: &'a Catalog<'a>, cost: CostModel) -> Self {
        Optimizer { catalog, cost }
    }

    /// Plan `sub_select(pattern)` over a tree of `tree_size` nodes.
    pub fn plan_tree_sub_select(
        &self,
        pattern: &TreePattern,
        tree_size: usize,
    ) -> Result<(TreePlan, Explain)> {
        let mut explain = Explain::new();
        let naive = plan::full_pattern_scan(pattern, tree_size, self.catalog, &self.cost)?;
        explain.consider(&naive);
        let mut best = naive;
        if let Some(candidate) =
            rules::decompose::apply(pattern, tree_size, self.catalog, &self.cost)?
        {
            explain.consider(&candidate);
            explain.rule("decompose-subselect-via-split(§4)");
            if candidate.est_cost() < best.est_cost() {
                best = candidate;
            }
        }
        explain.choose(&best);
        explain.cost(best.est_cost());
        Ok((best, explain))
    }

    /// Plan tree `select(pred)` (stable filtering) over a tree of
    /// `tree_size` nodes — naive walk vs node-index probe + structural
    /// compression.
    pub fn plan_tree_select(
        &self,
        pred: &PredExpr,
        tree_size: usize,
    ) -> Result<(select_plan::TreeSelectPlan, Explain)> {
        select_plan::plan_tree_select(pred, tree_size, self.catalog, &self.cost)
    }

    /// Plan `select(pred)` over the catalog class's extent.
    pub fn plan_set_select(&self, pred: &PredExpr) -> Result<(SetPlan, Explain)> {
        let mut explain = Explain::new();
        let naive = plan::extent_scan(pred, self.catalog, &self.cost)?;
        explain.consider(&naive);
        explain.rule("batched-columnar-scan");
        let mut best = naive;
        if let Some(candidate) = rules::select_split::apply(pred, self.catalog, &self.cost)? {
            explain.consider(&candidate);
            explain.rule("select-conjunct-split(§4)");
            if candidate.est_cost() < best.est_cost() {
                best = candidate;
            }
        }
        explain.choose(&best);
        explain.cost(best.est_cost());
        Ok((best, explain))
    }

    /// Plan list `sub_select(re)` over a list of `list_len` elements.
    pub fn plan_list_sub_select(
        &self,
        re: &Re<Sym>,
        anchor_start: bool,
        anchor_end: bool,
        list_len: usize,
    ) -> Result<(ListPlan, Explain)> {
        let mut explain = Explain::new();
        let naive = plan::full_list_scan(
            re,
            anchor_start,
            anchor_end,
            list_len,
            self.catalog,
            &self.cost,
        )?;
        explain.consider(&naive);
        explain.rule("batched-columnar-scan");
        let mut best = naive;
        if let Some(candidate) = rules::positional::apply(
            re,
            anchor_start,
            anchor_end,
            list_len,
            self.catalog,
            &self.cost,
        )? {
            explain.consider(&candidate);
            explain.rule("list-positional-probe");
            if candidate.est_cost() < best.est_cost() {
                best = candidate;
            }
        }
        explain.choose(&best);
        explain.cost(best.est_cost());
        Ok((best, explain))
    }
}
