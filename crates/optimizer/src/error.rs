//! Error type for the optimizer.

use std::fmt;

use aqua_algebra::AlgebraError;
use aqua_guard::GuardError;
use aqua_object::ObjectError;
use aqua_pattern::PatternError;

/// Result alias for optimizer operations.
pub type Result<T> = std::result::Result<T, OptError>;

/// Errors raised while planning or executing.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// Propagated pattern compilation error.
    Pattern(PatternError),
    /// Propagated object-layer error.
    Object(ObjectError),
    /// Propagated algebra-layer error.
    Algebra(AlgebraError),
    /// A plan referenced an index the catalog no longer has.
    MissingIndex { attr: String },
    /// A forest plan was executed with a catalog count that does not
    /// match the member count (access methods are per member).
    CatalogMismatch { members: usize, catalogs: usize },
    /// Execution was stopped by an execution guard (budget exhausted,
    /// deadline passed, or cancellation requested).
    Guard(GuardError),
}

impl OptError {
    /// The guard error inside, if this is a guard stop.
    pub fn as_guard(&self) -> Option<&GuardError> {
        match self {
            OptError::Guard(e) => Some(e),
            OptError::Algebra(e) => e.as_guard(),
            OptError::Pattern(PatternError::Guard(e)) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Pattern(e) => write!(f, "{e}"),
            OptError::Object(e) => write!(f, "{e}"),
            OptError::Algebra(e) => write!(f, "{e}"),
            OptError::MissingIndex { attr } => {
                write!(
                    f,
                    "plan requires an index on {attr:?} that the catalog lacks"
                )
            }
            OptError::CatalogMismatch { members, catalogs } => {
                write!(
                    f,
                    "forest execution needs one catalog per member: {members} members, {catalogs} catalogs"
                )
            }
            OptError::Guard(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Pattern(e) => Some(e),
            OptError::Object(e) => Some(e),
            OptError::Algebra(e) => Some(e),
            OptError::MissingIndex { .. } => None,
            OptError::CatalogMismatch { .. } => None,
            OptError::Guard(e) => Some(e),
        }
    }
}

impl From<GuardError> for OptError {
    fn from(e: GuardError) -> Self {
        OptError::Guard(e)
    }
}

impl From<AlgebraError> for OptError {
    fn from(e: AlgebraError) -> Self {
        // Keep guard verdicts first-class so callers can match on
        // `OptError::Guard` regardless of which layer tripped.
        match e {
            AlgebraError::Guard(g) => OptError::Guard(g),
            AlgebraError::Pattern(PatternError::Guard(g)) => OptError::Guard(g),
            other => OptError::Algebra(other),
        }
    }
}

impl From<PatternError> for OptError {
    fn from(e: PatternError) -> Self {
        OptError::Pattern(e)
    }
}

impl From<ObjectError> for OptError {
    fn from(e: ObjectError) -> Self {
        OptError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = OptError::MissingIndex {
            attr: "citizen".into(),
        };
        assert!(e.to_string().contains("citizen"));
        let e: OptError = PatternError::UnknownPredName { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
