//! Physical plans and their executors.
//!
//! Each query family has a naive plan (scan everything, run the full
//! pattern/predicate) and an indexed plan produced by a rewrite rule.
//! Executing either member of a family returns identical results — the
//! rewrites are *equivalences*, which the integration property suite
//! verifies.

use std::fmt;

use aqua_algebra::list::ops as list_ops;
use aqua_algebra::tree::ops as tree_ops;
use aqua_algebra::{List, Tree};
use aqua_guard::ExecGuard;
use aqua_object::{Oid, Value};
use aqua_pattern::ast::Re;
use aqua_pattern::list::{ListMatch, ListPattern, MatchMode, Sym};
use aqua_pattern::tree_ast::CompiledTreePattern;
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::{CmpOp, Pred, PredExpr, TreePattern};

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::error::{OptError, Result};
use crate::explain::Explain;

// ---------------------------------------------------------------- trees

/// A physical plan for `sub_select` over a tree.
pub enum TreePlan {
    /// Run the pattern matcher over every node.
    FullPatternScan {
        pattern: CompiledTreePattern,
        pattern_text: String,
        est_cost: f64,
    },
    /// Probe a [`TreeNodeIndex`](aqua_store::TreeNodeIndex) with the
    /// pattern's root predicate; verify the pattern only at candidates —
    /// the §4 rewrite.
    IndexedPatternScan {
        attr: String,
        op: CmpOp,
        value: Value,
        pattern: CompiledTreePattern,
        pattern_text: String,
        est_candidates: f64,
        est_cost: f64,
    },
}

/// Build the naive tree plan.
pub fn full_pattern_scan(
    pattern: &TreePattern,
    tree_size: usize,
    catalog: &Catalog<'_>,
    cost: &CostModel,
) -> Result<TreePlan> {
    let compiled = pattern.compile(catalog.class, catalog.store.class(catalog.class))?;
    let est = cost.scan(tree_size, compiled.size());
    Ok(TreePlan::FullPatternScan {
        pattern_text: pattern.to_string(),
        pattern: compiled,
        est_cost: est,
    })
}

impl TreePlan {
    /// Estimated cost (cost-model units).
    pub fn est_cost(&self) -> f64 {
        match self {
            TreePlan::FullPatternScan { est_cost, .. }
            | TreePlan::IndexedPatternScan { est_cost, .. } => *est_cost,
        }
    }

    /// Whether this plan uses an index.
    pub fn is_indexed(&self) -> bool {
        matches!(self, TreePlan::IndexedPatternScan { .. })
    }

    /// Execute against a concrete tree, producing exactly what
    /// [`tree_ops::sub_select`] produces.
    pub fn execute(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
    ) -> Result<Vec<Tree>> {
        let mut explain = Explain::default();
        self.execute_guarded(catalog, tree, cfg, None, &mut explain)
    }

    /// [`execute`](Self::execute) under an optional execution guard.
    ///
    /// If the index probe of an indexed plan fails (an injected fault),
    /// execution degrades gracefully to the naive full-pattern scan and
    /// the fallback is recorded in `explain`. When a guard is present,
    /// `explain` is stamped with a [`MetricsSnapshot`](aqua_obs) of what
    /// execution did — success or failure.
    pub fn execute_guarded(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<Tree>> {
        let out = self.execute_core(catalog, tree, cfg, guard, explain);
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        out
    }

    /// [`execute_guarded`](Self::execute_guarded) without the metrics
    /// stamp — the per-member path of a forest fleet, whose callers
    /// snapshot once fleet-wide rather than once per member.
    pub(crate) fn execute_core(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<Tree>> {
        Ok(self
            .execute_outcome_core(catalog, tree, cfg, guard, explain)?
            .trees)
    }

    /// [`execute_guarded`](Self::execute_guarded) keeping the truncation
    /// flags ([`tree_ops::SubSelectOutcome`]) — what a serving layer
    /// needs to report a clamped-`MatchConfig` degraded response as
    /// *partial* instead of passing it off as complete.
    pub fn execute_outcome_guarded(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<tree_ops::SubSelectOutcome> {
        let out = self.execute_outcome_core(catalog, tree, cfg, guard, explain);
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        out
    }

    fn execute_outcome_core(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<tree_ops::SubSelectOutcome> {
        match self {
            TreePlan::FullPatternScan { pattern, .. } => Ok(tree_ops::sub_select_outcome_guarded(
                catalog.store,
                tree,
                pattern,
                cfg,
                guard,
            )?),
            TreePlan::IndexedPatternScan {
                attr,
                op,
                value,
                pattern,
                ..
            } => {
                let idx = catalog
                    .tree_index(attr)
                    .ok_or_else(|| OptError::MissingIndex { attr: attr.clone() })?;
                match idx.try_lookup_cmp(*op, value, catalog.epoch()) {
                    Ok(candidates) => Ok(tree_ops::sub_select_from_outcome_guarded(
                        catalog.store,
                        tree,
                        pattern,
                        cfg,
                        &candidates,
                        guard,
                    )?),
                    Err(e) => {
                        explain.fallback(format!("index probe failed ({e}); full pattern scan"));
                        Ok(tree_ops::sub_select_outcome_guarded(
                            catalog.store,
                            tree,
                            pattern,
                            cfg,
                            guard,
                        )?)
                    }
                }
            }
        }
    }
}

impl TreePlan {
    /// Execute as a `split` (the §4 rewrite applies to `split` itself —
    /// `sub_select` is just `split` with a piece-reducing `f`): returns
    /// the full piece decompositions instead of reduced matches.
    pub fn execute_split(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
    ) -> Result<Vec<aqua_algebra::tree::split::SplitPieces>> {
        let mut explain = Explain::default();
        self.execute_split_guarded(catalog, tree, cfg, None, &mut explain)
    }

    /// [`execute_split`](Self::execute_split) under an optional
    /// execution guard, with failpoint-driven fallback recorded in
    /// `explain` and — when guarded — a metrics stamp.
    pub fn execute_split_guarded(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<aqua_algebra::tree::split::SplitPieces>> {
        Ok(self
            .execute_split_outcome_guarded(catalog, tree, cfg, guard, explain)?
            .pieces)
    }

    /// [`execute_split_guarded`](Self::execute_split_guarded) returning
    /// the full [`SplitOutcome`](aqua_algebra::tree::split::SplitOutcome)
    /// — pieces *plus* the truncation report, so callers that must know
    /// whether enumeration was clipped (certificate emission, Explain)
    /// see it instead of losing it to `.pieces`.
    pub fn execute_split_outcome_guarded(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<aqua_algebra::tree::split::SplitOutcome> {
        let out = self.execute_split_core(catalog, tree, cfg, guard, explain);
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        out
    }

    /// [`execute_split_outcome_guarded`](Self::execute_split_outcome_guarded)
    /// without the metrics stamp (see [`execute_core`](Self::execute_core)).
    pub(crate) fn execute_split_core(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<aqua_algebra::tree::split::SplitOutcome> {
        use aqua_algebra::tree::split;
        match self {
            TreePlan::FullPatternScan { pattern, .. } => Ok(split::split_pieces_guarded(
                catalog.store,
                tree,
                pattern,
                cfg,
                guard,
            )?),
            TreePlan::IndexedPatternScan {
                attr,
                op,
                value,
                pattern,
                ..
            } => {
                let idx = catalog
                    .tree_index(attr)
                    .ok_or_else(|| OptError::MissingIndex { attr: attr.clone() })?;
                match idx.try_lookup_cmp(*op, value, catalog.epoch()) {
                    Ok(candidates) => Ok(split::split_pieces_from_guarded(
                        catalog.store,
                        tree,
                        pattern,
                        cfg,
                        &candidates,
                        guard,
                    )?),
                    Err(e) => {
                        explain.fallback(format!("index probe failed ({e}); full pattern scan"));
                        Ok(split::split_pieces_guarded(
                            catalog.store,
                            tree,
                            pattern,
                            cfg,
                            guard,
                        )?)
                    }
                }
            }
        }
    }
}

impl fmt::Display for TreePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreePlan::FullPatternScan {
                pattern_text,
                est_cost,
                ..
            } => write!(f, "FullPatternScan({pattern_text}) cost={est_cost:.1}"),
            TreePlan::IndexedPatternScan {
                attr,
                op,
                value,
                pattern_text,
                est_candidates,
                est_cost,
                ..
            } => write!(
                f,
                "IndexedPatternScan(probe {attr} {op} {value}, ~{est_candidates:.0} candidates, \
                 verify {pattern_text}) cost={est_cost:.1}"
            ),
        }
    }
}

// ----------------------------------------------------------------- sets

/// A physical plan for `select` over a class extent.
pub enum SetPlan {
    /// Test the full predicate on every extent member.
    ExtentScan {
        pred: Pred,
        pred_text: String,
        est_cost: f64,
    },
    /// Probe an [`AttrIndex`](aqua_store::AttrIndex) with one conjunct;
    /// test the residual conjuncts on the candidates.
    IndexedExtentScan {
        attr: String,
        op: CmpOp,
        value: Value,
        residual: Option<Pred>,
        /// The full predicate — the fallback path when the index probe
        /// hits an injected fault.
        pred: Pred,
        pred_text: String,
        est_candidates: f64,
        est_cost: f64,
    },
}

/// Build the naive set plan. The scan executes batched over the
/// extent's contiguous OID slice, so it is costed with
/// [`CostModel::scan_batched`].
pub fn extent_scan(pred: &PredExpr, catalog: &Catalog<'_>, cost: &CostModel) -> Result<SetPlan> {
    let compiled = pred.compile(catalog.class, catalog.store.class(catalog.class))?;
    let n = catalog.store.extent(catalog.class).len();
    Ok(SetPlan::ExtentScan {
        pred: compiled,
        pred_text: pred.to_string(),
        est_cost: cost.scan_batched(n, pred.conjuncts().len()),
    })
}

impl SetPlan {
    /// Estimated cost (cost-model units).
    pub fn est_cost(&self) -> f64 {
        match self {
            SetPlan::ExtentScan { est_cost, .. } | SetPlan::IndexedExtentScan { est_cost, .. } => {
                *est_cost
            }
        }
    }

    /// Whether this plan uses an index.
    pub fn is_indexed(&self) -> bool {
        matches!(self, SetPlan::IndexedExtentScan { .. })
    }

    /// Execute, returning the satisfying OIDs in extent order.
    pub fn execute(&self, catalog: &Catalog<'_>) -> Result<Vec<Oid>> {
        let mut explain = Explain::default();
        self.execute_guarded(catalog, None, &mut explain)
    }

    /// [`execute`](Self::execute) under an optional execution guard,
    /// with failpoint-driven fallback recorded in `explain` and — when
    /// guarded — a metrics stamp.
    pub fn execute_guarded(
        &self,
        catalog: &Catalog<'_>,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<Oid>> {
        let out = self.execute_core(catalog, guard, explain);
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        out
    }

    fn execute_core(
        &self,
        catalog: &Catalog<'_>,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<Oid>> {
        Ok(self.execute_capped_core(catalog, None, guard, explain)?.0)
    }

    /// [`execute_guarded`](Self::execute_guarded) with an optional cap
    /// on emitted OIDs: scanning stops early once `cap` results are
    /// found and the `bool` reports whether the answer was clipped. The
    /// degraded-response path of a serving layer — a prefix (in extent
    /// order) of the full answer, flagged as partial.
    pub fn execute_capped_guarded(
        &self,
        catalog: &Catalog<'_>,
        cap: Option<u64>,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<(Vec<Oid>, bool)> {
        let out = self.execute_capped_core(catalog, cap, guard, explain);
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        out
    }

    fn execute_capped_core(
        &self,
        catalog: &Catalog<'_>,
        cap: Option<u64>,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<(Vec<Oid>, bool)> {
        let full = |out: &Vec<Oid>| cap.is_some_and(|c| out.len() as u64 >= c);
        // Batched columnar scan: compile the predicate to a flat program
        // and run it over the extent's contiguous OID slice a chunk at a
        // time (guard charged per chunk; the step total stays one per
        // element scanned, and a result cap stops between chunks).
        let scan = |pred: &Pred, guard: Option<&ExecGuard>| -> Result<(Vec<Oid>, bool)> {
            let program = pred.batch();
            let mut out = Vec::new();
            for chunk in catalog
                .store
                .extent(catalog.class)
                .chunks(aqua_pattern::batch::CHUNK)
            {
                if full(&out) {
                    return Ok((out, true));
                }
                let bits = program.eval(catalog.store, chunk, guard)?;
                for i in bits.ones() {
                    if full(&out) {
                        return Ok((out, true));
                    }
                    out.push(chunk[i]);
                    aqua_guard::result_emitted(guard)?;
                }
            }
            Ok((out, false))
        };
        match self {
            SetPlan::ExtentScan { pred, .. } => scan(pred, guard),
            SetPlan::IndexedExtentScan {
                attr,
                op,
                value,
                residual,
                pred,
                ..
            } => {
                let idx = catalog
                    .attr_index(attr)
                    .ok_or_else(|| OptError::MissingIndex { attr: attr.clone() })?;
                let mut hits = match idx.try_lookup_cmp(*op, value, catalog.epoch()) {
                    Ok(hits) => hits,
                    Err(e) => {
                        explain.fallback(format!("index probe failed ({e}); extent scan"));
                        return scan(pred, guard);
                    }
                };
                // Extent order == OID order for a single class.
                hits.sort_unstable();
                let mut out = Vec::new();
                for o in hits {
                    if full(&out) {
                        return Ok((out, true));
                    }
                    aqua_guard::step(guard)?;
                    if residual.as_ref().is_none_or(|r| r.eval(catalog.store, o)) {
                        out.push(o);
                        aqua_guard::result_emitted(guard)?;
                    }
                }
                Ok((out, false))
            }
        }
    }
}

impl fmt::Display for SetPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetPlan::ExtentScan {
                pred_text,
                est_cost,
                ..
            } => write!(f, "ExtentScan({pred_text}) cost={est_cost:.1}"),
            SetPlan::IndexedExtentScan {
                attr,
                op,
                value,
                pred_text,
                est_candidates,
                est_cost,
                ..
            } => write!(
                f,
                "IndexedExtentScan(probe {attr} {op} {value}, ~{est_candidates:.0} candidates, \
                 residual of {pred_text}) cost={est_cost:.1}"
            ),
        }
    }
}

// ---------------------------------------------------------------- lists

/// A physical plan for `sub_select` over a list.
pub enum ListPlan {
    /// Run the pattern from every position.
    FullListScan { pattern: ListPattern, est_cost: f64 },
    /// Probe a [`ListPosIndex`](aqua_store::ListPosIndex) for the
    /// pattern's required predicate at its fixed offset; run the pattern
    /// only from the candidate starts.
    PositionalScan {
        attr: String,
        value: Value,
        offset: usize,
        pattern: ListPattern,
        est_candidates: f64,
        est_cost: f64,
    },
}

/// Build the naive list plan.
pub fn full_list_scan(
    re: &Re<Sym>,
    anchor_start: bool,
    anchor_end: bool,
    list_len: usize,
    catalog: &Catalog<'_>,
    cost: &CostModel,
) -> Result<ListPlan> {
    let pattern = ListPattern::compile(
        re.clone(),
        anchor_start,
        anchor_end,
        catalog.class,
        catalog.store.class(catalog.class),
    )?;
    // Sublist search is quadratic in the worst case: n starts × n steps.
    // The pike VM runs batched (leaf predicates evaluated columnar, a
    // candidate-start bitmap skipping non-viable starts), so the scan
    // term carries the batch factor.
    let est = cost.scan_batched(list_len * list_len.max(1), pattern.nfa_size())
        / list_len.max(1) as f64
        * 2.0;
    Ok(ListPlan::FullListScan {
        pattern,
        est_cost: est,
    })
}

impl ListPlan {
    /// Estimated cost (cost-model units).
    pub fn est_cost(&self) -> f64 {
        match self {
            ListPlan::FullListScan { est_cost, .. } | ListPlan::PositionalScan { est_cost, .. } => {
                *est_cost
            }
        }
    }

    /// Whether this plan uses an index.
    pub fn is_indexed(&self) -> bool {
        matches!(self, ListPlan::PositionalScan { .. })
    }

    /// Execute against a concrete list, producing what
    /// [`list_ops::find_matches`] produces under `MatchMode::All`.
    ///
    /// The positional plan requires a ground list (the index stores
    /// absolute positions); a list with holes falls back to the full
    /// scan path, preserving correctness.
    pub fn execute(&self, catalog: &Catalog<'_>, list: &List) -> Result<Vec<ListMatch>> {
        let mut explain = Explain::default();
        self.execute_guarded(catalog, list, None, &mut explain)
    }

    /// [`execute`](Self::execute) under an optional execution guard,
    /// with failpoint-driven fallback recorded in `explain` and — when
    /// guarded — a metrics stamp.
    pub fn execute_guarded(
        &self,
        catalog: &Catalog<'_>,
        list: &List,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<ListMatch>> {
        let out = self.execute_core(catalog, list, guard, explain);
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        out
    }

    fn execute_core(
        &self,
        catalog: &Catalog<'_>,
        list: &List,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<ListMatch>> {
        match self {
            ListPlan::FullListScan { pattern, .. } => Ok(list_ops::find_matches_guarded(
                catalog.store,
                list,
                pattern,
                MatchMode::All,
                guard,
            )?),
            ListPlan::PositionalScan {
                attr,
                value,
                offset,
                pattern,
                ..
            } => {
                if !list.is_ground() {
                    return Ok(list_ops::find_matches_guarded(
                        catalog.store,
                        list,
                        pattern,
                        MatchMode::All,
                        guard,
                    )?);
                }
                let idx = catalog
                    .list_index(attr)
                    .ok_or_else(|| OptError::MissingIndex { attr: attr.clone() })?;
                let starts = match idx.try_candidate_starts(value, *offset, catalog.epoch()) {
                    Ok(starts) => starts,
                    Err(e) => {
                        explain.fallback(format!("index probe failed ({e}); full list scan"));
                        return Ok(list_ops::find_matches_guarded(
                            catalog.store,
                            list,
                            pattern,
                            MatchMode::All,
                            guard,
                        )?);
                    }
                };
                let oids = list.oids();
                Ok(pattern.find_matches_at_many_guarded(catalog.store, &oids, &starts, guard)?)
            }
        }
    }
}

impl fmt::Display for ListPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListPlan::FullListScan { pattern, est_cost } => {
                write!(f, "FullListScan({pattern}) cost={est_cost:.1}")
            }
            ListPlan::PositionalScan {
                attr,
                value,
                offset,
                pattern,
                est_candidates,
                est_cost,
            } => write!(
                f,
                "PositionalScan(probe {attr} = {value} at offset {offset}, ~{est_candidates:.0} \
                 candidates, verify {pattern}) cost={est_cost:.1}"
            ),
        }
    }
}
