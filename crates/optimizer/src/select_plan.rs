//! Physical plans for tree `select` (stable filtering, §4).
//!
//! `select(p)(T)` keeps every satisfying node, ancestry-compressed. The
//! naive plan walks the tree; the indexed plan asks a
//! [`TreeNodeIndex`](aqua_store::TreeNodeIndex) for one conjunct's
//! candidates, filters them with the full predicate, and rebuilds the
//! compressed forest using the structural index for nearest-satisfying-
//! ancestor computation — touching only `O(hits × depth)` nodes instead
//! of the whole tree.

use std::collections::HashSet;
use std::fmt;

use aqua_algebra::tree::ops as tree_ops;
use aqua_algebra::{NodeId, Tree, TreeBuilder};
use aqua_guard::ExecGuard;
use aqua_object::Value;
use aqua_pattern::{CmpOp, Pred, PredExpr};

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::error::{OptError, Result};
use crate::explain::Explain;
use crate::rules::probe_shape;

/// A physical plan for tree `select`.
pub enum TreeSelectPlan {
    /// Walk every node, testing the predicate.
    FullWalk {
        pred: Pred,
        pred_text: String,
        est_cost: f64,
    },
    /// Probe the node index for one conjunct; filter candidates with the
    /// full predicate; rebuild the forest through the structural index.
    IndexedWalk {
        attr: String,
        op: CmpOp,
        value: Value,
        pred: Pred,
        pred_text: String,
        est_candidates: f64,
        est_cost: f64,
    },
}

impl TreeSelectPlan {
    /// Estimated cost (cost-model units).
    pub fn est_cost(&self) -> f64 {
        match self {
            TreeSelectPlan::FullWalk { est_cost, .. }
            | TreeSelectPlan::IndexedWalk { est_cost, .. } => *est_cost,
        }
    }

    /// Whether this plan uses an index.
    pub fn is_indexed(&self) -> bool {
        matches!(self, TreeSelectPlan::IndexedWalk { .. })
    }

    /// Execute; results equal [`tree_ops::select`] exactly.
    pub fn execute(&self, catalog: &Catalog<'_>, tree: &Tree) -> Result<Vec<Tree>> {
        let mut explain = Explain::default();
        self.execute_guarded(catalog, tree, None, &mut explain)
    }

    /// [`execute`](Self::execute) under an optional execution guard.
    ///
    /// If the node-index probe of an indexed plan fails (an injected
    /// fault), execution degrades gracefully to the naive full walk and
    /// the fallback is recorded in `explain`. When a guard is present,
    /// `explain` is stamped with a metrics snapshot of the run.
    pub fn execute_guarded(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<Tree>> {
        let out = self.execute_core(catalog, tree, guard, explain);
        if let Some(g) = guard {
            explain.observe(g.obs_snapshot());
        }
        out
    }

    fn execute_core(
        &self,
        catalog: &Catalog<'_>,
        tree: &Tree,
        guard: Option<&ExecGuard>,
        explain: &mut Explain,
    ) -> Result<Vec<Tree>> {
        match self {
            TreeSelectPlan::FullWalk { pred, .. } => {
                Ok(tree_ops::select_guarded(catalog.store, tree, pred, guard)?)
            }
            TreeSelectPlan::IndexedWalk {
                attr,
                op,
                value,
                pred,
                ..
            } => {
                let idx = catalog
                    .tree_index(attr)
                    .ok_or_else(|| OptError::MissingIndex { attr: attr.clone() })?;
                let sidx = catalog.structural().ok_or_else(|| OptError::MissingIndex {
                    attr: "<structural>".into(),
                })?;
                let hits = match idx.try_lookup_cmp(*op, value, catalog.epoch()) {
                    Ok(hits) => hits,
                    Err(e) => {
                        explain.fallback(format!("index probe failed ({e}); full walk"));
                        return Ok(tree_ops::select_guarded(catalog.store, tree, pred, guard)?);
                    }
                };
                // Candidates from the probe, narrowed by the residual
                // conjuncts, then document-ordered.
                let mut satisfying: Vec<NodeId> = Vec::new();
                for n in hits.into_iter().map(NodeId) {
                    aqua_guard::step(guard)?;
                    if tree.oid(n).is_some_and(|o| pred.eval(catalog.store, o)) {
                        satisfying.push(n);
                    }
                }
                satisfying.sort_by(|&a, &b| sidx.doc_cmp(a, b));

                // Nearest satisfying ancestor via parent walks against the
                // satisfying set; parents precede children in doc order,
                // so one pass builds the forest.
                let in_set: HashSet<u32> = satisfying.iter().map(|n| n.0).collect();
                struct Entry {
                    node: NodeId,
                    children: Vec<usize>,
                }
                let mut entries: Vec<Entry> = Vec::with_capacity(satisfying.len());
                let mut entry_of: std::collections::HashMap<u32, usize> =
                    std::collections::HashMap::new();
                let mut roots: Vec<usize> = Vec::new();
                for &n in &satisfying {
                    let id = entries.len();
                    entries.push(Entry {
                        node: n,
                        children: Vec::new(),
                    });
                    entry_of.insert(n.0, id);
                    let mut cur = tree.parent(n);
                    let mut parent_entry = None;
                    while let Some(p) = cur {
                        aqua_guard::step(guard)?;
                        if in_set.contains(&p.0) {
                            parent_entry = Some(entry_of[&p.0]);
                            break;
                        }
                        cur = tree.parent(p);
                    }
                    match parent_entry {
                        Some(pe) => entries[pe].children.push(id),
                        None => roots.push(id),
                    }
                }
                fn realize(
                    entries: &[Entry],
                    e: usize,
                    tree: &Tree,
                    b: &mut TreeBuilder,
                ) -> Result<NodeId> {
                    let mut kids = Vec::with_capacity(entries[e].children.len());
                    for &c in &entries[e].children {
                        kids.push(realize(entries, c, tree, b)?);
                    }
                    let oid = tree.oid(entries[e].node).ok_or_else(|| {
                        OptError::Algebra(aqua_algebra::AlgebraError::Malformed {
                            msg: format!("satisfying node {:?} is not a cell", entries[e].node),
                        })
                    })?;
                    Ok(b.node(oid, kids))
                }
                let mut out = Vec::with_capacity(roots.len());
                for r in roots {
                    let mut b = TreeBuilder::new();
                    let root = realize(&entries, r, tree, &mut b)?;
                    let t = b.finish(root).map_err(OptError::Algebra)?;
                    out.push(t);
                    aqua_guard::result_emitted(guard)?;
                }
                Ok(out)
            }
        }
    }
}

impl fmt::Display for TreeSelectPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeSelectPlan::FullWalk {
                pred_text,
                est_cost,
                ..
            } => write!(f, "FullWalkSelect({pred_text}) cost={est_cost:.1}"),
            TreeSelectPlan::IndexedWalk {
                attr,
                op,
                value,
                pred_text,
                est_candidates,
                est_cost,
                ..
            } => write!(
                f,
                "IndexedWalkSelect(probe {attr} {op} {value}, ~{est_candidates:.0} candidates, \
                 residual of {pred_text}) cost={est_cost:.1}"
            ),
        }
    }
}

/// Plan tree `select(pred)` over a tree of `tree_size` nodes: naive walk
/// vs index probe + structural compression (needs both a
/// [`TreeNodeIndex`](aqua_store::TreeNodeIndex) on the probe attribute
/// and a [`StructuralIndex`](aqua_store::StructuralIndex) registered).
pub fn plan_tree_select(
    pred: &PredExpr,
    tree_size: usize,
    catalog: &Catalog<'_>,
    cost: &CostModel,
) -> Result<(TreeSelectPlan, Explain)> {
    let mut explain = Explain::new();
    let compiled = pred.compile(catalog.class, catalog.store.class(catalog.class))?;
    let naive = TreeSelectPlan::FullWalk {
        pred: compiled.clone(),
        pred_text: pred.to_string(),
        est_cost: cost.scan(tree_size, pred.conjuncts().len()),
    };
    explain.consider(&naive);
    let mut best = naive;
    if let (Some((_, attr, op, value)), Some(_)) = (probe_shape(pred), catalog.structural()) {
        if let Some(idx) = catalog.tree_index(attr) {
            let sel = match catalog.stats(attr) {
                Some(s) => s.cmp_selectivity(op, value),
                None => match op {
                    CmpOp::Eq => 1.0 / idx.distinct().max(1) as f64,
                    _ => cost.default_selectivity,
                },
            };
            let est_candidates = sel * tree_size as f64;
            // Each candidate pays a parent walk (model: log-ish depth).
            let walk = (tree_size.max(2) as f64).log2();
            let est_cost = cost.probe_then_verify(idx.distinct(), est_candidates, 1)
                + est_candidates * walk * cost.pred_test;
            let candidate = TreeSelectPlan::IndexedWalk {
                attr: attr.to_owned(),
                op,
                value: value.clone(),
                pred: compiled,
                pred_text: pred.to_string(),
                est_candidates,
                est_cost,
            };
            explain.consider(&candidate);
            explain.rule("select-via-node-index");
            if candidate.est_cost() < best.est_cost() {
                best = candidate;
            }
        }
    }
    explain.choose(&best);
    explain.cost(best.est_cost());
    Ok((best, explain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::AttrId;
    use aqua_store::{ColumnStats, StructuralIndex, TreeNodeIndex};
    use aqua_workload::random_tree::RandomTreeGen;

    #[test]
    fn indexed_select_equals_naive() {
        let d = RandomTreeGen::new(8)
            .nodes(3000)
            .label_weights(&[("u", 1), ("x", 20)])
            .generate();
        let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
        let sidx = StructuralIndex::build(&d.tree);
        let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
        let mut cat = Catalog::new(&d.store, d.class);
        cat.add_tree_index(&idx)
            .add_structural_index(&sidx)
            .add_stats(&stats);
        let pred = PredExpr::eq("label", "u");
        let (plan, explain) =
            plan_tree_select(&pred, d.tree.len(), &cat, &CostModel::default()).unwrap();
        assert!(plan.is_indexed(), "{explain}");
        let fast = plan.execute(&cat, &d.tree).unwrap();
        let compiled = pred.compile(d.class, d.store.class(d.class)).unwrap();
        let naive = tree_ops::select(&d.store, &d.tree, &compiled);
        assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(&naive) {
            assert!(a.structural_eq(b));
        }
        assert!(!fast.is_empty());
    }

    #[test]
    fn declines_without_structural_index() {
        let d = RandomTreeGen::new(8).nodes(100).generate();
        let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
        let mut cat = Catalog::new(&d.store, d.class);
        cat.add_tree_index(&idx);
        let (plan, _) = plan_tree_select(
            &PredExpr::eq("label", "a"),
            d.tree.len(),
            &cat,
            &CostModel::default(),
        )
        .unwrap();
        assert!(!plan.is_indexed());
    }

    #[test]
    fn conjunctive_predicate_filters_residual() {
        let d = RandomTreeGen::new(9)
            .nodes(2000)
            .label_weights(&[("u", 1), ("x", 9)])
            .generate();
        let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
        let sidx = StructuralIndex::build(&d.tree);
        let mut cat = Catalog::new(&d.store, d.class);
        cat.add_tree_index(&idx).add_structural_index(&sidx);
        // label = u AND num < 50 — the probe narrows to u, the residual
        // halves it.
        let pred = PredExpr::eq("label", "u").and(PredExpr::cmp("num", CmpOp::Lt, 50));
        let (plan, _) = plan_tree_select(&pred, d.tree.len(), &cat, &CostModel::default()).unwrap();
        let fast = plan.execute(&cat, &d.tree).unwrap();
        let compiled = pred.compile(d.class, d.store.class(d.class)).unwrap();
        let naive = tree_ops::select(&d.store, &d.tree, &compiled);
        assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(&naive) {
            assert!(a.structural_eq(b));
        }
    }
}
