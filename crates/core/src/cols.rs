//! Structure-of-arrays views over [`Tree`](crate::tree::Tree) and
//! [`List`].
//!
//! The arena [`crate::tree::Node`] layout is pointer-walk
//! friendly but cache-hostile for bulk operators: every predicate
//! evaluation, interval computation, or merkle leaf hash chases
//! `Node.children` vectors scattered across the heap. [`TreeCols`] and
//! [`ListCols`] flatten a tree/list once into contiguous parallel
//! columns that the bulk operators, `store::structural`, and
//! `store::merkle` read directly:
//!
//! * CSR children (`child_start` offsets into one flat `children`
//!   array) and a `parent` column for navigation,
//! * `pre`/`post` interval columns — byte-identical to
//!   [`interval_numbering`](crate::tree::Tree::interval_numbering)
//!   (merkle leaf hashes cover these
//!   numbers, so the clock discipline here must never diverge),
//! * the preorder sequence with `rank` and subtree `size` columns,
//! * the cell-OID column (`cell_oids` in preorder, holes skipped) that
//!   batched predicate evaluation streams over.
//!
//! Views are computed lazily and cached on the owning value: `Tree` is
//! persistent (every mutator is `&self -> Result<Tree>`), so its cache
//! never goes stale; `List` has in-place mutators, which invalidate the
//! cache.

use aqua_object::Oid;

use crate::list::List;
use crate::tree::{Node, NodeId, Payload};

/// Sentinel for "no parent" / "not a cell" in u32 index columns.
pub const NONE: u32 = u32::MAX;

/// Flat columnar view of one tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeCols {
    /// CSR offsets: node `i`'s children are
    /// `children[child_start[i] .. child_start[i + 1]]`.
    child_start: Vec<u32>,
    /// All child arena ids, concatenated in parent-arena order.
    children: Vec<u32>,
    /// Parent arena id per node ([`NONE`] at the root).
    parent: Vec<u32>,
    /// Preorder entry number per node (same clock as
    /// [`Tree::interval_numbering`]).
    pre: Vec<u32>,
    /// Postorder exit number per node (same clock).
    post: Vec<u32>,
    /// Arena ids in document (preorder) order.
    preorder: Vec<u32>,
    /// Node → preorder rank.
    rank: Vec<u32>,
    /// Node → subtree size (including self).
    size: Vec<u32>,
    /// OIDs of cell nodes in preorder — the batched-eval column.
    cell_oids: Vec<Oid>,
    /// Arena id of each `cell_oids` entry.
    cell_nodes: Vec<u32>,
    /// Node → index into `cell_oids` ([`NONE`] for holes).
    cell_index: Vec<u32>,
}

impl TreeCols {
    /// Flatten an arena in one DFS plus one linear pass.
    ///
    /// The DFS uses the exact single-clock discipline of
    /// [`Tree::interval_numbering`] (entry and exit events share one
    /// clock; children pushed in reverse), so `pre`/`post` reproduce it
    /// byte-for-byte — authenticated extents hash these numbers.
    pub(crate) fn build(nodes: &[Node], root: NodeId) -> TreeCols {
        let n = nodes.len();
        let mut child_start = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(n.saturating_sub(1));
        let mut parent = vec![NONE; n];
        child_start.push(0u32);
        for (i, node) in nodes.iter().enumerate() {
            for &k in &node.children {
                children.push(k.0);
                parent[k.index()] = i as u32;
            }
            child_start.push(children.len() as u32);
        }

        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut preorder = Vec::with_capacity(n);
        let mut rank = vec![0u32; n];
        let mut cell_oids = Vec::with_capacity(n);
        let mut cell_nodes = Vec::with_capacity(n);
        let mut cell_index = vec![NONE; n];
        let mut clock = 0u32;
        let mut stack = vec![(root, false)];
        while let Some((nd, done)) = stack.pop() {
            if done {
                post[nd.index()] = clock;
                clock += 1;
                continue;
            }
            pre[nd.index()] = clock;
            clock += 1;
            rank[nd.index()] = preorder.len() as u32;
            preorder.push(nd.0);
            if let Payload::Cell(c) = &nodes[nd.index()].payload {
                cell_index[nd.index()] = cell_oids.len() as u32;
                cell_oids.push(c.contents());
                cell_nodes.push(nd.0);
            }
            stack.push((nd, true));
            for &k in nodes[nd.index()].children.iter().rev() {
                stack.push((k, false));
            }
        }

        // Each subtree node contributes exactly two clock events (entry
        // + exit) inside its root's interval, so the subtree size falls
        // out of the interval width with no extra pass.
        let size: Vec<u32> = (0..n).map(|i| (post[i] - pre[i]).div_ceil(2)).collect();

        TreeCols {
            child_start,
            children,
            parent,
            pre,
            post,
            preorder,
            rank,
            size,
            cell_oids,
            cell_nodes,
            cell_index,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the view is over an empty arena.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Children of `node` as a contiguous arena-id slice.
    #[inline]
    pub fn children(&self, node: u32) -> &[u32] {
        let lo = self.child_start[node as usize] as usize;
        let hi = self.child_start[node as usize + 1] as usize;
        &self.children[lo..hi]
    }

    /// Parent arena id of `node` (`None` at the root).
    #[inline]
    pub fn parent(&self, node: u32) -> Option<u32> {
        match self.parent[node as usize] {
            NONE => None,
            p => Some(p),
        }
    }

    /// Preorder entry number of `node`.
    #[inline]
    pub fn pre(&self, node: u32) -> u32 {
        self.pre[node as usize]
    }

    /// Postorder exit number of `node`.
    #[inline]
    pub fn post(&self, node: u32) -> u32 {
        self.post[node as usize]
    }

    /// The `(pre, post)` interval columns, zipped — identical to
    /// [`Tree::interval_numbering`](crate::Tree::interval_numbering).
    pub fn intervals(&self) -> Vec<(u32, u32)> {
        self.pre
            .iter()
            .copied()
            .zip(self.post.iter().copied())
            .collect()
    }

    /// The entry-number column, indexed by arena id.
    #[inline]
    pub fn pre_col(&self) -> &[u32] {
        &self.pre
    }

    /// The exit-number column, indexed by arena id.
    #[inline]
    pub fn post_col(&self) -> &[u32] {
        &self.post
    }

    /// Arena ids in document order.
    #[inline]
    pub fn preorder(&self) -> &[u32] {
        &self.preorder
    }

    /// Arena ids in document order, as [`NodeId`]s.
    #[inline]
    pub fn preorder_nodes(&self) -> &[NodeId] {
        let ids: &[u32] = &self.preorder;
        // SAFETY: NodeId is repr(transparent) over u32, so &[u32] and
        // &[NodeId] have identical layout.
        unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<NodeId>(), ids.len()) }
    }

    /// The preorder-rank column, indexed by arena id.
    #[inline]
    pub fn rank_col(&self) -> &[u32] {
        &self.rank
    }

    /// The subtree-size column, indexed by arena id.
    #[inline]
    pub fn size_col(&self) -> &[u32] {
        &self.size
    }

    /// Cell OIDs in preorder (holes skipped) — the column batched
    /// predicate evaluation streams over.
    #[inline]
    pub fn cell_oids(&self) -> &[Oid] {
        &self.cell_oids
    }

    /// Arena id of each [`cell_oids`](Self::cell_oids) entry.
    #[inline]
    pub fn cell_nodes(&self) -> &[u32] {
        &self.cell_nodes
    }

    /// Index of `node`'s OID within [`cell_oids`](Self::cell_oids)
    /// (`None` for holes).
    #[inline]
    pub fn cell_index(&self, node: u32) -> Option<usize> {
        match self.cell_index[node as usize] {
            NONE => None,
            i => Some(i as usize),
        }
    }
}

/// Flat columnar view of one list: the cell-OID column plus the
/// original position of each cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListCols {
    oids: Vec<Oid>,
    positions: Vec<u32>,
    ground: bool,
}

impl ListCols {
    pub(crate) fn build(list: &List) -> ListCols {
        let n = list.len();
        let mut oids = Vec::with_capacity(n);
        let mut positions = Vec::with_capacity(n);
        for (i, e) in list.elems().iter().enumerate() {
            if let Some(o) = e.oid() {
                oids.push(o);
                positions.push(i as u32);
            }
        }
        let ground = oids.len() == n;
        ListCols {
            oids,
            positions,
            ground,
        }
    }

    /// Cell OIDs in list order (holes skipped).
    #[inline]
    pub fn oids(&self) -> &[Oid] {
        &self.oids
    }

    /// Original list position of each [`oids`](Self::oids) entry.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// True when the list has no holes (the OID column covers every
    /// position).
    #[inline]
    pub fn ground(&self) -> bool {
        self.ground
    }

    /// Number of cells in the column.
    #[inline]
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::list::testutil::Fx as ListFx;
    use crate::tree::testutil::Fx;
    use crate::Tree;
    use aqua_object::Oid;

    #[test]
    fn intervals_match_pointer_walk() {
        let mut fx = Fx::new();
        for spec in ["a", "a(b c)", "a(b(d f) c)", "a(b(d(x y) f) c(g))"] {
            let t = fx.tree(spec);
            assert_eq!(t.cols().intervals(), t.interval_numbering(), "{spec}");
        }
    }

    #[test]
    fn preorder_rank_size_match_walk() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c(g h(i)))");
        let cols = t.cols();
        let walk: Vec<u32> = t.iter_preorder().map(|n| n.0).collect();
        assert_eq!(cols.preorder(), &walk[..]);
        for (r, &n) in walk.iter().enumerate() {
            assert_eq!(cols.rank_col()[n as usize] as usize, r);
        }
        for n in t.iter_preorder() {
            let expect = 1 + t.descendants(n).len() as u32;
            assert_eq!(cols.size_col()[n.index()], expect, "{n:?}");
        }
    }

    #[test]
    fn csr_children_and_parent_match_arena() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        let cols = t.cols();
        for n in t.iter_preorder() {
            let arena: Vec<u32> = t.children(n).iter().map(|k| k.0).collect();
            assert_eq!(cols.children(n.0), &arena[..]);
            assert_eq!(cols.parent(n.0), t.parent(n).map(|p| p.0));
        }
    }

    #[test]
    fn cell_columns_skip_holes() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b @x c)");
        let cols = t.cols();
        assert_eq!(cols.cell_oids().len(), 3);
        assert_eq!(cols.cell_nodes().len(), 3);
        // Every cell column entry round-trips through cell_index.
        for (i, &node) in cols.cell_nodes().iter().enumerate() {
            assert_eq!(cols.cell_index(node), Some(i));
            assert_eq!(t.oid(crate::NodeId(node)), Some(cols.cell_oids()[i]));
        }
        // The hole has no column slot.
        let hole = t
            .iter_preorder()
            .find(|&n| t.oid(n).is_none())
            .expect("hole present");
        assert_eq!(cols.cell_index(hole.0), None);
    }

    #[test]
    fn tree_cache_survives_clone_independently() {
        let t = Tree::leaf(Oid(7));
        let _ = t.cols();
        let c = t.clone();
        assert_eq!(c.cols().cell_oids(), &[Oid(7)]);
        assert_eq!(t, c);
    }

    #[test]
    fn list_cols_positions_and_invalidation() {
        let mut fx = ListFx::new();
        let mut l = fx.song("A@xB");
        {
            let cols = l.cols();
            assert!(!cols.ground());
            assert_eq!(cols.positions(), &[0, 2]);
            assert_eq!(cols.oids(), &l.oids()[..]);
        }
        // In-place mutation must invalidate the cached view.
        let oid = l.oids()[0];
        l.push(oid);
        assert_eq!(l.cols().positions(), &[0, 2, 3]);
        l.remove(1).unwrap();
        let cols = l.cols();
        assert!(cols.ground());
        assert_eq!(cols.positions(), &[0, 1, 2]);
    }
}
