//! # aqua-algebra — the AQUA list and tree query algebra
//!
//! The primary contribution of the paper (§4–§6): an object-oriented
//! query algebra for ordered bulk types whose operators are *stable* —
//! the relative order (for lists) and ancestry (for trees) of all
//! surviving elements is preserved in results.
//!
//! * [`tree`] — the [`Tree`] type (arena-based, cells, labeled NULLs)
//!   and the tree operators: [`tree::ops::select`], [`tree::ops::apply`],
//!   [`tree::ops::sub_select`], [`tree::split::split`],
//!   [`tree::ops::all_anc`], [`tree::ops::all_desc`]. `apply` and
//!   `split` are primitive; everything else is derivable (§4), and the
//!   derived forms exist alongside the direct ones so the equivalence is
//!   testable (and benchmarkable, experiment B5).
//! * [`list`] — the [`List`] type and the corresponding list operators;
//!   lists are also embeddable as *list-like trees* (§6), and the
//!   embedding is exercised by property tests.
//! * [`setops`] — the AQUA set/multiset operators the ordered algebra
//!   generalizes (§2): `select`, `apply`, `union`/`intersect`/`difference`
//!   parameterized by an equality notion, and `fold`.
//!
//! Everything operates over an [`aqua_object::ObjectStore`]; list/tree
//! nodes hold [`aqua_object::Cell`]s, so duplicate objects may appear
//! while nodes stay unique (§2).

pub mod array;
pub mod bulk;
pub mod cols;
pub mod error;
pub mod list;
pub mod setops;
pub mod tree;

pub use array::AquaArray;
pub use bulk::{ListSet, TreeSet};
pub use cols::{ListCols, TreeCols};
pub use error::{AlgebraError, Result};
pub use list::{List, ListElem};
pub use tree::{NodeId, Payload, Tree, TreeBuilder};
