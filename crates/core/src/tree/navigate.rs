//! Navigation and structural information.
//!
//! The paper mentions (§4) that AQUA provides "a range of other
//! operators for purposes like navigating, updating, and providing
//! structural information about a tree instance"; these are those
//! operators.

use crate::tree::{NodeId, Tree};

impl Tree {
    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (a single node has height 0).
    pub fn height(&self) -> usize {
        self.iter_preorder()
            .map(|n| self.depth(n))
            .max()
            .unwrap_or(0)
    }

    /// Ancestors of `node`, nearest first (excluding `node`).
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Is `anc` a (strict or reflexive) ancestor of `node`?
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// The position of `node` among its parent's children (`None` at the
    /// root).
    pub fn child_index(&self, node: NodeId) -> Option<usize> {
        let p = self.parent(node)?;
        self.children(p).iter().position(|&c| c == node)
    }

    /// Descendants of `node` in document order (excluding `node`).
    pub fn descendants(&self, node: NodeId) -> Vec<NodeId> {
        self.iter_preorder_from(node).skip(1).collect()
    }

    /// Out-degree of `node`. A tree is "fixed-arity" when every internal
    /// node has the same out-degree (§2).
    pub fn arity(&self, node: NodeId) -> usize {
        self.children(node).len()
    }

    /// Fixed-arity check (§2: "'Fixed-arity' trees have constant
    /// out-degree, and 'variable-arity' trees have non-constant
    /// out-degree"): `Some(k)` when every internal node has exactly `k`
    /// children, `None` for variable arity. A single-node tree is
    /// trivially fixed at arity 0.
    pub fn fixed_arity(&self) -> Option<usize> {
        let mut k: Option<usize> = None;
        for n in self.iter_preorder() {
            let a = self.arity(n);
            if a == 0 {
                continue; // leaves don't constrain the arity
            }
            match k {
                None => k = Some(a),
                Some(existing) if existing == a => {}
                Some(_) => return None,
            }
        }
        Some(k.unwrap_or(0))
    }

    /// Document-order comparison key: `(entry, exit)` preorder/postorder
    /// interval numbering. `u` is an ancestor of `v` iff `entry(u) <=
    /// entry(v) && exit(v) <= exit(u)` — the structural index of
    /// experiment B8 builds on this.
    pub fn interval_numbering(&self) -> Vec<(u32, u32)> {
        let mut entry = vec![0u32; self.len()];
        let mut exit = vec![0u32; self.len()];
        let mut clock = 0u32;
        // Iterative DFS with explicit exit events.
        let mut stack = vec![(self.root(), false)];
        while let Some((n, done)) = stack.pop() {
            if done {
                exit[n.index()] = clock;
                clock += 1;
                continue;
            }
            entry[n.index()] = clock;
            clock += 1;
            stack.push((n, true));
            for &k in self.children(n).iter().rev() {
                stack.push((k, false));
            }
        }
        entry.into_iter().zip(exit).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::testutil::Fx;

    #[test]
    fn depth_and_height() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d(x)) c)");
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn ancestors_nearest_first() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d))");
        let b = t.children(t.root())[0];
        let d = t.children(b)[0];
        assert_eq!(t.ancestors(d), vec![b, t.root()]);
        assert!(t.is_ancestor(t.root(), d));
        assert!(t.is_ancestor(d, d));
        assert!(!t.is_ancestor(d, b));
    }

    #[test]
    fn child_index() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b c d)");
        let kids = t.children(t.root());
        assert_eq!(t.child_index(kids[2]), Some(2));
        assert_eq!(t.child_index(t.root()), None);
    }

    #[test]
    fn interval_numbering_encodes_ancestry() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        let iv = t.interval_numbering();
        for u in t.iter_preorder() {
            for v in t.iter_preorder() {
                let contains =
                    iv[u.index()].0 <= iv[v.index()].0 && iv[v.index()].1 <= iv[u.index()].1;
                assert_eq!(contains, t.is_ancestor(u, v), "{u:?} {v:?}");
            }
        }
    }

    #[test]
    fn fixed_arity_detection() {
        let mut fx = Fx::new();
        assert_eq!(fx.tree("a(b(d e) c(f g))").fixed_arity(), Some(2));
        assert_eq!(fx.tree("a(b c d)").fixed_arity(), Some(3));
        assert_eq!(fx.tree("a").fixed_arity(), Some(0));
        assert_eq!(fx.tree("a(b(d) c(f g))").fixed_arity(), None);
    }

    #[test]
    fn descendants_and_arity() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        assert_eq!(t.descendants(t.root()).len(), 4);
        assert_eq!(t.arity(t.root()), 2);
    }
}
