//! Rendering trees in the paper's preorder notation.
//!
//! The paper writes trees "by a preorder-based notation in which a node
//! is followed by a parenthesized list of its children" (§2), e.g.
//! `b(d(f g) e)`. Since node payloads are cells, rendering needs a
//! labeling function from OIDs to display strings.

use aqua_object::Oid;

use crate::tree::{NodeId, Payload, Tree};

/// Render `t` in preorder notation, labeling cell nodes via `label`.
/// Holes render as `@label`.
pub fn render(t: &Tree, label: &impl Fn(Oid) -> String) -> String {
    let mut out = String::new();
    render_node(t, t.root(), label, &mut out);
    out
}

fn render_node(t: &Tree, n: NodeId, label: &impl Fn(Oid) -> String, out: &mut String) {
    match t.payload(n) {
        Payload::Cell(c) => out.push_str(&label(c.contents())),
        Payload::Hole(l) => out.push_str(&l.to_string()),
    }
    let kids = t.children(n);
    if !kids.is_empty() {
        out.push('(');
        for (i, &k) in kids.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            render_node(t, k, label, out);
        }
        out.push(')');
    }
}

/// Render with raw OIDs as labels (debugging aid).
pub fn render_oids(t: &Tree) -> String {
    render(t, &|oid| oid.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;

    #[test]
    fn paper_notation() {
        let mut fx = Fx::new();
        let t = fx.tree("b(d(f g) e)");
        assert_eq!(fx.render(&t), "b(d(f g) e)");
    }

    #[test]
    fn holes_render_with_at() {
        let mut fx = Fx::new();
        let t = fx.tree("a(@1 b)");
        assert_eq!(fx.render(&t), "a(@1 b)");
    }

    #[test]
    fn oid_rendering() {
        let t = Tree::leaf(Oid(7));
        assert_eq!(render_oids(&t), "#7");
    }
}
