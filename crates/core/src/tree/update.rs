//! Update operators.
//!
//! §4 notes that "AQUA also provides a range of other operators for
//! purposes like navigating, updating, and providing structural
//! information about a tree instance" without detailing them. These are
//! the update operators: all functional (they return a new tree and
//! leave the input untouched), matching the algebra's value semantics,
//! and all validity-preserving by construction.

use aqua_object::Oid;

use crate::error::{AlgebraError, Result};
use crate::tree::{NodeId, Tree, TreeBuilder};

impl Tree {
    /// Replace the subtree rooted at `at` with a copy of `replacement`.
    pub fn replace_subtree(&self, at: NodeId, replacement: &Tree) -> Result<Tree> {
        self.check_node(at)?;
        let mut b = TreeBuilder::new();
        let root = rebuild(self, self.root(), &mut b, &mut |node, b| {
            if node == at {
                Some(copy_all(replacement, replacement.root(), b))
            } else {
                None
            }
        });
        Ok(b.finish(root).expect("replace preserves validity"))
    }

    /// Remove the subtree rooted at `at`. Errors when `at` is the root
    /// (a tree cannot be empty).
    pub fn remove_subtree(&self, at: NodeId) -> Result<Tree> {
        self.check_node(at)?;
        if at == self.root() {
            return Err(AlgebraError::Malformed {
                msg: "cannot remove the root subtree; trees are non-empty".into(),
            });
        }
        let mut b = TreeBuilder::new();
        let root =
            rebuild_filter(self, self.root(), &mut b, &mut |n| n != at).expect("root survives");
        Ok(b.finish(root).expect("removal preserves validity"))
    }

    /// Insert a copy of `child` as the `index`-th child of `parent`
    /// (clamped to the child count).
    pub fn insert_child(&self, parent: NodeId, index: usize, child: &Tree) -> Result<Tree> {
        self.check_node(parent)?;
        let mut b = TreeBuilder::new();
        let root = rebuild_with_insert(self, self.root(), parent, index, child, &mut b);
        Ok(b.finish(root).expect("insertion preserves validity"))
    }

    /// Replace the *payload* of `at` with a new cell, keeping the shape
    /// (a point update).
    pub fn set_oid(&self, at: NodeId, oid: Oid) -> Result<Tree> {
        self.check_node(at)?;
        let mut b = TreeBuilder::new();
        let root = rebuild(self, self.root(), &mut b, &mut |node, b| {
            if node == at {
                let kids = self
                    .children(node)
                    .iter()
                    .map(|&k| copy_all(self, k, b))
                    .collect();
                Some(b.node(oid, kids))
            } else {
                None
            }
        });
        Ok(b.finish(root).expect("point update preserves validity"))
    }

    fn check_node(&self, n: NodeId) -> Result<()> {
        if n.index() < self.len() {
            Ok(())
        } else {
            Err(AlgebraError::Malformed {
                msg: format!("node {n:?} out of bounds ({} nodes)", self.len()),
            })
        }
    }
}

/// Copy `node`'s subtree verbatim.
fn copy_all(t: &Tree, node: NodeId, b: &mut TreeBuilder) -> NodeId {
    let kids = t
        .children(node)
        .iter()
        .map(|&k| copy_all(t, k, b))
        .collect();
    b.payload_node(t.payload(node).clone(), kids)
}

/// Copy with an override hook: `f` may emit a replacement for a node
/// (its subtree is then skipped).
fn rebuild(
    t: &Tree,
    node: NodeId,
    b: &mut TreeBuilder,
    f: &mut impl FnMut(NodeId, &mut TreeBuilder) -> Option<NodeId>,
) -> NodeId {
    if let Some(replaced) = f(node, b) {
        return replaced;
    }
    let kids = t
        .children(node)
        .iter()
        .map(|&k| rebuild(t, k, b, f))
        .collect();
    b.payload_node(t.payload(node).clone(), kids)
}

/// Copy keeping only nodes where `keep` holds (dropped nodes drop their
/// subtrees).
fn rebuild_filter(
    t: &Tree,
    node: NodeId,
    b: &mut TreeBuilder,
    keep: &mut impl FnMut(NodeId) -> bool,
) -> Option<NodeId> {
    if !keep(node) {
        return None;
    }
    let kids = t
        .children(node)
        .iter()
        .filter_map(|&k| rebuild_filter(t, k, b, keep))
        .collect();
    Some(b.payload_node(t.payload(node).clone(), kids))
}

fn rebuild_with_insert(
    t: &Tree,
    node: NodeId,
    parent: NodeId,
    index: usize,
    child: &Tree,
    b: &mut TreeBuilder,
) -> NodeId {
    let mut kids: Vec<NodeId> = t
        .children(node)
        .iter()
        .map(|&k| rebuild_with_insert(t, k, parent, index, child, b))
        .collect();
    if node == parent {
        let pos = index.min(kids.len());
        let inserted = copy_all(child, child.root(), b);
        kids.insert(pos, inserted);
    }
    b.payload_node(t.payload(node).clone(), kids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;

    #[test]
    fn replace_subtree_in_context() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(x) c)");
        let b_node = t.children(t.root())[0];
        let repl = fx.tree("n(m)");
        let out = t.replace_subtree(b_node, &repl).unwrap();
        assert_eq!(fx.render(&out), "a(n(m) c)");
        // Original untouched.
        assert_eq!(fx.render(&t), "a(b(x) c)");
    }

    #[test]
    fn replace_at_root_is_whole_tree() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b)");
        let repl = fx.tree("z");
        let out = t.replace_subtree(t.root(), &repl).unwrap();
        assert!(out.structural_eq(&repl));
    }

    #[test]
    fn remove_subtree() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(x) c)");
        let b_node = t.children(t.root())[0];
        let out = t.remove_subtree(b_node).unwrap();
        assert_eq!(fx.render(&out), "a(c)");
        assert!(t.remove_subtree(t.root()).is_err());
    }

    #[test]
    fn insert_child_positions() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b c)");
        let new = fx.tree("n");
        assert_eq!(
            fx.render(&t.insert_child(t.root(), 0, &new).unwrap()),
            "a(n b c)"
        );
        assert_eq!(
            fx.render(&t.insert_child(t.root(), 1, &new).unwrap()),
            "a(b n c)"
        );
        // Index clamps.
        assert_eq!(
            fx.render(&t.insert_child(t.root(), 99, &new).unwrap()),
            "a(b c n)"
        );
    }

    #[test]
    fn insert_under_leaf() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b)");
        let b_node = t.children(t.root())[0];
        let new = fx.tree("n");
        assert_eq!(
            fx.render(&t.insert_child(b_node, 0, &new).unwrap()),
            "a(b(n))"
        );
    }

    #[test]
    fn set_oid_point_update() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b c)");
        let z = fx
            .store
            .insert_named("N", &[("label", aqua_object::Value::str("z"))])
            .unwrap();
        let b_node = t.children(t.root())[0];
        let out = t.set_oid(b_node, z).unwrap();
        assert_eq!(fx.render(&out), "a(z c)");
        assert_eq!(out.len(), t.len());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut fx = Fx::new();
        let t = fx.tree("a");
        let far = NodeId(99);
        assert!(t.replace_subtree(far, &t).is_err());
        assert!(t.remove_subtree(far).is_err());
        assert!(t.insert_child(far, 0, &t).is_err());
        assert!(t.set_oid(far, aqua_object::Oid(0)).is_err());
    }
}
