//! Structural folds for trees and lists.
//!
//! §4 ("Why Split?") positions `split` as "an order-preserving analog
//! for fold \[19\] that is based on pattern matching". This module
//! supplies the fold side of that analogy: bottom-up tree catamorphisms
//! and ordered list folds, so the relationship is visible (and tested)
//! in code.

use aqua_pattern::CcLabel;

use crate::list::{List, ListElem};
use crate::tree::{NodeId, Payload, Tree};

/// What a fold sees at each node.
pub enum FoldNode<'t> {
    /// A real element.
    Cell(aqua_object::Oid),
    /// A labeled NULL.
    Hole(&'t CcLabel),
}

impl Tree {
    /// Bottom-up fold (catamorphism): `f(node-view, child results)` is
    /// evaluated children-first; the root's result is returned. The
    /// children slice is in document order, so the fold is
    /// order-preserving in the paper's sense.
    pub fn fold<A>(&self, mut f: impl FnMut(FoldNode<'_>, &[A]) -> A) -> A {
        fn walk<A>(t: &Tree, node: NodeId, f: &mut impl FnMut(FoldNode<'_>, &[A]) -> A) -> A {
            let kids: Vec<A> = t.children(node).iter().map(|&k| walk(t, k, f)).collect();
            let view = match t.payload(node) {
                Payload::Cell(c) => FoldNode::Cell(c.contents()),
                Payload::Hole(l) => FoldNode::Hole(l),
            };
            f(view, &kids)
        }
        walk(self, self.root(), &mut f)
    }

    /// Count of real (cell) nodes via fold.
    pub fn count_cells(&self) -> usize {
        self.fold(|view, kids| {
            kids.iter().sum::<usize>() + usize::from(matches!(view, FoldNode::Cell(_)))
        })
    }
}

impl List {
    /// Left fold over the elements, in order.
    pub fn fold<A>(&self, init: A, f: impl FnMut(A, &ListElem) -> A) -> A {
        self.elems().iter().fold(init, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;
    use aqua_object::{AttrId, Value};

    #[test]
    fn fold_is_bottom_up_and_ordered() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        // Collect labels in fold order: children before parents, left to
        // right — i.e. postorder.
        let post = t.fold(|view, kids: &[String]| {
            let own = match view {
                FoldNode::Cell(oid) => match fx.store.attr(oid, AttrId(0)) {
                    Value::Str(s) => s.clone(),
                    _ => unreachable!(),
                },
                FoldNode::Hole(l) => l.to_string(),
            };
            format!("{}{}", kids.concat(), own)
        });
        assert_eq!(post, "dfbca");
    }

    #[test]
    fn fold_sees_holes() {
        let mut fx = Fx::new();
        let t = fx.tree("a(@x b)");
        let holes = t.fold(|view, kids: &[usize]| {
            kids.iter().sum::<usize>() + usize::from(matches!(view, FoldNode::Hole(_)))
        });
        assert_eq!(holes, 1);
        assert_eq!(t.count_cells(), 2);
    }

    #[test]
    fn height_via_fold_matches_navigate() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d(x)) c)");
        let h = t.fold(|_, kids: &[usize]| kids.iter().copied().max().map_or(0, |m| m + 1));
        assert_eq!(h, t.height());
    }

    #[test]
    fn list_fold_in_order() {
        let mut fx = crate::list::testutil::Fx::new();
        let l = fx.song("ABC");
        let s = l.fold(String::new(), |mut acc, e| {
            if let Some(oid) = e.oid() {
                if let Value::Str(p) = fx.store.attr(oid, AttrId(0)) {
                    acc.push_str(p);
                }
            }
            acc
        });
        assert_eq!(s, "ABC");
    }

    /// The §4 analogy made literal: a fold restricted to the match piece
    /// of a split equals folding the sub_select result.
    #[test]
    fn split_is_pattern_based_fold() {
        let mut fx = Fx::new();
        let t = fx.tree("r(u(x) u)");
        let cp = aqua_pattern::parser::parse_tree_pattern("u", &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let cfg = aqua_pattern::tree_match::MatchConfig::default();
        let via_split: Vec<usize> =
            crate::tree::split::split(&fx.store, &t, &cp, &cfg, |p| p.matched.count_cells())
                .unwrap();
        let via_sub: Vec<usize> = crate::tree::ops::sub_select(&fx.store, &t, &cp, &cfg)
            .unwrap()
            .iter()
            .map(Tree::count_cells)
            .collect();
        assert_eq!(via_split, via_sub);
    }
}
