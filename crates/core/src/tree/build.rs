//! Tree construction.
//!
//! Trees are built bottom-up through a [`TreeBuilder`]: create leaf and
//! internal nodes (each child may be used exactly once), then
//! [`TreeBuilder::finish`] with the root. The builder validates the
//! structure — every node reachable, no sharing, no cycles — which is
//! exactly the bookkeeping the paper says users should *not* have to do
//! when trees are mere nested lists (§2, "Lists and Trees").

use aqua_object::{Cell, Oid};
use aqua_pattern::CcLabel;

use crate::error::{AlgebraError, Result};
use crate::tree::{Node, NodeId, Payload, Tree};

/// Bottom-up tree builder.
///
/// ```
/// use aqua_algebra::TreeBuilder;
/// use aqua_object::Oid;
///
/// // b(d e)
/// let mut b = TreeBuilder::new();
/// let d = b.node(Oid(1), vec![]);
/// let e = b.node(Oid(2), vec![]);
/// let root = b.node(Oid(0), vec![d, e]);
/// let tree = b.finish(root).unwrap();
/// assert_eq!(tree.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node holding `oid`'s cell with the given (already-built)
    /// children.
    pub fn node(&mut self, oid: Oid, children: Vec<NodeId>) -> NodeId {
        self.push(Payload::Cell(Cell::new(oid)), children)
    }

    /// Add a labeled-NULL node (a concatenation point in the instance).
    /// Holes are leaves in well-formed trees, but children are accepted
    /// here and rejected by [`finish`](Self::finish) so the error carries
    /// context.
    pub fn hole_node(&mut self, label: CcLabel, children: Vec<NodeId>) -> NodeId {
        self.push(Payload::Hole(label), children)
    }

    /// Add a node with an explicit payload.
    pub fn payload_node(&mut self, payload: Payload, children: Vec<NodeId>) -> NodeId {
        self.push(payload, children)
    }

    fn push(&mut self, payload: Payload, children: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            payload,
            children,
            parent: None,
        });
        id
    }

    /// Validate and seal the tree rooted at `root`: checks child
    /// references exist, every node is used exactly once (no sharing, no
    /// cycles — the bookkeeping of §2), holes are leaves, and all nodes
    /// are reachable from `root`; then sets parent links.
    pub fn finish(mut self, root: NodeId) -> Result<Tree> {
        let n = self.nodes.len();
        if root.index() >= n {
            return Err(AlgebraError::Malformed {
                msg: format!("root {root:?} out of bounds ({n} nodes)"),
            });
        }
        // Each node may be the child of at most one parent.
        let mut parent_of: Vec<Option<NodeId>> = vec![None; n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if c.index() >= n {
                    return Err(AlgebraError::Malformed {
                        msg: format!("child {c:?} out of bounds"),
                    });
                }
                if c.index() == i {
                    return Err(AlgebraError::Malformed {
                        msg: format!("node {i} is its own child"),
                    });
                }
                if parent_of[c.index()].is_some() {
                    return Err(AlgebraError::Malformed {
                        msg: format!("node {c:?} has two parents (shared child list, §2)"),
                    });
                }
                parent_of[c.index()] = Some(NodeId(i as u32));
            }
            if matches!(node.payload, Payload::Hole(_)) && !node.children.is_empty() {
                return Err(AlgebraError::Malformed {
                    msg: format!("hole node {i} has children; labeled NULLs are leaves"),
                });
            }
        }
        if parent_of[root.index()].is_some() {
            return Err(AlgebraError::Malformed {
                msg: "root has a parent".into(),
            });
        }
        // Reachability (also catches cycles among non-root components).
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(x) = stack.pop() {
            if seen[x.index()] {
                return Err(AlgebraError::Malformed {
                    msg: "cycle detected".into(),
                });
            }
            seen[x.index()] = true;
            count += 1;
            stack.extend(self.nodes[x.index()].children.iter().copied());
        }
        if count != n {
            return Err(AlgebraError::Malformed {
                msg: format!("{} nodes unreachable from root", n - count),
            });
        }
        for (i, p) in parent_of.into_iter().enumerate() {
            self.nodes[i].parent = p;
        }
        Ok(Tree {
            nodes: self.nodes,
            root,
            cols: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_links_parents() {
        let mut b = TreeBuilder::new();
        let l = b.node(Oid(1), vec![]);
        let r = b.node(Oid(2), vec![]);
        let root = b.node(Oid(0), vec![l, r]);
        let t = b.finish(root).unwrap();
        assert_eq!(t.parent(l), Some(root));
        assert_eq!(t.parent(root), None);
        assert_eq!(t.children(root), &[l, r]);
    }

    #[test]
    fn rejects_shared_child() {
        let mut b = TreeBuilder::new();
        let shared = b.node(Oid(1), vec![]);
        let a = b.node(Oid(2), vec![shared]);
        let root = b.node(Oid(0), vec![a, shared]);
        let err = b.finish(root).unwrap_err();
        assert!(err.to_string().contains("two parents"));
    }

    #[test]
    fn rejects_unreachable_nodes() {
        let mut b = TreeBuilder::new();
        let _orphan = b.node(Oid(1), vec![]);
        let root = b.node(Oid(0), vec![]);
        let err = b.finish(root).unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn rejects_self_child_and_oob() {
        let mut b = TreeBuilder::new();
        let root = b.node(Oid(0), vec![NodeId(0)]);
        assert!(b.finish(root).is_err());
        let b = TreeBuilder::new();
        assert!(b.finish(NodeId(3)).is_err());
    }

    #[test]
    fn rejects_hole_with_children() {
        let mut b = TreeBuilder::new();
        let k = b.node(Oid(1), vec![]);
        let root = b.hole_node(CcLabel::new("x"), vec![k]);
        let err = b.finish(root).unwrap_err();
        assert!(err.to_string().contains("labeled NULLs"));
    }

    #[test]
    fn rejects_rooted_subtree_as_child() {
        // root can't also be someone's child
        let mut b = TreeBuilder::new();
        let a = b.node(Oid(1), vec![]);
        let _root = b.node(Oid(0), vec![a]);
        assert!(b.finish(a).is_err());
    }
}
