//! Tree traversal iterators.

use crate::tree::{NodeId, Tree};

/// Preorder (document-order) iterator.
pub struct Preorder<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        let kids = self.tree.children(n);
        self.stack.extend(kids.iter().rev().copied());
        Some(n)
    }
}

/// Postorder iterator (children before parents).
pub struct Postorder<'a> {
    tree: &'a Tree,
    // (node, expanded?)
    stack: Vec<(NodeId, bool)>,
}

impl Iterator for Postorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let (n, expanded) = self.stack.pop()?;
            if expanded {
                return Some(n);
            }
            self.stack.push((n, true));
            let kids = self.tree.children(n);
            self.stack.extend(kids.iter().rev().map(|&k| (k, false)));
        }
    }
}

impl Tree {
    /// Nodes in preorder (document order) from the root.
    pub fn iter_preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![self.root()],
        }
    }

    /// Nodes in preorder from an arbitrary start node.
    pub fn iter_preorder_from(&self, start: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![start],
        }
    }

    /// Nodes in postorder from the root.
    pub fn iter_postorder(&self) -> Postorder<'_> {
        Postorder {
            tree: self,
            stack: vec![(self.root(), false)],
        }
    }

    /// Leaves in document order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter_preorder().filter(|&n| self.is_leaf(n))
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::testutil::Fx;

    #[test]
    fn preorder_is_document_order() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        let labels: Vec<String> = t
            .iter_preorder()
            .map(|n| fx.render(&crate::tree::concat::subtree(&t, n)))
            .map(|s| s.chars().next().unwrap().to_string())
            .collect();
        assert_eq!(labels.join(""), "abdfc");
    }

    #[test]
    fn postorder_children_first() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        let order: Vec<u32> = t.iter_postorder().map(|n| n.0).collect();
        // Parent appears after each of its children.
        for &n in &order {
            let node = crate::tree::NodeId(n);
            for &k in t.children(node) {
                let pi = order.iter().position(|&x| x == n).unwrap();
                let ki = order.iter().position(|&x| x == k.0).unwrap();
                assert!(ki < pi);
            }
        }
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn leaves_in_document_order() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        assert_eq!(t.leaves().count(), 3);
    }

    #[test]
    fn preorder_from_subnode() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        let b = t.children(t.root())[0];
        assert_eq!(t.iter_preorder_from(b).count(), 3);
    }
}
