//! The AQUA `Tree[T]` type and its operators.
//!
//! A tree is a set of nodes and a set of lists of directed edges (§2):
//! here an arena of [`Node`]s, each holding a payload and an ordered
//! child list, with parent back-pointers for navigation. Node payloads
//! are [`Payload::Cell`] (the cell indirection of §2 — nodes are unique,
//! objects may repeat) or [`Payload::Hole`] — a labeled NULL, i.e. a
//! concatenation point appearing *in an instance* (§3.5). Only the
//! concatenation operator observes holes.

pub mod build;
pub mod concat;
pub mod display;
pub mod distance;
pub mod fold;
pub mod iter;
pub mod navigate;
pub mod ops;
pub mod split;
pub mod update;

use std::sync::OnceLock;

use aqua_object::{Cell, Oid};
use aqua_pattern::tree_match::{NodePayloadRef, TreeAccess};
use aqua_pattern::CcLabel;

use crate::cols::TreeCols;

pub use build::TreeBuilder;

/// Index of a node within its tree's arena.
///
/// `repr(transparent)` over `u32` so child slices can be exposed to the
/// pattern matcher's `TreeAccess` view without copying.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node's contents.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A real element: a cell containing the element object's identity.
    Cell(Cell),
    /// A labeled NULL — a concatenation point in an instance (§3.5).
    Hole(CcLabel),
}

impl Payload {
    /// The contained object identity, if this is a cell.
    pub fn oid(&self) -> Option<Oid> {
        match self {
            Payload::Cell(c) => Some(c.contents()),
            Payload::Hole(_) => None,
        }
    }

    /// The hole label, if this is a labeled NULL.
    pub fn hole(&self) -> Option<&CcLabel> {
        match self {
            Payload::Cell(_) => None,
            Payload::Hole(l) => Some(l),
        }
    }
}

/// One arena node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub(crate) payload: Payload,
    pub(crate) children: Vec<NodeId>,
    pub(crate) parent: Option<NodeId>,
}

/// An ordered tree over cells, with labeled NULLs (holes) as possible
/// leaves.
///
/// Carries a lazily-built [`TreeCols`] flat view (contiguous CSR
/// children, interval, preorder, and cell-OID columns) that the bulk
/// operators and the store readers use instead of walking
/// `Node.children`. Every mutator is persistent (`&self -> Tree`), so
/// the cached view can never go stale; clones start with a cold cache.
pub struct Tree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) cols: OnceLock<TreeCols>,
}

impl std::fmt::Debug for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tree")
            .field("nodes", &self.nodes)
            .field("root", &self.root)
            .finish()
    }
}

impl Clone for Tree {
    fn clone(&self) -> Tree {
        Tree {
            nodes: self.nodes.clone(),
            root: self.root,
            cols: OnceLock::new(),
        }
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Tree) -> bool {
        self.nodes == other.nodes && self.root == other.root
    }
}

impl Tree {
    /// A single-node tree holding `oid`'s cell.
    pub fn leaf(oid: Oid) -> Tree {
        Tree {
            nodes: vec![Node {
                payload: Payload::Cell(Cell::new(oid)),
                children: Vec::new(),
                parent: None,
            }],
            root: NodeId(0),
            cols: OnceLock::new(),
        }
    }

    /// A single-node tree that is just a labeled NULL. (`split` produces
    /// one as the context piece when the match root is the tree root.)
    pub fn hole(label: impl Into<CcLabel>) -> Tree {
        Tree {
            nodes: vec![Node {
                payload: Payload::Hole(label.into()),
                children: Vec::new(),
                parent: None,
            }],
            root: NodeId(0),
            cols: OnceLock::new(),
        }
    }

    /// The flat columnar view, built on first use and cached.
    #[inline]
    pub fn cols(&self) -> &TreeCols {
        self.cols
            .get_or_init(|| TreeCols::build(&self.nodes, self.root))
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the arena.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The payload of `node`.
    #[inline]
    pub fn payload(&self, node: NodeId) -> &Payload {
        &self.nodes[node.index()].payload
    }

    /// The object identity at `node` (`None` for holes).
    #[inline]
    pub fn oid(&self, node: NodeId) -> Option<Oid> {
        self.nodes[node.index()].payload.oid()
    }

    /// Ordered children of `node`.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Parent of `node` (`None` at the root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Whether `node` is a leaf (no children).
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children(node).is_empty()
    }

    /// All hole labels present in the tree, in document order.
    pub fn hole_labels(&self) -> Vec<&CcLabel> {
        self.iter_preorder()
            .filter_map(|n| self.payload(n).hole())
            .collect()
    }

    /// Structural equality: same shape and equal payloads (cells compare
    /// by contained OID). Arena numbering is ignored.
    pub fn structural_eq(&self, other: &Tree) -> bool {
        fn eq(a: &Tree, an: NodeId, b: &Tree, bn: NodeId) -> bool {
            if a.payload(an) != b.payload(bn) {
                return false;
            }
            let (ac, bc) = (a.children(an), b.children(bn));
            ac.len() == bc.len() && ac.iter().zip(bc).all(|(&x, &y)| eq(a, x, b, y))
        }
        eq(self, self.root, other, other.root)
    }
}

/// The matcher in `aqua-pattern` is generic over this view.
impl TreeAccess for Tree {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn root(&self) -> u32 {
        self.root.0
    }

    fn children(&self, node: u32) -> &[u32] {
        let kids: &[NodeId] = &self.nodes[node as usize].children;
        // SAFETY: NodeId is repr(transparent) over u32, so &[NodeId] and
        // &[u32] have identical layout.
        unsafe { std::slice::from_raw_parts(kids.as_ptr().cast::<u32>(), kids.len()) }
    }

    fn payload(&self, node: u32) -> NodePayloadRef<'_> {
        match &self.nodes[node as usize].payload {
            Payload::Cell(c) => NodePayloadRef::Obj(c.contents()),
            Payload::Hole(l) => NodePayloadRef::Hole(l),
        }
    }

    fn preorder_hint(&self) -> Option<&[u32]> {
        Some(self.cols().preorder())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared test fixture: build stores and trees from compact specs.

    use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, ObjectStore, Value};
    use aqua_pattern::parser::PredEnv;

    use super::*;

    pub struct Fx {
        pub store: ObjectStore,
        pub class: ClassId,
    }

    impl Fx {
        pub fn new() -> Self {
            let mut store = ObjectStore::new();
            let class = store
                .define_class(
                    ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
                )
                .unwrap();
            Fx { store, class }
        }

        pub fn env(&self) -> PredEnv {
            PredEnv::with_default_attr("label")
        }

        /// Build a tree from a preorder spec: `a(b(d f) c)`; `@x` makes a
        /// hole. Every letter creates a fresh object.
        pub fn tree(&mut self, spec: &str) -> Tree {
            let chars: Vec<char> = spec.chars().filter(|c| !c.is_whitespace()).collect();
            let mut b = TreeBuilder::new();
            let mut pos = 0usize;
            let root = self.parse(&chars, &mut pos, &mut b);
            b.finish(root).unwrap()
        }

        fn obj(&mut self, label: char) -> Oid {
            self.store
                .insert_named("N", &[("label", Value::str(label.to_string()))])
                .unwrap()
        }

        fn parse(&mut self, chars: &[char], pos: &mut usize, b: &mut TreeBuilder) -> NodeId {
            let c = chars[*pos];
            *pos += 1;
            if c == '@' {
                let l = chars[*pos];
                *pos += 1;
                return b.hole_node(CcLabel::new(l.to_string()), Vec::new());
            }
            let mut kids = Vec::new();
            if *pos < chars.len() && chars[*pos] == '(' {
                *pos += 1;
                while chars[*pos] != ')' {
                    let k = self.parse(chars, pos, b);
                    kids.push(k);
                }
                *pos += 1;
            }
            let oid = self.obj(c);
            b.node(oid, kids)
        }

        /// Render a tree in the paper's preorder notation using labels.
        pub fn render(&self, t: &Tree) -> String {
            crate::tree::display::render(t, &|oid| match self
                .store
                .attr(oid, aqua_object::AttrId(0))
            {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            })
        }
    }

    #[test]
    fn fixture_builds_paper_trees() {
        let mut fx = Fx::new();
        let t = fx.tree("b(d(f g) e)");
        assert_eq!(fx.render(&t), "b(d(f g) e)");
        assert_eq!(t.len(), 5);
        let with_hole = fx.tree("a(b @x c)");
        assert_eq!(with_hole.hole_labels().len(), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Fx;
    use super::*;

    #[test]
    fn leaf_and_hole_constructors() {
        let t = Tree::leaf(Oid(5));
        assert_eq!(t.oid(t.root()), Some(Oid(5)));
        assert!(t.is_leaf(t.root()));
        let h = Tree::hole("x");
        assert!(h.payload(h.root()).hole().is_some());
        assert_eq!(h.oid(h.root()), None);
    }

    #[test]
    fn structural_eq_ignores_arena_order() {
        let mut fx = Fx::new();
        let a = fx.tree("a(b c)");
        // Same shape, different objects — cells differ, not equal.
        let b = fx.tree("a(b c)");
        assert!(!a.structural_eq(&b));
        assert!(a.structural_eq(&a.clone()));
    }

    #[test]
    fn tree_access_view() {
        use aqua_pattern::tree_match::TreeAccess;
        let mut fx = Fx::new();
        let t = fx.tree("a(b c)");
        let root = TreeAccess::root(&t);
        assert_eq!(TreeAccess::children(&t, root).len(), 2);
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn parent_links() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d) c)");
        let root = t.root();
        assert_eq!(t.parent(root), None);
        for &k in t.children(root) {
            assert_eq!(t.parent(k), Some(root));
        }
    }
}
