//! Tree query operators (paper §4).
//!
//! Two families:
//!
//! * Operators common to all bulk types — [`select`] and [`apply`] —
//!   lifted to trees so that the result preserves relative order and
//!   ancestry (stability).
//! * Pattern-based operators specific to ordered types —
//!   [`sub_select`], [`all_anc`], [`all_desc`] — all expressible through
//!   [`split`](crate::tree::split::split). Both the *direct*
//!   implementations and the *split-derived* definitions from the paper
//!   are provided; experiment B5 benchmarks one against the other and
//!   the property suite checks they agree.

use aqua_guard::ExecGuard;
use aqua_object::{ObjectStore, Oid};
use aqua_pattern::alphabet::Pred;
use aqua_pattern::tree_ast::CompiledTreePattern;
use aqua_pattern::tree_match::{MatchConfig, TreeMatcher};

use crate::error::{AlgebraError, Result};
use crate::tree::split::{split_pieces_guarded, SplitPieces};
use crate::tree::{NodeId, Payload, Tree, TreeBuilder};

/// Unwrap a guard-fallible result that ran with no guard installed and
/// no pattern matching involved (errors cannot occur).
fn infallible<T>(r: Result<T>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => unreachable!("guardless select cannot fail: {e}"),
    }
}

/// `select(p)(T)` — all nodes of `T` satisfying `p`, with ancestry
/// compressed: `n₁` is the parent of `n₂` in the result iff `n₁` is the
/// nearest satisfying ancestor of `n₂` in `T`. Returns a forest (a
/// single tree when the root satisfies `p`), roots in document order.
///
/// Labeled NULLs never satisfy an alphabet-predicate, so they are
/// filtered like any non-matching node.
pub fn select(store: &ObjectStore, tree: &Tree, p: &Pred) -> Vec<Tree> {
    infallible(select_guarded(store, tree, p, None))
}

/// [`select`] under an optional execution guard: each node visit counts
/// one step, each result tree counts toward the result cap.
///
/// Predicate evaluation is batched: the predicate is compiled to a flat
/// program and run over the tree's contiguous cell-OID column
/// ([`Tree::cols`]) a chunk at a time, charging the guard per chunk;
/// the structural walk then just consults the resulting bitmask. The
/// step total is unchanged — one per node, cells and holes alike.
pub fn select_guarded(
    store: &ObjectStore,
    tree: &Tree,
    p: &Pred,
    guard: Option<&ExecGuard>,
) -> Result<Vec<Tree>> {
    struct Builder<'t> {
        tree: &'t Tree,
        sat: aqua_pattern::batch::BitRow,
    }
    struct Picked {
        oid: Oid,
        children: Vec<Picked>,
    }
    impl Builder<'_> {
        fn walk(&self, node: NodeId, out: &mut Vec<Picked>) {
            let cols = self.tree.cols();
            let satisfied = cols.cell_index(node.0).is_some_and(|i| self.sat.get(i));
            if satisfied {
                let mut picked = Picked {
                    oid: self.tree.oid(node).unwrap(),
                    children: Vec::new(),
                };
                for &k in self.tree.children(node) {
                    self.walk(k, &mut picked.children);
                }
                out.push(picked);
            } else {
                for &k in self.tree.children(node) {
                    self.walk(k, out);
                }
            }
        }
    }
    fn realize(picked: &Picked, b: &mut TreeBuilder) -> NodeId {
        let kids = picked.children.iter().map(|c| realize(c, b)).collect();
        b.node(picked.oid, kids)
    }
    let cols = tree.cols();
    let program = p.batch();
    let sat = program.eval(store, cols.cell_oids(), guard)?;
    // Holes never satisfy a predicate but still cost their visit step.
    aqua_guard::steps_n(guard, (tree.len() - cols.cell_oids().len()) as u64)?;
    let mut roots = Vec::new();
    Builder { tree, sat }.walk(tree.root(), &mut roots);
    let mut out = Vec::with_capacity(roots.len());
    for r in &roots {
        let mut b = TreeBuilder::new();
        let root = realize(r, &mut b);
        out.push(b.finish(root)?);
        aqua_guard::result_emitted(guard)?;
    }
    Ok(out)
}

/// `apply(f)(T)` — an isomorphic tree whose cell at each node is
/// `f(oid)`. Holes are preserved unchanged.
pub fn apply(tree: &Tree, mut f: impl FnMut(Oid) -> Oid) -> Tree {
    fn walk(
        tree: &Tree,
        node: NodeId,
        f: &mut impl FnMut(Oid) -> Oid,
        b: &mut TreeBuilder,
    ) -> NodeId {
        let kids = tree
            .children(node)
            .iter()
            .map(|&k| walk(tree, k, f, b))
            .collect();
        match tree.payload(node) {
            Payload::Cell(c) => b.node(f(c.contents()), kids),
            Payload::Hole(l) => b.hole_node(l.clone(), kids),
        }
    }
    let mut b = TreeBuilder::new();
    let root = walk(tree, tree.root(), &mut f, &mut b);
    b.finish(root).expect("apply preserves tree shape")
}

/// `sub_select(tp)(T)` — the set of subgraphs of `T` matching `tp`, in
/// document order of their roots. Each result is the match piece with
/// its cut points concatenated to NULL (`b ∘_{α_1…α_n} []`, §4).
pub fn sub_select(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
) -> Result<Vec<Tree>> {
    sub_select_guarded(store, tree, pattern, cfg, None)
}

/// [`sub_select`] under an optional execution guard.
pub fn sub_select_guarded(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    guard: Option<&ExecGuard>,
) -> Result<Vec<Tree>> {
    Ok(sub_select_outcome_guarded(store, tree, pattern, cfg, guard)?.trees)
}

/// A `sub_select` result with its truncation provenance: the trees plus
/// the [`MatchOutcome`](aqua_pattern::tree_match::MatchOutcome) clipping
/// flags, so a serving layer can report *partial* results as partial
/// instead of silently dropping the distinction.
#[derive(Debug, Clone, Default)]
pub struct SubSelectOutcome {
    /// Result trees, in document order of their match roots.
    pub trees: Vec<Tree>,
    /// `true` if any [`MatchConfig`] limit clipped enumeration.
    pub truncated: bool,
    /// Child-list parse enumerations clipped by `parse_limit`.
    pub clipped_parses: usize,
    /// Roots whose instance list was clipped by `per_root_limit`.
    pub clipped_roots: usize,
    /// `true` if the scan stopped early at `max_matches`.
    pub hit_max_matches: bool,
}

fn build_sub_select_outcome(
    tree: &Tree,
    outcome: aqua_pattern::tree_match::MatchOutcome,
    guard: Option<&ExecGuard>,
) -> Result<SubSelectOutcome> {
    let mut trees = Vec::with_capacity(outcome.matches.len());
    for m in &outcome.matches {
        aqua_guard::steps_n(guard, m.nodes.len() as u64 + 1)?;
        trees.push(reduced_match_tree(tree, m)?);
        aqua_guard::result_emitted(guard)?;
    }
    Ok(SubSelectOutcome {
        trees,
        truncated: outcome.truncated,
        clipped_parses: outcome.clipped_parses,
        clipped_roots: outcome.clipped_roots,
        hit_max_matches: outcome.hit_max_matches,
    })
}

/// [`sub_select_guarded`] keeping the truncation flags.
pub fn sub_select_outcome_guarded(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    guard: Option<&ExecGuard>,
) -> Result<SubSelectOutcome> {
    let mut matcher = TreeMatcher::new(pattern, tree, store);
    if let Some(g) = guard {
        matcher = matcher.with_guard(g);
    }
    let outcome = matcher.find_matches_outcome(cfg)?;
    build_sub_select_outcome(tree, outcome, guard)
}

/// Build `b ∘_{α_1…α_n} []` directly from a match: copy only the kept
/// nodes, dropping the cut positions. Equivalent to cutting full
/// [`SplitPieces`] and nil-reducing, but O(match size) instead of
/// O(tree size) — `sub_select` does not need the context piece.
fn reduced_match_tree(tree: &Tree, m: &aqua_pattern::tree_match::TreeMatch) -> Result<Tree> {
    use std::collections::HashSet;
    let in_match: HashSet<u32> = m.nodes.iter().copied().collect();
    let cut_roots: HashSet<u32> = m.cuts.iter().map(|c| c.root).collect();
    fn copy(
        tree: &Tree,
        node: NodeId,
        in_match: &std::collections::HashSet<u32>,
        cut_roots: &std::collections::HashSet<u32>,
        b: &mut TreeBuilder,
    ) -> NodeId {
        let mut kids = Vec::new();
        for &k in tree.children(node) {
            if cut_roots.contains(&k.0) {
                continue;
            }
            debug_assert!(in_match.contains(&k.0), "child neither kept nor cut");
            kids.push(copy(tree, k, in_match, cut_roots, b));
        }
        b.payload_node(tree.payload(node).clone(), kids)
    }
    let mut b = TreeBuilder::new();
    let root = copy(tree, NodeId(m.root), &in_match, &cut_roots, &mut b);
    b.finish(root)
}

/// `sub_select` restricted to candidate match roots — the executor for
/// the paper's §4 rewrite: an index probe proposes `candidates` (nodes
/// satisfying the pattern's root predicate) and the pattern is verified
/// only there. With `candidates` = all nodes this equals [`sub_select`].
pub fn sub_select_from(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    candidates: &[u32],
) -> Result<Vec<Tree>> {
    sub_select_from_guarded(store, tree, pattern, cfg, candidates, None)
}

/// [`sub_select_from`] under an optional execution guard.
pub fn sub_select_from_guarded(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    candidates: &[u32],
    guard: Option<&ExecGuard>,
) -> Result<Vec<Tree>> {
    Ok(sub_select_from_outcome_guarded(store, tree, pattern, cfg, candidates, guard)?.trees)
}

/// [`sub_select_from_guarded`] keeping the truncation flags.
pub fn sub_select_from_outcome_guarded(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    candidates: &[u32],
    guard: Option<&ExecGuard>,
) -> Result<SubSelectOutcome> {
    let mut matcher = TreeMatcher::new(pattern, tree, store);
    if let Some(g) = guard {
        matcher = matcher.with_guard(g);
    }
    let outcome = matcher.find_matches_from_outcome(candidates, cfg)?;
    build_sub_select_outcome(tree, outcome, guard)
}

/// Remove exactly the cut holes from a match piece (pre-existing holes
/// in the subject tree survive — they are part of the instance).
fn nil_reduce_cuts(pieces: &SplitPieces) -> Result<Tree> {
    let mut acc = pieces.matched.clone();
    for label in &pieces.cut_labels {
        acc = crate::tree::concat::concat_nil(&acc, label).ok_or_else(|| {
            AlgebraError::Malformed {
                msg: format!("cut hole {:?} sits at the match root", label.0),
            }
        })?;
    }
    Ok(acc)
}

/// The paper's derivation: `sub_select(tp) = split(tp, λ(a,b,c) b ∘ [])`.
/// Kept verbatim for the B5 ablation and the equivalence property test.
pub fn sub_select_via_split(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
) -> Result<Vec<Tree>> {
    crate::tree::split::split(store, tree, pattern, cfg, nil_reduce_cuts)?
        .into_iter()
        .collect()
}

/// `all_anc(tp, f)(T)` — `f(context, match)` per match: the match plus
/// everything that is *not* below it (its ancestors and their other
/// descendants). Derived from `split` exactly as in §4:
/// `apply(λa f(1(a), 2(a)))(split(tp, λ(a,b,c)⟨a, b ∘ []⟩))`.
pub fn all_anc<R>(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    f: impl FnMut(&Tree, &Tree) -> R,
) -> Result<Vec<R>> {
    all_anc_guarded(store, tree, pattern, cfg, f, None)
}

/// [`all_anc`] under an optional execution guard.
pub fn all_anc_guarded<R>(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    mut f: impl FnMut(&Tree, &Tree) -> R,
    guard: Option<&ExecGuard>,
) -> Result<Vec<R>> {
    let outcome = split_pieces_guarded(store, tree, pattern, cfg, guard)?;
    let mut out = Vec::with_capacity(outcome.pieces.len());
    for p in &outcome.pieces {
        let reduced = nil_reduce_cuts(p)?;
        out.push(f(&p.context, &reduced));
    }
    Ok(out)
}

/// `all_desc(tp, f)(T)` — `f(match, descendants)` per match; the match
/// piece keeps its `α_i` holes so the caller can see where each
/// descendant attaches (§4: `g = λ(a,b,c)⟨b, c⟩`).
pub fn all_desc<R>(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    f: impl FnMut(&Tree, &[Tree]) -> R,
) -> Result<Vec<R>> {
    all_desc_guarded(store, tree, pattern, cfg, f, None)
}

/// [`all_desc`] under an optional execution guard.
pub fn all_desc_guarded<R>(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    mut f: impl FnMut(&Tree, &[Tree]) -> R,
    guard: Option<&ExecGuard>,
) -> Result<Vec<R>> {
    let outcome = split_pieces_guarded(store, tree, pattern, cfg, guard)?;
    Ok(outcome
        .pieces
        .iter()
        .map(|p| f(&p.matched, &p.descendants))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;
    use aqua_pattern::parser::parse_tree_pattern;
    use aqua_pattern::PredExpr;

    fn pred(fx: &Fx, label: &str) -> Pred {
        PredExpr::eq("label", label)
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap()
    }

    fn compile(fx: &Fx, text: &str) -> CompiledTreePattern {
        parse_tree_pattern(text, &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap()
    }

    #[test]
    fn select_compresses_ancestry() {
        let mut fx = Fx::new();
        // u nodes at scattered depths; intermediate non-u nodes vanish
        // and edges jump to the nearest satisfying ancestor.
        let t = fx.tree("u(a(u(b(u)) c) u)");
        let forest = select(&fx.store, &t, &pred(&fx, "u"));
        assert_eq!(forest.len(), 1);
        assert_eq!(fx.render(&forest[0]), "u(u(u) u)");
    }

    #[test]
    fn select_returns_forest_when_root_fails() {
        let mut fx = Fx::new();
        let t = fx.tree("a(u(x(u)) b(u))");
        let forest = select(&fx.store, &t, &pred(&fx, "u"));
        assert_eq!(forest.len(), 2);
        assert_eq!(fx.render(&forest[0]), "u(u)");
        assert_eq!(fx.render(&forest[1]), "u");
    }

    #[test]
    fn select_preserves_relative_order() {
        let mut fx = Fx::new();
        // Document order of u-leaves must survive.
        let t = fx.tree("a(b(u) u c(u))");
        let forest = select(&fx.store, &t, &pred(&fx, "u"));
        assert_eq!(forest.len(), 3);
    }

    #[test]
    fn select_nothing() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b)");
        assert!(select(&fx.store, &t, &pred(&fx, "zzz")).is_empty());
    }

    #[test]
    fn apply_isomorphic() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b @x)");
        // Map every object to a fresh 'm' object.
        let mut made = Vec::new();
        let mapped = apply(&t, |_| {
            let oid = fx
                .store
                .insert_named("N", &[("label", aqua_object::Value::str("m"))])
                .unwrap();
            made.push(oid);
            oid
        });
        assert_eq!(fx.render(&mapped), "m(m @x)");
        assert_eq!(made.len(), 2); // holes not mapped
        assert_eq!(mapped.len(), t.len());
    }

    #[test]
    fn sub_select_direct_equals_via_split() {
        let mut fx = Fx::new();
        let t = fx.tree("r(b(x(p) u(y) z) u s(b(u)))");
        let cp = compile(&fx, "b(!?* u !?*)");
        let direct = sub_select(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        let derived = sub_select_via_split(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(direct.len(), derived.len());
        for (a, b) in direct.iter().zip(&derived) {
            assert!(a.structural_eq(b));
        }
        assert_eq!(fx.render(&direct[0]), "b(u)");
    }

    #[test]
    fn sub_select_keeps_preexisting_holes() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(@q))");
        let cp = compile(&fx, "b(@q)");
        let rs = sub_select(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(rs.len(), 1);
        // The instance's own hole is part of the result…
        assert_eq!(fx.render(&rs[0]), "b(@q)");
    }

    #[test]
    fn all_anc_pairs_context_with_match() {
        let mut fx = Fx::new();
        let t = fx.tree("r(a(u) b)");
        let cp = compile(&fx, "u");
        let rs = all_anc(&fx.store, &t, &cp, &MatchConfig::default(), |ctx, m| {
            (fx.render(ctx), fx.render(m))
        })
        .unwrap();
        assert_eq!(rs, vec![("r(a(@a) b)".to_string(), "u".to_string())]);
    }

    #[test]
    fn all_desc_pairs_match_with_descendants() {
        let mut fx = Fx::new();
        let t = fx.tree("r(u(x y))");
        let cp = compile(&fx, "u");
        let rs = all_desc(&fx.store, &t, &cp, &MatchConfig::default(), |m, ds| {
            (
                fx.render(m),
                ds.iter().map(|d| fx.render(d)).collect::<Vec<_>>(),
            )
        })
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].0, "u(@1 @2)");
        assert_eq!(rs[0].1, vec!["x", "y"]);
    }

    #[test]
    fn printf_variable_arity_query() {
        // §5: sub_select(printf(?* LargeData ?* LargeData ?*))(T)
        let mut fx = Fx::new();
        let t = fx.tree("m(p(x L y L) p(L) q(L L))");
        let cp = compile(&fx, "p(?* L ?* L ?*)");
        let rs = sub_select(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(fx.render(&rs[0]), "p(x L y L)");
    }
}
