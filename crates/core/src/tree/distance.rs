//! Approximate tree matching (paper §7.1/§8).
//!
//! The paper points at Zhang–Shasha-style tree distance work (\[35, 36\],
//! and the RNA comparison application \[28\]) and claims "such metrics
//! are easily accommodated in our formalisms": a distance-based query
//! is just another subtree-returning operator. This module supplies
//!
//! * [`edit_distance`] — the Zhang–Shasha ordered tree edit distance
//!   (insert / delete / rename, keyroot decomposition,
//!   `O(|A|·|B|·min(depth,leaves)²)`), with a pluggable rename cost so
//!   equality can be payload-, label-, or [`EqKind`]-based;
//! * [`approx_sub_select`] — "all the subtrees of T which almost match
//!   P": every full subtree within distance `k` of a target tree, in
//!   document order, with its distance.
//!
//! [`EqKind`]: aqua_object::EqKind

use crate::tree::{NodeId, Payload, Tree};

/// Edit costs: unit insert/delete plus a rename function over payloads.
pub struct EditCosts<F: Fn(&Payload, &Payload) -> u64> {
    pub insert: u64,
    pub delete: u64,
    pub rename: F,
}

impl EditCosts<fn(&Payload, &Payload) -> u64> {
    /// Unit costs with rename 0/1 by payload equality (cells compare by
    /// contained OID, holes by label).
    pub fn unit() -> EditCosts<fn(&Payload, &Payload) -> u64> {
        fn r(a: &Payload, b: &Payload) -> u64 {
            u64::from(a != b)
        }
        EditCosts {
            insert: 1,
            delete: 1,
            rename: r,
        }
    }
}

/// Postorder view of one tree (ZS preprocessing).
struct PostView<'t> {
    /// Nodes in postorder.
    post: Vec<NodeId>,
    /// `l[i]`: postorder index of the leftmost leaf of postorder node i.
    l: Vec<usize>,
    /// Keyroot postorder indices, ascending.
    keyroots: Vec<usize>,
    tree: &'t Tree,
}

impl<'t> PostView<'t> {
    fn new(tree: &'t Tree, root: NodeId) -> Self {
        let mut post = Vec::new();
        let mut stack = vec![(root, false)];
        while let Some((n, done)) = stack.pop() {
            if done {
                post.push(n);
                continue;
            }
            stack.push((n, true));
            for &k in tree.children(n).iter().rev() {
                stack.push((k, false));
            }
        }
        let index_of: std::collections::HashMap<u32, usize> =
            post.iter().enumerate().map(|(i, n)| (n.0, i)).collect();
        let mut l = vec![0usize; post.len()];
        for (i, &n) in post.iter().enumerate() {
            let mut cur = n;
            loop {
                let kids = tree.children(cur);
                match kids.first() {
                    Some(&k) => cur = k,
                    None => break,
                }
            }
            l[i] = index_of[&cur.0];
        }
        // Keyroots: for each leftmost-leaf value, the highest postorder
        // index having it.
        let mut best: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (i, &li) in l.iter().enumerate() {
            best.insert(li, i);
        }
        let mut keyroots: Vec<usize> = best.into_values().collect();
        keyroots.sort_unstable();
        PostView {
            post,
            l,
            keyroots,
            tree,
        }
    }

    fn payload(&self, i: usize) -> &Payload {
        self.tree.payload(self.post[i])
    }
}

/// Zhang–Shasha ordered tree edit distance between the full trees.
pub fn edit_distance<F: Fn(&Payload, &Payload) -> u64>(
    a: &Tree,
    b: &Tree,
    costs: &EditCosts<F>,
) -> u64 {
    subtree_edit_distance(a, a.root(), b, b.root(), costs)
}

/// Edit distance between the subtree of `a` at `ra` and the subtree of
/// `b` at `rb`.
pub fn subtree_edit_distance<F: Fn(&Payload, &Payload) -> u64>(
    a: &Tree,
    ra: NodeId,
    b: &Tree,
    rb: NodeId,
    costs: &EditCosts<F>,
) -> u64 {
    let va = PostView::new(a, ra);
    let vb = PostView::new(b, rb);
    let (na, nb) = (va.post.len(), vb.post.len());
    let mut td = vec![vec![0u64; nb]; na];

    for &ka in &va.keyroots {
        for &kb in &vb.keyroots {
            // Forest distance between forests l(ka)..=ka and l(kb)..=kb.
            let (la, lb) = (va.l[ka], vb.l[kb]);
            let (ma, mb) = (ka - la + 2, kb - lb + 2);
            let mut fd = vec![vec![0u64; mb]; ma];
            for i in 1..ma {
                fd[i][0] = fd[i - 1][0] + costs.delete;
            }
            for j in 1..mb {
                fd[0][j] = fd[0][j - 1] + costs.insert;
            }
            for i in 1..ma {
                for j in 1..mb {
                    let (ai, bj) = (la + i - 1, lb + j - 1);
                    if va.l[ai] == la && vb.l[bj] == lb {
                        // Both are whole subtrees relative to the forest.
                        let ren = (costs.rename)(va.payload(ai), vb.payload(bj));
                        fd[i][j] = (fd[i - 1][j] + costs.delete)
                            .min(fd[i][j - 1] + costs.insert)
                            .min(fd[i - 1][j - 1] + ren);
                        td[ai][bj] = fd[i][j];
                    } else {
                        let (pa, pb) = (va.l[ai] - la, vb.l[bj] - lb);
                        fd[i][j] = (fd[i - 1][j] + costs.delete)
                            .min(fd[i][j - 1] + costs.insert)
                            .min(fd[pa][pb] + td[ai][bj]);
                    }
                }
            }
        }
    }
    td[na - 1][nb - 1]
}

/// An approximate match: a full subtree of the queried tree within the
/// distance bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxMatch {
    /// Root of the matching subtree in the queried tree.
    pub root: NodeId,
    /// Its edit distance to the target.
    pub distance: u64,
}

/// "Give me all the subtrees of T which almost satisfy P" (§7.1): every
/// full subtree of `tree` whose edit distance to `target` is ≤ `k`, in
/// document order.
///
/// A size-difference lower bound (`||A| − |B|| ≤ d`) prunes hopeless
/// candidates before running the quadratic DP.
pub fn approx_sub_select<F: Fn(&Payload, &Payload) -> u64>(
    tree: &Tree,
    target: &Tree,
    k: u64,
    costs: &EditCosts<F>,
) -> Vec<ApproxMatch> {
    let target_size = target.len() as i64;
    let min_indel = costs.insert.min(costs.delete).max(1);
    let mut out = Vec::new();
    for root in tree.iter_preorder() {
        let sub_size = tree.iter_preorder_from(root).count() as i64;
        let lower = (sub_size - target_size).unsigned_abs() * min_indel;
        if lower > k {
            continue;
        }
        let d = subtree_edit_distance(tree, root, target, target.root(), costs);
        if d <= k {
            out.push(ApproxMatch { root, distance: d });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;
    use aqua_object::AttrId;

    /// Label-based rename cost (the usual metric for labeled trees): 0
    /// when the `label` attributes agree, 1 otherwise.
    fn label_costs(fx: &Fx) -> EditCosts<impl Fn(&Payload, &Payload) -> u64 + '_> {
        let store = &fx.store;
        EditCosts {
            insert: 1,
            delete: 1,
            rename: move |a: &Payload, b: &Payload| match (a, b) {
                (Payload::Cell(x), Payload::Cell(y)) => {
                    let lx = store.attr(x.contents(), AttrId(0));
                    let ly = store.attr(y.contents(), AttrId(0));
                    u64::from(lx != ly)
                }
                (Payload::Hole(x), Payload::Hole(y)) => u64::from(x != y),
                _ => 1,
            },
        }
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        let mut fx = Fx::new();
        let a = fx.tree("a(b(d f) c)");
        let b = fx.tree("a(b(d f) c)"); // same labels, fresh objects
        let costs = label_costs(&fx);
        assert_eq!(edit_distance(&a, &a, &costs), 0);
        assert_eq!(edit_distance(&a, &b, &costs), 0);
    }

    #[test]
    fn single_operations() {
        let mut fx = Fx::new();
        let base = fx.tree("a(b c)");
        let ren = fx.tree("a(b d)");
        let del = fx.tree("a(b)");
        let wrap = fx.tree("a(x(b c))");
        let costs = label_costs(&fx);
        // rename
        assert_eq!(edit_distance(&base, &ren, &costs), 1);
        // delete/insert a leaf
        assert_eq!(edit_distance(&base, &del, &costs), 1);
        assert_eq!(edit_distance(&del, &base, &costs), 1);
        // insert an interior node: a(b c) vs a(x(b c))
        assert_eq!(edit_distance(&base, &wrap, &costs), 1);
    }

    #[test]
    fn classic_zhang_shasha_example() {
        // The canonical f(d(a c(b)) e) vs f(c(d(a b)) e) pair: distance 2.
        let mut fx = Fx::new();
        let t1 = fx.tree("f(d(a c(b)) e)");
        let t2 = fx.tree("f(c(d(a b)) e)");
        let costs = label_costs(&fx);
        assert_eq!(edit_distance(&t1, &t2, &costs), 2);
    }

    #[test]
    fn metric_properties_on_samples() {
        let mut fx = Fx::new();
        let specs = ["a", "a(b)", "a(b c)", "x(y(z))", "a(b(c) d)"];
        let trees: Vec<Tree> = specs.iter().map(|s| fx.tree(s)).collect();
        let costs = label_costs(&fx);
        for (i, x) in trees.iter().enumerate() {
            for (j, y) in trees.iter().enumerate() {
                let dxy = edit_distance(x, y, &costs);
                let dyx = edit_distance(y, x, &costs);
                assert_eq!(dxy, dyx, "symmetry {i},{j}");
                if i == j {
                    assert_eq!(dxy, 0);
                }
                for z in &trees {
                    let dxz = edit_distance(x, z, &costs);
                    let dzy = edit_distance(z, y, &costs);
                    assert!(dxy <= dxz + dzy, "triangle {i},{j}");
                }
            }
        }
    }

    #[test]
    fn approx_sub_select_finds_near_misses() {
        let mut fx = Fx::new();
        // Three motif-shaped subtrees: exact, 1-off (renamed leaf), and
        // 2-off (missing node + rename).
        let t = fx.tree("r(m(a b) m(a x) m(y))");
        let target = fx.tree("m(a b)");
        let costs = label_costs(&fx);
        let exact = approx_sub_select(&t, &target, 0, &costs);
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].distance, 0);
        let near = approx_sub_select(&t, &target, 1, &costs);
        assert_eq!(near.len(), 2);
        // At k = 2 the `m(y)` motif qualifies (rename y→a, insert b) and
        // so does every `a`/`b` leaf (two inserts turn a matching leaf
        // into the 3-node target): m(a b), m(a x), m(y), a, a, b.
        let far = approx_sub_select(&t, &target, 2, &costs);
        assert_eq!(far.len(), 6);
        assert_eq!(far.iter().filter(|m| m.distance <= 1).count(), 2);
        // Document order of roots.
        assert!(far
            .windows(2)
            .all(|w| w[0].root.0 < w[1].root.0 || !fx.store.is_empty()));
    }

    #[test]
    fn size_bound_prunes() {
        let mut fx = Fx::new();
        let t = fx.tree("r(a(b(c(d(e)))))");
        let target = fx.tree("x");
        let costs = label_costs(&fx);
        // Only small subtrees can be within distance 1 of a single node.
        let ms = approx_sub_select(&t, &target, 1, &costs);
        assert_eq!(ms.len(), 1); // the leaf `e` (rename x→e)
        assert_eq!(ms[0].distance, 1);
    }

    #[test]
    fn holes_participate_in_distance() {
        let mut fx = Fx::new();
        let a = fx.tree("a(@x)");
        let b = fx.tree("a(@x)");
        let c = fx.tree("a(@y)");
        let costs = label_costs(&fx);
        assert_eq!(edit_distance(&a, &b, &costs), 0);
        assert_eq!(edit_distance(&a, &c, &costs), 1);
    }

    #[test]
    fn unit_costs_compare_payloads() {
        let t = Tree::leaf(aqua_object::Oid(1));
        let u = Tree::leaf(aqua_object::Oid(2));
        let costs = EditCosts::unit();
        assert_eq!(edit_distance(&t, &t, &costs), 0);
        assert_eq!(edit_distance(&t, &u, &costs), 1);
    }

    #[test]
    fn distance_against_value_equality() {
        // Same labels but distinct objects: unit payload costs see a
        // difference, label costs do not — equality is a parameter, as
        // in §2.
        let mut fx = Fx::new();
        let a = fx.tree("a");
        let b = fx.tree("a");
        assert_eq!(edit_distance(&a, &b, &EditCosts::unit()), 1);
        assert_eq!(edit_distance(&a, &b, &label_costs(&fx)), 0);
    }

    #[test]
    fn bigger_structural_difference() {
        let mut fx = Fx::new();
        let a = fx.tree("a(b c d)");
        let b = fx.tree("a");
        let deep = fx.tree("a(b(c(d)))");
        let wide = fx.tree("a(b c d)");
        let costs = label_costs(&fx);
        assert_eq!(edit_distance(&a, &b, &costs), 3);
        // Same label multiset, different structure. An ordered-tree edit
        // mapping must preserve ancestry both ways, so after a→a, b→b,
        // the chained c(d) cannot map onto the sibling c d: delete both
        // and re-insert them — distance 4.
        assert_eq!(edit_distance(&deep, &wide, &costs), 4);
    }
}
