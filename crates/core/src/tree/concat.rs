//! Tree concatenation at labeled NULLs (paper §3.3, §3.5).
//!
//! A concatenation point appearing in a tree instance is a labeled NULL
//! leaf ([`Payload::Hole`]); the *only* operation that observes it is
//! concatenation, which replaces each hole carrying the right label with
//! a copy of the other operand. This is what lets [`split`] break a tree
//! apart and put it back together exactly:
//! `x ∘_α y ∘_{α_1} t_1 ⋯ ∘_{α_n} t_n = T`.
//!
//! [`split`]: crate::tree::split::split

use aqua_pattern::CcLabel;

use crate::tree::{NodeId, Payload, Tree, TreeBuilder};

/// Deep-copy the subtree of `t` rooted at `node` into a fresh tree.
pub fn subtree(t: &Tree, node: NodeId) -> Tree {
    let mut b = TreeBuilder::new();
    let root = copy_into(t, node, &mut b, &mut |_, payload, kids, b| {
        Some(b.payload_node(payload.clone(), kids))
    })
    .expect("plain copy never drops the root");
    b.finish(root).expect("copy of a valid tree is valid")
}

/// `t ∘_label other`: replace every hole in `t` labeled `label` with a
/// copy of `other`. If `t` contains no such hole the result is a copy of
/// `t` (paper §3.3). Concatenating at a hole-rooted tree substitutes the
/// whole tree.
pub fn concat_at(t: &Tree, label: &CcLabel, other: &Tree) -> Tree {
    let mut b = TreeBuilder::new();
    let root = copy_into(
        t,
        t.root(),
        &mut b,
        &mut |_, payload, kids, b| match payload {
            Payload::Hole(l) if l == label => {
                debug_assert!(kids.is_empty(), "holes are leaves");
                let sub = copy_into(other, other.root(), b, &mut |_, p, k, b| {
                    Some(b.payload_node(p.clone(), k))
                })
                .expect("plain copy never drops the root");
                Some(sub)
            }
            _ => Some(b.payload_node(payload.clone(), kids)),
        },
    )
    .expect("concat keeps the root");
    b.finish(root).expect("concat of valid trees is valid")
}

/// `t ∘_label []`: remove the holes carrying `label` (concatenate NULL
/// at that point). Returns `None` when the root itself is such a hole.
pub fn concat_nil(t: &Tree, label: &CcLabel) -> Option<Tree> {
    let mut b = TreeBuilder::new();
    let root = copy_into(
        t,
        t.root(),
        &mut b,
        &mut |_, payload, kids, b| match payload {
            Payload::Hole(l) if l == label => None,
            _ => Some(b.payload_node(payload.clone(), kids)),
        },
    )?;
    Some(b.finish(root).expect("concat_nil of a valid tree is valid"))
}

/// `t ∘_{l} []` for every hole label: remove all labeled NULLs ("the
/// last iteration concatenates NULL", §3.3 — and `sub_select`'s
/// `b ∘_{α_1…α_n} []`, §4). Returns `None` when the root itself is a
/// hole (the tree reduces to nothing).
pub fn nil_reduce(t: &Tree) -> Option<Tree> {
    let mut b = TreeBuilder::new();
    let root = copy_into(
        t,
        t.root(),
        &mut b,
        &mut |_, payload, kids, b| match payload {
            Payload::Hole(_) => None,
            _ => Some(b.payload_node(payload.clone(), kids)),
        },
    )?;
    Some(b.finish(root).expect("nil-reduce of a valid tree is valid"))
}

/// Bottom-up copy driver: children are copied first, then `f` is called
/// with `(source node, payload, copied children)` and may emit a node,
/// splice in a replacement, or drop the node (`None` drops its whole
/// subtree-in-progress; dropped children are pruned from the arena by
/// never being referenced… so we must build children only after f
/// decides — see below).
///
/// To keep the arena free of orphans (the builder rejects unreachable
/// nodes), holes are tested *before* descending.
fn copy_into(
    t: &Tree,
    node: NodeId,
    b: &mut TreeBuilder,
    f: &mut impl FnMut(NodeId, &Payload, Vec<NodeId>, &mut TreeBuilder) -> Option<NodeId>,
) -> Option<NodeId> {
    // Decide on drop/replace for leaves before materializing children.
    let payload = t.payload(node);
    if matches!(payload, Payload::Hole(_)) {
        return f(node, payload, Vec::new(), b);
    }
    let mut kids = Vec::with_capacity(t.children(node).len());
    for &k in t.children(node) {
        if let Some(copied) = copy_into(t, k, b, f) {
            kids.push(copied);
        }
    }
    f(node, payload, kids, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;

    #[test]
    fn fig1_concatenation_points() {
        // Figure 1: a(@1 @2) ∘_@1 b(d(f g) e) ∘_@2 c == a(b(d(f g) e) c)
        let mut fx = Fx::new();
        let base = fx.tree("a(@1 @2)");
        let b = fx.tree("b(d(f g) e)");
        let c = fx.tree("c");
        let step1 = concat_at(&base, &CcLabel::new("1"), &b);
        let step2 = concat_at(&step1, &CcLabel::new("2"), &c);
        assert_eq!(fx.render(&step2), "a(b(d(f g) e) c)");
        assert!(step2.hole_labels().is_empty());
    }

    #[test]
    fn concat_without_matching_label_is_identity() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b)");
        let other = fx.tree("c");
        let r = concat_at(&t, &CcLabel::new("zzz"), &other);
        assert!(r.structural_eq(&t));
    }

    #[test]
    fn concat_replaces_all_occurrences() {
        let mut fx = Fx::new();
        let t = fx.tree("a(@x b @x)");
        let sub = fx.tree("c(d)");
        let r = concat_at(&t, &CcLabel::new("x"), &sub);
        assert_eq!(fx.render(&r), "a(c(d) b c(d))");
    }

    #[test]
    fn concat_at_hole_root() {
        let mut fx = Fx::new();
        let t = Tree::hole("m");
        let sub = fx.tree("a(b)");
        let r = concat_at(&t, &CcLabel::new("m"), &sub);
        assert!(r.structural_eq(&sub));
    }

    #[test]
    fn nil_reduce_removes_holes() {
        let mut fx = Fx::new();
        let t = fx.tree("a(@1 b(@2) c)");
        let r = nil_reduce(&t).unwrap();
        assert_eq!(fx.render(&r), "a(b c)");
        assert!(nil_reduce(&Tree::hole("x")).is_none());
    }

    #[test]
    fn subtree_copies_deeply() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b(d f) c)");
        let b_node = t.children(t.root())[0];
        let sub = subtree(&t, b_node);
        assert_eq!(fx.render(&sub), "b(d f)");
        assert_eq!(sub.len(), 3);
        // Cells are shared (same OIDs), structure is fresh.
        assert_eq!(sub.oid(sub.root()), t.oid(b_node));
    }
}
