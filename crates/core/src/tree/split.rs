//! The `split` operator (paper §4) — the primitive tree query operator.
//!
//! For each match of a tree pattern `tp` in `T`, `split(tp, f)(T)`
//! produces three pieces and applies `f` to them:
//!
//! * **context** `x` — all ancestors of the match and their descendants
//!   (everything except the match's subtree), with a labeled NULL `α`
//!   where the match's subtree was;
//! * **match** `y` — the matched nodes, with labeled NULLs `α_1 … α_n`
//!   at the cut points (pruned subtrees and frontier cuts);
//! * **descendants** `z` — the list `[t_1, …, t_n]` of subtrees cut from
//!   below the match, in `α_i` order.
//!
//! The decomposition is exact: `x ∘_α y ∘_{α_1} t_1 ⋯ ∘_{α_n} t_n = T`
//! ([`SplitPieces::reassemble`]; property-tested in the integration
//! suite). This is what makes `split` strong enough to express every
//! other matching operator *and* to support update-style queries that
//! need the match context (the parse-tree rewrite of §5).

use aqua_guard::ExecGuard;
use aqua_object::ObjectStore;
use aqua_pattern::tree_ast::CompiledTreePattern;
use aqua_pattern::tree_match::{MatchConfig, TreeMatch, TreeMatcher};
use aqua_pattern::CcLabel;

use crate::error::{AlgebraError, Result};
use crate::tree::concat::{concat_at, subtree};
use crate::tree::{NodeId, Tree, TreeBuilder};
use std::collections::{HashMap, HashSet};

/// The three pieces `split` cuts for one match, plus the labels used.
#[derive(Debug, Clone)]
pub struct SplitPieces {
    /// `x`: the tree minus the match's subtree, with `alpha` where the
    /// subtree was. A bare hole when the match is at the root.
    pub context: Tree,
    /// `y`: the match, with `cut_labels[i]` holes at the cut points.
    pub matched: Tree,
    /// `z`: the cut subtrees, in cut order (document order).
    pub descendants: Vec<Tree>,
    /// The label joining `context` to `matched`.
    pub alpha: CcLabel,
    /// The labels joining `matched` to each of `descendants`.
    pub cut_labels: Vec<CcLabel>,
    /// The raw match (node ids are into the *original* tree).
    pub raw: TreeMatch,
}

impl SplitPieces {
    /// `x ∘_α y ∘_{α_1} t_1 ⋯ ∘_{α_n} t_n` — reassemble the original
    /// tree (or a rewritten one, if a piece was replaced first).
    pub fn reassemble(&self) -> Tree {
        self.reassemble_with(&self.matched)
    }

    /// Reassemble around a *replacement* for the match piece — the §5
    /// parse-tree-rewrite idiom: `f(x, y, z) = x ∘_α y' ∘_{α_i} z_i`.
    pub fn reassemble_with(&self, replacement: &Tree) -> Tree {
        let mut acc = concat_at(&self.context, &self.alpha, replacement);
        for (label, sub) in self.cut_labels.iter().zip(&self.descendants) {
            acc = concat_at(&acc, label, sub);
        }
        acc
    }

    /// Structural sanity of the decomposition: exactly one descendant
    /// per cut label, exactly one `alpha` hole in the context, and
    /// exactly one hole per cut label in the match piece. Certificate
    /// emission gates on this — a malformed decomposition would
    /// otherwise reassemble into garbage and be blamed on corruption.
    pub fn well_formed(&self) -> bool {
        let count =
            |t: &Tree, label: &CcLabel| t.hole_labels().iter().filter(|l| l.0 == label.0).count();
        self.descendants.len() == self.cut_labels.len()
            && count(&self.context, &self.alpha) == 1
            && self
                .cut_labels
                .iter()
                .all(|label| count(&self.matched, label) == 1)
    }
}

/// A bounded `split` run: the pieces cut, plus the truncation report
/// forwarded from the matcher. Truncation is observable, never silent.
#[derive(Debug, Clone, Default)]
pub struct SplitOutcome {
    /// Pieces, in document order of their match roots.
    pub pieces: Vec<SplitPieces>,
    /// `true` if any [`MatchConfig`] limit clipped match enumeration.
    pub truncated: bool,
    /// Child-list parse enumerations clipped by [`MatchConfig::parse_limit`].
    pub clipped_parses: usize,
    /// Roots whose instance list hit [`MatchConfig::per_root_limit`].
    pub clipped_roots: usize,
    /// `true` if the scan stopped early at [`MatchConfig::max_matches`].
    pub hit_max_matches: bool,
}

/// `split(tp, f)(T)`: apply `f` to the pieces of every match, returning
/// the set (here: document-ordered `Vec`) of results.
pub fn split<R>(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    f: impl FnMut(&SplitPieces) -> R,
) -> Result<Vec<R>> {
    Ok(split_pieces(store, tree, pattern, cfg)?
        .iter()
        .map(f)
        .collect())
}

/// The pieces for every match of `pattern` in `tree` (the uncurried form
/// of [`split`], convenient when the caller *is* Rust code).
pub fn split_pieces(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
) -> Result<Vec<SplitPieces>> {
    Ok(split_pieces_guarded(store, tree, pattern, cfg, None)?.pieces)
}

/// [`split_pieces`] under an optional execution guard. Budget
/// exhaustion, deadline, and cancellation surface as
/// [`AlgebraError::Guard`] with partial-progress counters; matcher
/// truncation is reported in the [`SplitOutcome`].
pub fn split_pieces_guarded(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    guard: Option<&ExecGuard>,
) -> Result<SplitOutcome> {
    let mut matcher = TreeMatcher::new(pattern, tree, store);
    if let Some(g) = guard {
        matcher = matcher.with_guard(g);
    }
    let outcome = matcher.find_matches_outcome(cfg)?;
    pieces_outcome(tree, outcome, guard)
}

/// [`split_pieces`] restricted to candidate match roots — the executor
/// side of the §4 rewrite for `split` itself: an index proposes the
/// roots satisfying the pattern's root predicate, and matching/cutting
/// happens only there. With all nodes as candidates this equals
/// [`split_pieces`].
pub fn split_pieces_from(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    candidates: &[u32],
) -> Result<Vec<SplitPieces>> {
    Ok(split_pieces_from_guarded(store, tree, pattern, cfg, candidates, None)?.pieces)
}

/// [`split_pieces_from`] under an optional execution guard.
pub fn split_pieces_from_guarded(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    candidates: &[u32],
    guard: Option<&ExecGuard>,
) -> Result<SplitOutcome> {
    let mut matcher = TreeMatcher::new(pattern, tree, store);
    if let Some(g) = guard {
        matcher = matcher.with_guard(g);
    }
    let outcome = matcher.find_matches_from_outcome(candidates, cfg)?;
    pieces_outcome(tree, outcome, guard)
}

/// Cut pieces for every enumerated match, forwarding the truncation
/// report. Each piece cut counts toward the guard's result cap.
fn pieces_outcome(
    tree: &Tree,
    outcome: aqua_pattern::tree_match::MatchOutcome,
    guard: Option<&ExecGuard>,
) -> Result<SplitOutcome> {
    let mut pieces = Vec::with_capacity(outcome.matches.len());
    let obs = guard.and_then(ExecGuard::metrics);
    for m in outcome.matches {
        aqua_guard::steps_n(guard, m.nodes.len() as u64 + 1)?;
        if let Some(mx) = obs {
            mx.split_pieces.inc();
            mx.split_cuts.record(m.cuts.len() as u64);
        }
        pieces.push(pieces_for_match(tree, m)?);
        aqua_guard::result_emitted(guard)?;
    }
    Ok(SplitOutcome {
        pieces,
        truncated: outcome.truncated,
        clipped_parses: outcome.clipped_parses,
        clipped_roots: outcome.clipped_roots,
        hit_max_matches: outcome.hit_max_matches,
    })
}

/// Cut one match out of `tree`.
pub fn pieces_for_match(tree: &Tree, m: TreeMatch) -> Result<SplitPieces> {
    let existing: HashSet<String> = tree.hole_labels().iter().map(|l| l.0.clone()).collect();
    let fresh = |base: String| -> CcLabel {
        let mut name = base;
        while existing.contains(&name) {
            name.push('\'');
        }
        CcLabel::new(name)
    };
    let alpha = fresh("a".to_string());
    let cut_labels: Vec<CcLabel> = (1..=m.cuts.len()).map(|i| fresh(i.to_string())).collect();

    let match_root = NodeId(m.root);
    let context = build_context(tree, match_root, &alpha)?;
    let matched = build_match(tree, &m, &cut_labels)?;
    let descendants = m
        .cuts
        .iter()
        .map(|c| subtree(tree, NodeId(c.root)))
        .collect();
    Ok(SplitPieces {
        context,
        matched,
        descendants,
        alpha,
        cut_labels,
        raw: m,
    })
}

/// Copy `tree` with the subtree at `excise` replaced by a hole.
fn build_context(tree: &Tree, excise: NodeId, alpha: &CcLabel) -> Result<Tree> {
    if excise == tree.root() {
        return Ok(Tree::hole(alpha.clone()));
    }
    let mut b = TreeBuilder::new();
    let root = copy_except(tree, tree.root(), excise, alpha, &mut b);
    b.finish(root)
}

fn copy_except(
    tree: &Tree,
    node: NodeId,
    excise: NodeId,
    alpha: &CcLabel,
    b: &mut TreeBuilder,
) -> NodeId {
    if node == excise {
        return b.hole_node(alpha.clone(), Vec::new());
    }
    let kids = tree
        .children(node)
        .iter()
        .map(|&k| copy_except(tree, k, excise, alpha, b))
        .collect();
    b.payload_node(tree.payload(node).clone(), kids)
}

/// Build the match piece: matched nodes keep their payloads; cut points
/// become holes labeled in cut order.
fn build_match(tree: &Tree, m: &TreeMatch, cut_labels: &[CcLabel]) -> Result<Tree> {
    let in_match: HashSet<u32> = m.nodes.iter().copied().collect();
    let cut_idx: HashMap<(u32, u32), usize> = m
        .cuts
        .iter()
        .enumerate()
        .map(|(i, c)| ((c.parent, c.child_idx), i))
        .collect();
    let mut b = TreeBuilder::new();
    let root = build_match_node(
        tree,
        NodeId(m.root),
        &in_match,
        &cut_idx,
        cut_labels,
        &mut b,
    )?;
    b.finish(root)
}

fn build_match_node(
    tree: &Tree,
    node: NodeId,
    in_match: &HashSet<u32>,
    cut_idx: &HashMap<(u32, u32), usize>,
    cut_labels: &[CcLabel],
    b: &mut TreeBuilder,
) -> Result<NodeId> {
    let mut kids = Vec::new();
    for (i, &k) in tree.children(node).iter().enumerate() {
        if let Some(&ci) = cut_idx.get(&(node.0, i as u32)) {
            kids.push(b.hole_node(cut_labels[ci].clone(), Vec::new()));
        } else if in_match.contains(&k.0) {
            kids.push(build_match_node(tree, k, in_match, cut_idx, cut_labels, b)?);
        } else {
            // A child that is neither kept nor cut cannot exist under a
            // well-formed match: the child regex consumes the full child
            // sequence, and pattern leaves cut all children. Surface a
            // malformed match as an error rather than aborting.
            return Err(AlgebraError::Malformed {
                msg: format!("child {k:?} of matched node {node:?} neither kept nor cut"),
            });
        }
    }
    Ok(b.payload_node(tree.payload(node).clone(), kids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;
    use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
    use aqua_pattern::PredExpr;

    fn compile(fx: &Fx, text: &str, env: &PredEnv) -> CompiledTreePattern {
        parse_tree_pattern(text, env)
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap()
    }

    #[test]
    fn fig4_three_pieces() {
        let mut fx = Fx::new();
        // Stand-in for Figure 3/4: r is the tree root; b = Brazilian
        // parent with children x (pruned), u = American child (whose
        // child y is a frontier cut), z (pruned).
        let t = fx.tree("r(b(x(p) u(y) z) s)");
        let cp = compile(&fx, "b(!?* u !?*)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(pieces.len(), 1);
        let p = &pieces[0];
        assert_eq!(fx.render(&p.context), "r(@a s)");
        assert_eq!(fx.render(&p.matched), "b(@1 u(@2) @3)");
        let descs: Vec<String> = p.descendants.iter().map(|d| fx.render(d)).collect();
        assert_eq!(descs, vec!["x(p)", "y", "z"]);
    }

    #[test]
    fn split_roundtrip_reassembles_original() {
        let mut fx = Fx::new();
        let t = fx.tree("r(b(x(p) u(y) z) s(u))");
        let cp = compile(&fx, "u", &fx.env());
        for p in split_pieces(&fx.store, &t, &cp, &MatchConfig::default()).unwrap() {
            assert!(p.reassemble().structural_eq(&t), "roundtrip failed");
        }
    }

    #[test]
    fn pieces_are_well_formed_and_damage_is_detected() {
        let mut fx = Fx::new();
        let t = fx.tree("r(b(x(p) u(y) z) s)");
        let cp = compile(&fx, "b(!?* u !?*)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        let p = &pieces[0];
        assert!(p.well_formed());
        let mut missing_desc = p.clone();
        missing_desc.descendants.pop();
        assert!(!missing_desc.well_formed());
        let mut wrong_alpha = p.clone();
        wrong_alpha.alpha = CcLabel::new("nope".to_string());
        assert!(!wrong_alpha.well_formed());
    }

    #[test]
    fn split_at_root_gives_hole_context() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b c)");
        let cp = compile(&fx, "a(b c)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(fx.render(&pieces[0].context), "@a");
        assert!(pieces[0].descendants.is_empty());
        assert!(pieces[0].reassemble().structural_eq(&t));
    }

    #[test]
    fn one_result_per_match() {
        let mut fx = Fx::new();
        let t = fx.tree("a(u b(u) u)");
        let cp = compile(&fx, "u", &fx.env());
        let names = split(&fx.store, &t, &cp, &MatchConfig::default(), |p| {
            fx.render(&p.matched)
        })
        .unwrap();
        assert_eq!(names, vec!["u", "u", "u"]);
    }

    #[test]
    fn labels_avoid_collisions_with_existing_holes() {
        let mut fx = Fx::new();
        // The tree already contains holes named @a and @1.
        let t = fx.tree("r(b(x) @a @1)");
        let cp = compile(&fx, "b(!?*)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(pieces.len(), 1);
        let p = &pieces[0];
        assert_ne!(p.alpha.0, "a");
        assert_ne!(p.cut_labels[0].0, "1");
        assert!(p.reassemble().structural_eq(&t));
    }

    #[test]
    fn reassemble_with_replacement_rewrites() {
        // The §5 idiom: replace the match piece and reassemble.
        let mut fx = Fx::new();
        let t = fx.tree("r(b(x) s)");
        let cp = compile(&fx, "b(!?)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        let p = &pieces[0];
        // Replace b(@1) by n(@1): keep the cut subtree attached.
        let n_oid = fx
            .store
            .insert_named("N", &[("label", aqua_object::Value::str("n"))])
            .unwrap();
        let mut bld = TreeBuilder::new();
        let h = bld.hole_node(p.cut_labels[0].clone(), vec![]);
        let nr = bld.node(n_oid, vec![h]);
        let replacement = bld.finish(nr).unwrap();
        let rewritten = p.reassemble_with(&replacement);
        assert_eq!(fx.render(&rewritten), "r(n(x) s)");
    }

    #[test]
    fn pattern_with_pred_expr_builder() {
        // Builder-based pattern (no parser): same result.
        let mut fx = Fx::new();
        let t = fx.tree("a(u)");
        let tp = aqua_pattern::TreePat::pred(PredExpr::eq("label", "u"));
        let cp = aqua_pattern::TreePattern::new(tp)
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(fx.render(&pieces[0].matched), "u");
    }
}
