//! The `split` operator (paper §4) — the primitive tree query operator.
//!
//! For each match of a tree pattern `tp` in `T`, `split(tp, f)(T)`
//! produces three pieces and applies `f` to them:
//!
//! * **context** `x` — all ancestors of the match and their descendants
//!   (everything except the match's subtree), with a labeled NULL `α`
//!   where the match's subtree was;
//! * **match** `y` — the matched nodes, with labeled NULLs `α_1 … α_n`
//!   at the cut points (pruned subtrees and frontier cuts);
//! * **descendants** `z` — the list `[t_1, …, t_n]` of subtrees cut from
//!   below the match, in `α_i` order.
//!
//! The decomposition is exact: `x ∘_α y ∘_{α_1} t_1 ⋯ ∘_{α_n} t_n = T`
//! ([`SplitPieces::reassemble`]; property-tested in the integration
//! suite). This is what makes `split` strong enough to express every
//! other matching operator *and* to support update-style queries that
//! need the match context (the parse-tree rewrite of §5).

use aqua_object::ObjectStore;
use aqua_pattern::tree_ast::CompiledTreePattern;
use aqua_pattern::tree_match::{MatchConfig, TreeMatch, TreeMatcher};
use aqua_pattern::CcLabel;

use crate::tree::concat::{concat_at, subtree};
use crate::tree::{NodeId, Tree, TreeBuilder};
use std::collections::{HashMap, HashSet};

/// The three pieces `split` cuts for one match, plus the labels used.
#[derive(Debug, Clone)]
pub struct SplitPieces {
    /// `x`: the tree minus the match's subtree, with `alpha` where the
    /// subtree was. A bare hole when the match is at the root.
    pub context: Tree,
    /// `y`: the match, with `cut_labels[i]` holes at the cut points.
    pub matched: Tree,
    /// `z`: the cut subtrees, in cut order (document order).
    pub descendants: Vec<Tree>,
    /// The label joining `context` to `matched`.
    pub alpha: CcLabel,
    /// The labels joining `matched` to each of `descendants`.
    pub cut_labels: Vec<CcLabel>,
    /// The raw match (node ids are into the *original* tree).
    pub raw: TreeMatch,
}

impl SplitPieces {
    /// `x ∘_α y ∘_{α_1} t_1 ⋯ ∘_{α_n} t_n` — reassemble the original
    /// tree (or a rewritten one, if a piece was replaced first).
    pub fn reassemble(&self) -> Tree {
        self.reassemble_with(&self.matched)
    }

    /// Reassemble around a *replacement* for the match piece — the §5
    /// parse-tree-rewrite idiom: `f(x, y, z) = x ∘_α y' ∘_{α_i} z_i`.
    pub fn reassemble_with(&self, replacement: &Tree) -> Tree {
        let mut acc = concat_at(&self.context, &self.alpha, replacement);
        for (label, sub) in self.cut_labels.iter().zip(&self.descendants) {
            acc = concat_at(&acc, label, sub);
        }
        acc
    }
}

/// `split(tp, f)(T)`: apply `f` to the pieces of every match, returning
/// the set (here: document-ordered `Vec`) of results.
pub fn split<R>(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    f: impl FnMut(&SplitPieces) -> R,
) -> Vec<R> {
    split_pieces(store, tree, pattern, cfg)
        .iter()
        .map(f)
        .collect()
}

/// The pieces for every match of `pattern` in `tree` (the uncurried form
/// of [`split`], convenient when the caller *is* Rust code).
pub fn split_pieces(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
) -> Vec<SplitPieces> {
    let mut matcher = TreeMatcher::new(pattern, tree, store);
    let matches = matcher.find_matches(cfg);
    matches
        .into_iter()
        .map(|m| pieces_for_match(tree, m))
        .collect()
}

/// [`split_pieces`] restricted to candidate match roots — the executor
/// side of the §4 rewrite for `split` itself: an index proposes the
/// roots satisfying the pattern's root predicate, and matching/cutting
/// happens only there. With all nodes as candidates this equals
/// [`split_pieces`].
pub fn split_pieces_from(
    store: &ObjectStore,
    tree: &Tree,
    pattern: &CompiledTreePattern,
    cfg: &MatchConfig,
    candidates: &[u32],
) -> Vec<SplitPieces> {
    let mut matcher = TreeMatcher::new(pattern, tree, store);
    matcher
        .find_matches_from(candidates, cfg)
        .into_iter()
        .map(|m| pieces_for_match(tree, m))
        .collect()
}

/// Cut one match out of `tree`.
pub fn pieces_for_match(tree: &Tree, m: TreeMatch) -> SplitPieces {
    let existing: HashSet<String> = tree.hole_labels().iter().map(|l| l.0.clone()).collect();
    let fresh = |base: String| -> CcLabel {
        let mut name = base;
        while existing.contains(&name) {
            name.push('\'');
        }
        CcLabel::new(name)
    };
    let alpha = fresh("a".to_string());
    let cut_labels: Vec<CcLabel> = (1..=m.cuts.len()).map(|i| fresh(i.to_string())).collect();

    let match_root = NodeId(m.root);
    let context = build_context(tree, match_root, &alpha);
    let matched = build_match(tree, &m, &cut_labels);
    let descendants = m
        .cuts
        .iter()
        .map(|c| subtree(tree, NodeId(c.root)))
        .collect();
    SplitPieces {
        context,
        matched,
        descendants,
        alpha,
        cut_labels,
        raw: m,
    }
}

/// Copy `tree` with the subtree at `excise` replaced by a hole.
fn build_context(tree: &Tree, excise: NodeId, alpha: &CcLabel) -> Tree {
    if excise == tree.root() {
        return Tree::hole(alpha.clone());
    }
    let mut b = TreeBuilder::new();
    let root = copy_except(tree, tree.root(), excise, alpha, &mut b);
    b.finish(root).expect("context of a valid tree is valid")
}

fn copy_except(
    tree: &Tree,
    node: NodeId,
    excise: NodeId,
    alpha: &CcLabel,
    b: &mut TreeBuilder,
) -> NodeId {
    if node == excise {
        return b.hole_node(alpha.clone(), Vec::new());
    }
    let kids = tree
        .children(node)
        .iter()
        .map(|&k| copy_except(tree, k, excise, alpha, b))
        .collect();
    b.payload_node(tree.payload(node).clone(), kids)
}

/// Build the match piece: matched nodes keep their payloads; cut points
/// become holes labeled in cut order.
fn build_match(tree: &Tree, m: &TreeMatch, cut_labels: &[CcLabel]) -> Tree {
    let in_match: HashSet<u32> = m.nodes.iter().copied().collect();
    let cut_idx: HashMap<(u32, u32), usize> = m
        .cuts
        .iter()
        .enumerate()
        .map(|(i, c)| ((c.parent, c.child_idx), i))
        .collect();
    let mut b = TreeBuilder::new();
    let root = build_match_node(
        tree,
        NodeId(m.root),
        &in_match,
        &cut_idx,
        cut_labels,
        &mut b,
    );
    b.finish(root)
        .expect("match piece of a valid tree is valid")
}

fn build_match_node(
    tree: &Tree,
    node: NodeId,
    in_match: &HashSet<u32>,
    cut_idx: &HashMap<(u32, u32), usize>,
    cut_labels: &[CcLabel],
    b: &mut TreeBuilder,
) -> NodeId {
    let mut kids = Vec::new();
    for (i, &k) in tree.children(node).iter().enumerate() {
        if let Some(&ci) = cut_idx.get(&(node.0, i as u32)) {
            kids.push(b.hole_node(cut_labels[ci].clone(), Vec::new()));
        } else if in_match.contains(&k.0) {
            kids.push(build_match_node(tree, k, in_match, cut_idx, cut_labels, b));
        } else {
            // A child that is neither kept nor cut cannot exist: the
            // child regex consumes the full child sequence, and pattern
            // leaves cut all children.
            unreachable!("child {k:?} of matched node {node:?} neither kept nor cut");
        }
    }
    b.payload_node(tree.payload(node).clone(), kids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::testutil::Fx;
    use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
    use aqua_pattern::PredExpr;

    fn compile(fx: &Fx, text: &str, env: &PredEnv) -> CompiledTreePattern {
        parse_tree_pattern(text, env)
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap()
    }

    #[test]
    fn fig4_three_pieces() {
        let mut fx = Fx::new();
        // Stand-in for Figure 3/4: r is the tree root; b = Brazilian
        // parent with children x (pruned), u = American child (whose
        // child y is a frontier cut), z (pruned).
        let t = fx.tree("r(b(x(p) u(y) z) s)");
        let cp = compile(&fx, "b(!?* u !?*)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default());
        assert_eq!(pieces.len(), 1);
        let p = &pieces[0];
        assert_eq!(fx.render(&p.context), "r(@a s)");
        assert_eq!(fx.render(&p.matched), "b(@1 u(@2) @3)");
        let descs: Vec<String> = p.descendants.iter().map(|d| fx.render(d)).collect();
        assert_eq!(descs, vec!["x(p)", "y", "z"]);
    }

    #[test]
    fn split_roundtrip_reassembles_original() {
        let mut fx = Fx::new();
        let t = fx.tree("r(b(x(p) u(y) z) s(u))");
        let cp = compile(&fx, "u", &fx.env());
        for p in split_pieces(&fx.store, &t, &cp, &MatchConfig::default()) {
            assert!(p.reassemble().structural_eq(&t), "roundtrip failed");
        }
    }

    #[test]
    fn split_at_root_gives_hole_context() {
        let mut fx = Fx::new();
        let t = fx.tree("a(b c)");
        let cp = compile(&fx, "a(b c)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default());
        assert_eq!(pieces.len(), 1);
        assert_eq!(fx.render(&pieces[0].context), "@a");
        assert!(pieces[0].descendants.is_empty());
        assert!(pieces[0].reassemble().structural_eq(&t));
    }

    #[test]
    fn one_result_per_match() {
        let mut fx = Fx::new();
        let t = fx.tree("a(u b(u) u)");
        let cp = compile(&fx, "u", &fx.env());
        let names = split(&fx.store, &t, &cp, &MatchConfig::default(), |p| {
            fx.render(&p.matched)
        });
        assert_eq!(names, vec!["u", "u", "u"]);
    }

    #[test]
    fn labels_avoid_collisions_with_existing_holes() {
        let mut fx = Fx::new();
        // The tree already contains holes named @a and @1.
        let t = fx.tree("r(b(x) @a @1)");
        let cp = compile(&fx, "b(!?*)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default());
        assert_eq!(pieces.len(), 1);
        let p = &pieces[0];
        assert_ne!(p.alpha.0, "a");
        assert_ne!(p.cut_labels[0].0, "1");
        assert!(p.reassemble().structural_eq(&t));
    }

    #[test]
    fn reassemble_with_replacement_rewrites() {
        // The §5 idiom: replace the match piece and reassemble.
        let mut fx = Fx::new();
        let t = fx.tree("r(b(x) s)");
        let cp = compile(&fx, "b(!?)", &fx.env());
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default());
        let p = &pieces[0];
        // Replace b(@1) by n(@1): keep the cut subtree attached.
        let n_oid = fx
            .store
            .insert_named("N", &[("label", aqua_object::Value::str("n"))])
            .unwrap();
        let mut bld = TreeBuilder::new();
        let h = bld.hole_node(p.cut_labels[0].clone(), vec![]);
        let nr = bld.node(n_oid, vec![h]);
        let replacement = bld.finish(nr).unwrap();
        let rewritten = p.reassemble_with(&replacement);
        assert_eq!(fx.render(&rewritten), "r(n(x) s)");
    }

    #[test]
    fn pattern_with_pred_expr_builder() {
        // Builder-based pattern (no parser): same result.
        let mut fx = Fx::new();
        let t = fx.tree("a(u)");
        let tp = aqua_pattern::TreePat::pred(PredExpr::eq("label", "u"));
        let cp = aqua_pattern::TreePattern::new(tp)
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let pieces = split_pieces(&fx.store, &t, &cp, &MatchConfig::default());
        assert_eq!(pieces.len(), 1);
        assert_eq!(fx.render(&pieces[0].matched), "u");
    }
}
