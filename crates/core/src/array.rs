//! ODMG arrays simulated with AQUA lists (paper §8).
//!
//! "The array type in the ODMG specification is similar to our notion
//! of list, and we believe that we will have little difficulty
//! simulating the ODMG arrays with AQUA lists. Our view of predicates,
//! however, is significantly more powerful." This module carries out
//! that simulation: an [`AquaArray`] is a ground AQUA [`List`] exposing
//! the ODMG-93 array protocol (indexed access, update, insertion,
//! removal, resize), while inheriting the full list algebra — so the
//! paper's pattern predicates apply to "arrays" for free.

use aqua_object::{ObjectStore, Oid};
use aqua_pattern::alphabet::Pred;
use aqua_pattern::list::{ListPattern, MatchMode};

use crate::error::{AlgebraError, Result};
use crate::list::{ops as list_ops, List};

/// An ODMG-style array over object references, backed by an AQUA list.
///
/// Arrays are *ground* lists: labeled NULLs (concatenation points) are
/// a query-processing device and never appear in arrays, matching the
/// ODMG model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AquaArray {
    list: List,
}

impl AquaArray {
    /// An empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from elements.
    pub fn from_oids(oids: impl IntoIterator<Item = Oid>) -> Self {
        AquaArray {
            list: List::from_oids(oids),
        }
    }

    /// View a ground list as an array; errors when the list contains
    /// labeled NULLs.
    pub fn from_list(list: List) -> Result<Self> {
        if !list.is_ground() {
            return Err(AlgebraError::Malformed {
                msg: "arrays cannot contain concatenation points (labeled NULLs)".into(),
            });
        }
        Ok(AquaArray { list })
    }

    /// The backing list (for the full list algebra).
    pub fn as_list(&self) -> &List {
        &self.list
    }

    /// ODMG `cardinality`.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// ODMG `retrieve_element_at`; errors when out of bounds.
    pub fn get(&self, index: usize) -> Result<Oid> {
        self.list
            .get(index)
            .and_then(|e| e.oid())
            .ok_or_else(|| self.oob(index))
    }

    /// ODMG `replace_element_at`.
    pub fn set(&mut self, index: usize, oid: Oid) -> Result<()> {
        if index >= self.len() {
            return Err(self.oob(index));
        }
        let mut elems = self.list.elems().to_vec();
        elems[index] = crate::list::ListElem::Cell(aqua_object::Cell::new(oid));
        self.list = List::from_elems(elems);
        Ok(())
    }

    /// ODMG `insert_element_at` (shifts subsequent elements right).
    pub fn insert(&mut self, index: usize, oid: Oid) -> Result<()> {
        if index > self.len() {
            return Err(self.oob(index));
        }
        let mut elems = self.list.elems().to_vec();
        elems.insert(
            index,
            crate::list::ListElem::Cell(aqua_object::Cell::new(oid)),
        );
        self.list = List::from_elems(elems);
        Ok(())
    }

    /// ODMG `remove_element_at` (shifts subsequent elements left).
    pub fn remove(&mut self, index: usize) -> Result<Oid> {
        if index >= self.len() {
            return Err(self.oob(index));
        }
        let mut elems = self.list.elems().to_vec();
        let removed = elems.remove(index).oid().expect("arrays are ground");
        self.list = List::from_elems(elems);
        Ok(removed)
    }

    /// ODMG `resize`: truncate, or grow by repeating `fill`.
    pub fn resize(&mut self, new_len: usize, fill: Oid) {
        let mut elems = self.list.elems().to_vec();
        if new_len <= elems.len() {
            elems.truncate(new_len);
        } else {
            elems.extend(
                std::iter::repeat_with(|| {
                    crate::list::ListElem::Cell(aqua_object::Cell::new(fill))
                })
                .take(new_len - elems.len()),
            );
        }
        self.list = List::from_elems(elems);
    }

    /// Slice `[from, to)` as a new array.
    pub fn slice(&self, from: usize, to: usize) -> Result<AquaArray> {
        if from > to || to > self.len() {
            return Err(AlgebraError::Malformed {
                msg: format!("bad slice [{from}, {to}) of array of {}", self.len()),
            });
        }
        Ok(AquaArray {
            list: List::from_elems(self.list.elems()[from..to].to_vec()),
        })
    }

    // ── the AQUA list algebra, inherited ────────────────────────────

    /// Order-preserving `select` (the ODMG spec has only element scans;
    /// this is the AQUA upgrade).
    pub fn select(&self, store: &ObjectStore, p: &Pred) -> AquaArray {
        AquaArray {
            list: list_ops::select(store, &self.list, p),
        }
    }

    /// `apply` over elements.
    pub fn apply(&self, f: impl FnMut(Oid) -> Oid) -> AquaArray {
        AquaArray {
            list: list_ops::apply(&self.list, f),
        }
    }

    /// Pattern `sub_select` — "our view of predicates is significantly
    /// more powerful" (§8): full regular-expression patterns over array
    /// contents.
    pub fn sub_select(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
    ) -> Vec<AquaArray> {
        list_ops::sub_select(store, &self.list, pattern, mode)
            .into_iter()
            .map(|list| AquaArray { list })
            .collect()
    }

    fn oob(&self, index: usize) -> AlgebraError {
        AlgebraError::Malformed {
            msg: format!("array index {index} out of bounds (len {})", self.len()),
        }
    }
}

impl FromIterator<Oid> for AquaArray {
    fn from_iter<I: IntoIterator<Item = Oid>>(iter: I) -> Self {
        AquaArray::from_oids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::testutil::Fx;
    use aqua_pattern::parser::parse_list_pattern;
    use aqua_pattern::PredExpr;

    fn arr(fx: &mut Fx, s: &str) -> AquaArray {
        AquaArray::from_list(fx.song(s)).unwrap()
    }

    #[test]
    fn odmg_protocol() {
        let mut fx = Fx::new();
        let mut a = arr(&mut fx, "ABC");
        assert_eq!(a.len(), 3);
        let b0 = a.get(0).unwrap();
        assert!(a.get(3).is_err());

        // replace / insert / remove with shifts
        let z = fx.song("Z").oids()[0];
        a.set(1, z).unwrap();
        assert_eq!(a.get(1).unwrap(), z);
        a.insert(0, z).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(1).unwrap(), b0);
        let removed = a.remove(0).unwrap();
        assert_eq!(removed, z);
        assert_eq!(a.get(0).unwrap(), b0);

        // resize both directions
        a.resize(1, z);
        assert_eq!(a.len(), 1);
        a.resize(4, z);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(3).unwrap(), z);

        // slice
        let s = a.slice(1, 3).unwrap();
        assert_eq!(s.len(), 2);
        assert!(a.slice(3, 1).is_err());
    }

    #[test]
    fn arrays_must_be_ground() {
        let mut fx = Fx::new();
        let holey = fx.song("A@xB");
        assert!(AquaArray::from_list(holey).is_err());
    }

    #[test]
    fn inherits_list_algebra() {
        let mut fx = Fx::new();
        let a = arr(&mut fx, "GAXYFACDF");
        let pred = PredExpr::eq("pitch", "A")
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        assert_eq!(a.select(&fx.store, &pred).len(), 2);

        let (re, s, e) = parse_list_pattern("[A ? ? F]", &fx.env()).unwrap();
        let p = ListPattern::compile(re, s, e, fx.class, fx.store.class(fx.class)).unwrap();
        let phrases = a.sub_select(&fx.store, &p, MatchMode::All);
        assert_eq!(phrases.len(), 2);
        assert_eq!(phrases[0].len(), 4);
    }

    #[test]
    fn apply_maps_elements() {
        let mut fx = Fx::new();
        let a = arr(&mut fx, "AB");
        let z = fx.song("Z").oids()[0];
        let mapped = a.apply(|_| z);
        assert_eq!(mapped.get(0).unwrap(), z);
        assert_eq!(mapped.get(1).unwrap(), z);
    }
}
