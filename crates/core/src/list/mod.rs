//! The AQUA `List[T]` type and its operators (paper §6).
//!
//! A list is a sequence of cells, possibly interleaved with labeled
//! NULLs (concatenation points in instances, §3.5). List operators are
//! the tree operators restricted to *list-like trees* — trees in which
//! every node has at most one child — and the [`embed`] module realizes
//! that correspondence concretely (it is property-tested in the
//! integration suite).

pub mod embed;
pub mod ops;

use std::fmt;
use std::sync::OnceLock;

use aqua_object::{Cell, ObjectStore, Oid};
use aqua_pattern::CcLabel;

use crate::cols::ListCols;

/// One list element.
#[derive(Debug, Clone, PartialEq)]
pub enum ListElem {
    /// A real element (cell indirection, §2).
    Cell(Cell),
    /// A labeled NULL; only concatenation observes it (§3.5).
    Hole(CcLabel),
}

impl ListElem {
    /// The contained object identity, if this is a cell.
    pub fn oid(&self) -> Option<Oid> {
        match self {
            ListElem::Cell(c) => Some(c.contents()),
            ListElem::Hole(_) => None,
        }
    }

    /// The hole label, if this is a labeled NULL.
    pub fn hole(&self) -> Option<&CcLabel> {
        match self {
            ListElem::Cell(_) => None,
            ListElem::Hole(l) => Some(l),
        }
    }
}

/// An ordered list over cells with labeled NULLs.
///
/// Carries a lazily-built [`ListCols`] flat view (the contiguous
/// cell-OID column batched predicate evaluation streams over). The
/// in-place mutators invalidate the cache.
#[derive(Default)]
pub struct List {
    pub(crate) elems: Vec<ListElem>,
    pub(crate) cols: OnceLock<ListCols>,
}

impl fmt::Debug for List {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("List").field("elems", &self.elems).finish()
    }
}

impl Clone for List {
    fn clone(&self) -> List {
        List::from_elems(self.elems.clone())
    }
}

impl PartialEq for List {
    fn eq(&self, other: &List) -> bool {
        self.elems == other.elems
    }
}

impl List {
    /// The empty list.
    pub fn new() -> List {
        List::default()
    }

    /// A list of the given objects, each wrapped in a fresh cell.
    pub fn from_oids(oids: impl IntoIterator<Item = Oid>) -> List {
        List::from_elems(
            oids.into_iter()
                .map(|o| ListElem::Cell(Cell::new(o)))
                .collect(),
        )
    }

    /// A list from explicit elements.
    pub fn from_elems(elems: Vec<ListElem>) -> List {
        List {
            elems,
            cols: OnceLock::new(),
        }
    }

    /// The flat columnar view, built on first use and cached until the
    /// next in-place mutation.
    #[inline]
    pub fn cols(&self) -> &ListCols {
        self.cols.get_or_init(|| ListCols::build(self))
    }

    /// Number of elements (cells and holes).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the list has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// All elements in order.
    pub fn elems(&self) -> &[ListElem] {
        &self.elems
    }

    /// The element at `i`.
    pub fn get(&self, i: usize) -> Option<&ListElem> {
        self.elems.get(i)
    }

    /// The OIDs of the cell elements, in order (holes skipped). Pattern
    /// matching runs over this view only when the list is hole-free; use
    /// [`List::is_ground`] to check.
    pub fn oids(&self) -> Vec<Oid> {
        self.elems.iter().filter_map(|e| e.oid()).collect()
    }

    /// True when the list contains no labeled NULLs.
    pub fn is_ground(&self) -> bool {
        self.elems.iter().all(|e| e.oid().is_some())
    }

    /// Append an object element.
    pub fn push(&mut self, oid: Oid) {
        self.cols = OnceLock::new();
        self.elems.push(ListElem::Cell(Cell::new(oid)));
    }

    /// Append a labeled NULL.
    pub fn push_hole(&mut self, label: impl Into<CcLabel>) {
        self.cols = OnceLock::new();
        self.elems.push(ListElem::Hole(label.into()));
    }

    /// Remove and return the element at `i`; `None` (list untouched)
    /// when `i` is out of bounds. Later elements shift left, preserving
    /// relative order — the stability contract of the algebra.
    pub fn remove(&mut self, i: usize) -> Option<ListElem> {
        if i < self.elems.len() {
            self.cols = OnceLock::new();
            Some(self.elems.remove(i))
        } else {
            None
        }
    }

    /// `self ∘_label other`: splice a copy of `other` into every hole of
    /// `self` carrying `label`; identity when no such hole exists
    /// (paper §3.3's list analogue).
    pub fn concat_at(&self, label: &CcLabel, other: &List) -> List {
        let mut out = Vec::with_capacity(self.elems.len() + other.elems.len());
        for e in &self.elems {
            match e {
                ListElem::Hole(l) if l == label => out.extend(other.elems.iter().cloned()),
                other_elem => out.push(other_elem.clone()),
            }
        }
        List::from_elems(out)
    }

    /// Plain concatenation `self ∘ other` (the implicit concatenation
    /// point at the end of a list, §6).
    pub fn concat(&self, other: &List) -> List {
        let mut elems = self.elems.clone();
        elems.extend(other.elems.iter().cloned());
        List::from_elems(elems)
    }

    /// Render with a labeling function, in the paper's `[abc]` notation.
    pub fn render(&self, label: &impl Fn(Oid) -> String) -> String {
        let mut out = String::from("[");
        for e in &self.elems {
            match e {
                ListElem::Cell(c) => out.push_str(&label(c.contents())),
                ListElem::Hole(l) => out.push_str(&l.to_string()),
            }
        }
        out.push(']');
        out
    }

    /// Dereference all cells, yielding `(index, &Object)` pairs.
    pub fn iter_objects<'s>(
        &'s self,
        store: &'s ObjectStore,
    ) -> impl Iterator<Item = (usize, &'s aqua_object::Object)> + 's {
        self.elems
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| e.oid().map(|o| (i, store.deref(o))))
    }
}

impl fmt::Display for List {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&|oid| oid.to_string()))
    }
}

impl FromIterator<Oid> for List {
    fn from_iter<I: IntoIterator<Item = Oid>>(iter: I) -> Self {
        List::from_oids(iter)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, ObjectStore, Value};
    use aqua_pattern::parser::PredEnv;

    use super::*;

    pub struct Fx {
        pub store: ObjectStore,
        pub class: ClassId,
    }

    impl Fx {
        pub fn new() -> Self {
            let mut store = ObjectStore::new();
            let class = store
                .define_class(
                    ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap(),
                )
                .unwrap();
            Fx { store, class }
        }

        pub fn env(&self) -> PredEnv {
            PredEnv::with_default_attr("pitch")
        }

        /// One object per character; `@x` makes a hole.
        pub fn song(&mut self, s: &str) -> List {
            let mut list = List::new();
            let mut chars = s.chars();
            while let Some(c) = chars.next() {
                if c == '@' {
                    let l = chars.next().expect("label after @");
                    list.push_hole(l.to_string().as_str());
                } else {
                    let oid = self
                        .store
                        .insert_named("Note", &[("pitch", Value::str(c.to_string()))])
                        .unwrap();
                    list.push(oid);
                }
            }
            list
        }

        pub fn render(&self, l: &List) -> String {
            l.render(&|oid| match self.store.attr(oid, aqua_object::AttrId(0)) {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            })
        }
    }

    #[test]
    fn fixture_roundtrip() {
        let mut fx = Fx::new();
        let l = fx.song("AB@xC");
        assert_eq!(fx.render(&l), "[AB@xC]");
        assert_eq!(l.len(), 4);
        assert!(!l.is_ground());
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Fx;
    use super::*;

    #[test]
    fn construction_and_access() {
        let l = List::from_oids([Oid(1), Oid(2)]);
        assert_eq!(l.len(), 2);
        assert!(l.is_ground());
        assert_eq!(l.oids(), vec![Oid(1), Oid(2)]);
        assert_eq!(l.get(0).unwrap().oid(), Some(Oid(1)));
        assert!(l.get(5).is_none());
    }

    #[test]
    fn concat_at_splices() {
        let mut fx = Fx::new();
        // [d @x b] ∘_x [ac] = [dacb]
        let base = fx.song("d@xb");
        let mid = fx.song("ac");
        let r = base.concat_at(&CcLabel::new("x"), &mid);
        assert_eq!(fx.render(&r), "[dacb]");
        // no label → identity
        let same = base.concat_at(&CcLabel::new("zzz"), &mid);
        assert_eq!(same, base);
    }

    #[test]
    fn plain_concat() {
        let mut fx = Fx::new();
        let a = fx.song("ab");
        let b = fx.song("c");
        assert_eq!(fx.render(&a.concat(&b)), "[abc]");
    }

    #[test]
    fn duplicate_objects_allowed_via_cells() {
        let mut fx = Fx::new();
        let l = fx.song("A");
        let oid = l.oids()[0];
        let dup = List::from_oids([oid, oid, oid]);
        assert_eq!(dup.len(), 3); // three unique nodes, one object
    }

    #[test]
    fn remove_shifts_and_bounds_checks() {
        let mut fx = Fx::new();
        let mut l = fx.song("a@xbc");
        assert!(l.remove(99).is_none());
        assert_eq!(fx.render(&l), "[a@xbc]");
        let hole = l.remove(1).unwrap();
        assert!(hole.hole().is_some());
        assert_eq!(fx.render(&l), "[abc]");
        l.remove(0).unwrap();
        assert_eq!(fx.render(&l), "[bc]");
    }

    #[test]
    fn iter_objects_skips_holes() {
        let mut fx = Fx::new();
        let l = fx.song("A@xB");
        let idx: Vec<usize> = l.iter_objects(&fx.store).map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 2]);
    }
}
