//! List query operators (paper §6).
//!
//! Lists are list-like trees, so these operators mirror the tree
//! operators: [`select`] and [`apply`] are the order-preserving
//! bulk-type operators, and [`sub_select`], [`split`], [`all_anc`],
//! [`all_desc`] take a list pattern. `split` is the primitive list
//! operator; the others are expressible in terms of it (§6) and the
//! property suite checks the embeddings.
//!
//! A labeled NULL in a list never satisfies a pattern symbol (only
//! concatenation observes holes, §3.5), so matches never span holes:
//! matching runs over the maximal ground runs of the list.

use aqua_guard::ExecGuard;
use aqua_object::{ObjectStore, Oid};
use aqua_pattern::alphabet::Pred;
use aqua_pattern::list::{ListMatch, ListPattern, MatchMode};
use aqua_pattern::CcLabel;

use crate::error::Result;
use crate::list::{List, ListElem};

/// Unwrap a guard-fallible result that ran with no guard installed.
fn infallible<T>(r: Result<T>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => unreachable!("guardless list op cannot fail: {e}"),
    }
}

/// `select(p)(L)` — the stable sublist of elements satisfying `p`
/// (holes never satisfy a predicate and are dropped, as in tree
/// `select`).
pub fn select(store: &ObjectStore, list: &List, p: &Pred) -> List {
    infallible(select_guarded(store, list, p, None))
}

/// [`select`] under an optional execution guard. Evaluation is batched:
/// the predicate is compiled to a flat program and run over the list's
/// contiguous OID column ([`List::cols`]) a chunk at a time, charging
/// the guard per chunk. The step total is unchanged — one step per
/// element, cells and holes alike.
pub fn select_guarded(
    store: &ObjectStore,
    list: &List,
    p: &Pred,
    guard: Option<&ExecGuard>,
) -> Result<List> {
    let cols = list.cols();
    let program = p.batch();
    let bits = program.eval(store, cols.oids(), guard)?;
    // Holes never satisfy a predicate but still cost their visit step.
    aqua_guard::steps_n(guard, (list.len() - cols.len()) as u64)?;
    let mut elems = Vec::with_capacity(bits.count_ones());
    for i in bits.ones() {
        elems.push(list.elems[cols.positions()[i] as usize].clone());
    }
    Ok(List::from_elems(elems))
}

/// `apply(f)(L)` — map every cell through `f`; holes are preserved.
pub fn apply(list: &List, mut f: impl FnMut(Oid) -> Oid) -> List {
    List::from_elems(
        list.elems
            .iter()
            .map(|e| match e {
                ListElem::Cell(c) => ListElem::Cell(aqua_object::Cell::new(f(c.contents()))),
                hole => hole.clone(),
            })
            .collect(),
    )
}

/// Find pattern matches in `list`, honoring holes (matches are found
/// within maximal ground runs). Positions are absolute list indices.
pub fn find_matches(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
) -> Vec<ListMatch> {
    infallible(find_matches_guarded(store, list, pattern, mode, None))
}

/// [`find_matches`] under an optional execution guard.
pub fn find_matches_guarded(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    guard: Option<&ExecGuard>,
) -> Result<Vec<ListMatch>> {
    let n = list.len();
    let cols = list.cols();
    if cols.ground() {
        // Hole-free list: one run covering everything — match straight
        // over the cached contiguous OID column, no copying.
        return Ok(pattern.find_matches_guarded(store, cols.oids(), mode, guard)?);
    }
    let mut out = Vec::new();
    let mut run_start = 0usize;
    while run_start < n {
        // Skip holes.
        while run_start < n && list.elems[run_start].oid().is_none() {
            run_start += 1;
        }
        let mut run_end = run_start;
        let mut oids = Vec::new();
        while run_end < n {
            match list.elems[run_end].oid() {
                Some(o) => oids.push(o),
                None => break,
            }
            run_end += 1;
        }
        if run_end > run_start {
            // Anchors are list-global: ^ only applies to the run starting
            // at 0; $ only to the run ending at n.
            let applicable =
                (!pattern.anchor_start || run_start == 0) && (!pattern.anchor_end || run_end == n);
            if applicable {
                for m in pattern.find_matches_guarded(store, &oids, mode, guard)? {
                    out.push(ListMatch {
                        start: m.start + run_start,
                        end: m.end + run_start,
                        pruned: m.pruned.iter().map(|p| p + run_start).collect(),
                    });
                }
            }
        }
        run_start = run_end.max(run_start + 1);
    }
    Ok(out)
}

/// The pieces `split` cuts for one list match (the list analogue of
/// [`crate::tree::split::SplitPieces`]).
#[derive(Debug, Clone)]
pub struct ListSplitPieces {
    /// `x`: the elements before the match, ending in the `alpha` hole.
    pub prefix: List,
    /// `y`: the match, with holes at pruned runs and (when the match is
    /// not at the very end) a trailing hole where the rest of the list
    /// attaches — in the list-as-tree view the suffix is the match's
    /// descendant subtree.
    pub matched: List,
    /// `z`: the cut pieces, in hole order: each pruned run, then the
    /// suffix (if a trailing hole was emitted).
    pub rest: Vec<List>,
    /// Label joining `prefix` to `matched`.
    pub alpha: CcLabel,
    /// Labels joining `matched` to each piece of `rest`.
    pub cut_labels: Vec<CcLabel>,
    /// The raw match (absolute positions in the original list).
    pub raw: ListMatch,
}

impl ListSplitPieces {
    /// `x ∘_α y ∘_{α_i} z_i` — reassemble the original list.
    pub fn reassemble(&self) -> List {
        self.reassemble_with(&self.matched)
    }

    /// Reassemble around a replacement for the match piece.
    pub fn reassemble_with(&self, replacement: &List) -> List {
        let mut acc = self.prefix.concat_at(&self.alpha, replacement);
        for (label, piece) in self.cut_labels.iter().zip(&self.rest) {
            acc = acc.concat_at(label, piece);
        }
        acc
    }

    /// The match with its pruned-run and suffix holes removed — the
    /// `y ∘_{α_i} []` reduction `sub_select` applies.
    pub fn matched_reduced(&self) -> List {
        List::from_elems(
            self.matched
                .elems
                .iter()
                .filter(|e| match e {
                    ListElem::Hole(l) => !self.cut_labels.contains(l),
                    ListElem::Cell(_) => true,
                })
                .cloned()
                .collect(),
        )
    }
}

/// Cut one match out of `list`.
pub fn pieces_for_match(list: &List, m: ListMatch) -> ListSplitPieces {
    let existing: std::collections::HashSet<&str> = list
        .elems
        .iter()
        .filter_map(|e| e.hole().map(|l| l.0.as_str()))
        .collect();
    let fresh = |base: String| -> CcLabel {
        let mut name = base;
        while existing.contains(name.as_str()) {
            name.push('\'');
        }
        CcLabel::new(name)
    };
    let alpha = fresh("a".to_string());

    let mut prefix = List::from_elems(list.elems[..m.start].to_vec());
    prefix.elems.push(ListElem::Hole(alpha.clone()));

    let mut matched = List::new();
    let mut rest: Vec<List> = Vec::new();
    let mut cut_labels: Vec<CcLabel> = Vec::new();
    let mut i = m.start;
    while i < m.end {
        if m.pruned.contains(&i) {
            // Maximal pruned run → one hole + one piece.
            let run_start = i;
            while i < m.end && m.pruned.contains(&i) {
                i += 1;
            }
            let label = fresh((cut_labels.len() + 1).to_string());
            matched.elems.push(ListElem::Hole(label.clone()));
            cut_labels.push(label);
            rest.push(List::from_elems(list.elems[run_start..i].to_vec()));
        } else {
            matched.elems.push(list.elems[i].clone());
            i += 1;
        }
    }
    if m.end < list.len() {
        let label = fresh((cut_labels.len() + 1).to_string());
        matched.elems.push(ListElem::Hole(label.clone()));
        cut_labels.push(label);
        rest.push(List::from_elems(list.elems[m.end..].to_vec()));
    }
    ListSplitPieces {
        prefix,
        matched,
        rest,
        alpha,
        cut_labels,
        raw: m,
    }
}

/// `split(lp, f)(L)` — apply `f` to the pieces of every match.
pub fn split<R>(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    f: impl FnMut(&ListSplitPieces) -> R,
) -> Vec<R> {
    infallible(split_guarded(store, list, pattern, mode, f, None))
}

/// [`split`] under an optional execution guard: each piece cut counts
/// toward the guard's result cap.
pub fn split_guarded<R>(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    mut f: impl FnMut(&ListSplitPieces) -> R,
    guard: Option<&ExecGuard>,
) -> Result<Vec<R>> {
    let matches = find_matches_guarded(store, list, pattern, mode, guard)?;
    let mut out = Vec::with_capacity(matches.len());
    for m in matches {
        aqua_guard::steps_n(guard, (m.end - m.start) as u64 + 1)?;
        out.push(f(&pieces_for_match(list, m)));
        aqua_guard::result_emitted(guard)?;
    }
    Ok(out)
}

/// `sub_select(lp)(L)` — the set of sublists of `L` matching `lp`
/// (pruned elements removed). Defined via `split` as in §6.
pub fn sub_select(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
) -> Vec<List> {
    split(store, list, pattern, mode, |p| p.matched_reduced())
}

/// [`sub_select`] under an optional execution guard.
pub fn sub_select_guarded(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    guard: Option<&ExecGuard>,
) -> Result<Vec<List>> {
    split_guarded(store, list, pattern, mode, |p| p.matched_reduced(), guard)
}

/// `all_anc(lp, f)(L)` — `f(ancestors, match)` per match: the sublist
/// from the beginning of the list up to the match (with the `α` hole
/// showing where the match attaches), and the reduced match.
pub fn all_anc<R>(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    mut f: impl FnMut(&List, &List) -> R,
) -> Vec<R> {
    split(store, list, pattern, mode, |p| {
        f(&p.prefix, &p.matched_reduced())
    })
}

/// [`all_anc`] under an optional execution guard.
pub fn all_anc_guarded<R>(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    mut f: impl FnMut(&List, &List) -> R,
    guard: Option<&ExecGuard>,
) -> Result<Vec<R>> {
    split_guarded(
        store,
        list,
        pattern,
        mode,
        |p| f(&p.prefix, &p.matched_reduced()),
        guard,
    )
}

/// `all_desc(lp, f)(L)` — `f(match, descendants)` per match; the match
/// keeps its holes so the caller sees where each piece attaches.
pub fn all_desc<R>(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    mut f: impl FnMut(&List, &[List]) -> R,
) -> Vec<R> {
    split(store, list, pattern, mode, |p| f(&p.matched, &p.rest))
}

/// [`all_desc`] under an optional execution guard.
pub fn all_desc_guarded<R>(
    store: &ObjectStore,
    list: &List,
    pattern: &ListPattern,
    mode: MatchMode,
    mut f: impl FnMut(&List, &[List]) -> R,
    guard: Option<&ExecGuard>,
) -> Result<Vec<R>> {
    split_guarded(
        store,
        list,
        pattern,
        mode,
        |p| f(&p.matched, &p.rest),
        guard,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::testutil::Fx;
    use aqua_pattern::parser::parse_list_pattern;
    use aqua_pattern::PredExpr;

    fn compile(fx: &Fx, text: &str) -> ListPattern {
        let (re, s, e) = parse_list_pattern(text, &fx.env()).unwrap();
        ListPattern::compile(re, s, e, fx.class, fx.store.class(fx.class)).unwrap()
    }

    fn pred(fx: &Fx, pitch: &str) -> Pred {
        PredExpr::eq("pitch", pitch)
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap()
    }

    #[test]
    fn select_is_stable() {
        let mut fx = Fx::new();
        let l = fx.song("AxAyA");
        let r = select(&fx.store, &l, &pred(&fx, "A"));
        assert_eq!(fx.render(&r), "[AAA]");
        // The surviving As are the original objects, in original order.
        assert_eq!(r.oids(), vec![l.oids()[0], l.oids()[2], l.oids()[4]]);
    }

    #[test]
    fn apply_maps_cells_keeps_holes() {
        let mut fx = Fx::new();
        let l = fx.song("A@xB");
        let z = fx.song("Z").oids()[0];
        let r = apply(&l, |_| z);
        assert_eq!(fx.render(&r), "[Z@xZ]");
    }

    #[test]
    fn melody_sub_select() {
        // §6: sub_select([A??F])(L)
        let mut fx = Fx::new();
        let l = fx.song("GAXYFBACDF");
        let p = compile(&fx, "[A ? ? F]");
        let rs = sub_select(&fx.store, &l, &p, MatchMode::All);
        let rendered: Vec<String> = rs.iter().map(|r| fx.render(r)).collect();
        assert_eq!(rendered, vec!["[AXYF]", "[ACDF]"]);
    }

    #[test]
    fn melody_all_anc_paper_example() {
        // §6: all_anc([A??F], λ(x,y)⟨x,y⟩)(L) — "the first field returns
        // the sublist from the beginning of the song up to the starting
        // position of the melody, the second field returns the melody."
        let mut fx = Fx::new();
        let l = fx.song("GAXYF");
        let p = compile(&fx, "[A ? ? F]");
        let rs = all_anc(&fx.store, &l, &p, MatchMode::All, |x, y| {
            (fx.render(x), fx.render(y))
        });
        assert_eq!(rs, vec![("[G@a]".to_string(), "[AXYF]".to_string())]);
    }

    #[test]
    fn all_desc_returns_suffix() {
        let mut fx = Fx::new();
        let l = fx.song("GAXYFBB");
        let p = compile(&fx, "[A ? ? F]");
        let rs = all_desc(&fx.store, &l, &p, MatchMode::All, |y, z| {
            (
                fx.render(y),
                z.iter().map(|p| fx.render(p)).collect::<Vec<_>>(),
            )
        });
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].0, "[AXYF@1]");
        assert_eq!(rs[0].1, vec!["[BB]"]);
    }

    #[test]
    fn split_roundtrip() {
        let mut fx = Fx::new();
        let l = fx.song("GAXYFBACDF");
        let p = compile(&fx, "[A ? ? F]");
        let rs = split(&fx.store, &l, &p, MatchMode::All, |pieces| {
            pieces.reassemble()
        });
        for r in rs {
            assert_eq!(r, l);
        }
    }

    #[test]
    fn split_roundtrip_with_pruning() {
        let mut fx = Fx::new();
        let l = fx.song("XAYBZ");
        // [!? A !? B] — prune around the kept A and B.
        let p = compile(&fx, "[!? A !? B]");
        let rs = split(&fx.store, &l, &p, MatchMode::All, |pieces| {
            (fx.render(&pieces.matched), pieces.reassemble())
        });
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].0, "[@1A@2B@3]");
        assert_eq!(rs[0].1, l);
    }

    #[test]
    fn matches_do_not_span_holes() {
        let mut fx = Fx::new();
        let l = fx.song("AB@xAB");
        let p = compile(&fx, "[A B]");
        let ms = find_matches(&fx.store, &l, &p, MatchMode::All);
        assert_eq!(ms.len(), 2);
        // And a pattern that would need to cross the hole finds nothing.
        let cross = compile(&fx, "[B A]");
        assert!(find_matches(&fx.store, &l, &cross, MatchMode::All).is_empty());
    }

    #[test]
    fn anchors_are_list_global() {
        let mut fx = Fx::new();
        let l = fx.song("@xAB");
        // ^[A] — position 0 is a hole, so the anchored pattern cannot
        // match (the run does not start at index 0).
        let p = compile(&fx, "^[A]");
        assert!(find_matches(&fx.store, &l, &p, MatchMode::All).is_empty());
        let e = compile(&fx, "[B]$");
        assert_eq!(find_matches(&fx.store, &l, &e, MatchMode::All).len(), 1);
    }

    #[test]
    fn match_at_end_has_no_suffix_piece() {
        let mut fx = Fx::new();
        let l = fx.song("GAB");
        let p = compile(&fx, "[A B]");
        let rs = split(&fx.store, &l, &p, MatchMode::All, |pieces| {
            (pieces.rest.len(), fx.render(&pieces.matched))
        });
        assert_eq!(rs, vec![(0, "[AB]".to_string())]);
    }
}
