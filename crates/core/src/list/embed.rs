//! Lists as list-like trees (paper §6).
//!
//! "Ignoring typing issues for the moment, we can view a list as a tree
//! in which each tree-node has at most one child." These conversions
//! realize the embedding; the integration suite checks that list
//! operators agree with their tree counterparts through it.

use crate::list::{List, ListElem};
use crate::tree::{NodeId, Payload, Tree, TreeBuilder};

/// Embed a list as a list-like tree: `[abc]` becomes `a(b(c))`. The
/// empty list has no tree form (trees are non-empty), hence `None`.
pub fn to_tree(list: &List) -> Option<Tree> {
    if list.is_empty() {
        return None;
    }
    let mut b = TreeBuilder::new();
    // Build bottom-up from the last element.
    let mut child: Option<NodeId> = None;
    for elem in list.elems().iter().rev() {
        let kids: Vec<NodeId> = child.into_iter().collect();
        let id = match elem {
            ListElem::Cell(c) => b.node(c.contents(), kids),
            ListElem::Hole(l) => {
                // A hole with a child would be malformed in tree form;
                // holes may only be final in an embeddable list.
                if !kids.is_empty() {
                    return None;
                }
                b.hole_node(l.clone(), kids)
            }
        };
        child = Some(id);
    }
    Some(b.finish(child.unwrap()).expect("chain is a valid tree"))
}

/// Project a list-like tree back to a list: `a(b(c))` becomes `[abc]`.
/// `None` when some node has more than one child.
pub fn from_tree(tree: &Tree) -> Option<List> {
    let mut elems = Vec::new();
    let mut cur = Some(tree.root());
    while let Some(n) = cur {
        elems.push(match tree.payload(n) {
            Payload::Cell(c) => ListElem::Cell(*c),
            Payload::Hole(l) => ListElem::Hole(l.clone()),
        });
        let kids = tree.children(n);
        match kids.len() {
            0 => cur = None,
            1 => cur = Some(kids[0]),
            _ => return None,
        }
    }
    Some(List::from_elems(elems))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::testutil::Fx;

    #[test]
    fn roundtrip() {
        let mut fx = Fx::new();
        let l = fx.song("ABC");
        let t = to_tree(&l).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.height(), 2);
        let back = from_tree(&t).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn empty_list_has_no_tree() {
        assert!(to_tree(&List::new()).is_none());
    }

    #[test]
    fn single_element() {
        let mut fx = Fx::new();
        let l = fx.song("A");
        let t = to_tree(&l).unwrap();
        assert!(t.is_leaf(t.root()));
        assert_eq!(from_tree(&t).unwrap(), l);
    }

    #[test]
    fn trailing_hole_embeds() {
        let mut fx = Fx::new();
        let l = fx.song("AB@x");
        let t = to_tree(&l).unwrap();
        assert_eq!(t.hole_labels().len(), 1);
        assert_eq!(from_tree(&t).unwrap(), l);
    }

    #[test]
    fn interior_hole_does_not_embed() {
        // In tree form an interior hole would have a child — malformed.
        let mut fx = Fx::new();
        let l = fx.song("A@xB");
        assert!(to_tree(&l).is_none());
    }

    #[test]
    fn branching_tree_is_not_a_list() {
        let mut tfx = crate::tree::testutil::Fx::new();
        let t = tfx.tree("a(b c)");
        assert!(from_tree(&t).is_none());
        let chain = tfx.tree("a(b(c))");
        assert!(from_tree(&chain).is_some());
    }
}
