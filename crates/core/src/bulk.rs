//! Compositions of bulk types (paper §1).
//!
//! "Moreover, queries on arbitrary compositions of these bulk types
//! (e.g., `set[tree]`) could be handled more uniformly." The §6 music
//! database is itself such a composition — *a set of songs, each a
//! list of notes* — and a document store is a set of trees. This module
//! provides the composed collections with the ordered operators mapped
//! uniformly over their members:
//!
//! * [`TreeSet`] — `Set[Tree[T]]`: a collection of trees sharing one
//!   store, with `select` / `apply` / `sub_select` / `split` mapped over
//!   members (results tagged with the member index).
//! * [`ListSet`] — `Set[List[T]]`: same for lists (the music database).
//!
//! Every mapped operator has three forms:
//!
//! * the plain serial form (unchanged from the paper's semantics),
//! * a `*_guarded` serial form threading one [`ExecGuard`],
//! * a `par_*` form running members on a work-stealing pool
//!   ([`aqua_exec`]) under an optional fleet-wide [`SharedGuard`].
//!
//! Stability makes the parallel forms trivial to specify: results are
//! merged in member order, so `par_*` output is byte-identical to the
//! serial output for every thread count. Pattern-taking operators also
//! have `*_pattern` entry points that accept the *uncompiled* pattern
//! and compile it exactly once per bulk call (optionally memoized in a
//! [`PatternCache`] shared across calls and across worker threads).

use std::sync::Arc;

use aqua_exec as exec;
use aqua_guard::{ExecGuard, SharedGuard};
use aqua_object::{ClassId, ObjectStore, Oid};
use aqua_pattern::alphabet::Pred;
use aqua_pattern::ast::Re;
use aqua_pattern::cache::PatternCache;
use aqua_pattern::list::{ListMatch, ListPattern, MatchMode, Sym};
use aqua_pattern::tree_ast::{CompiledTreePattern, TreePattern};
use aqua_pattern::tree_match::MatchConfig;

use crate::error::{AlgebraError, Result};
use crate::list::{ops as list_ops, List};
use crate::tree::ops as tree_ops;
use crate::tree::split::{split_pieces_guarded, SplitPieces};
use crate::Tree;

/// Tag each member's results with its index and flatten in member order
/// — the deterministic merge both serial and parallel paths share.
fn tag_flatten<T>(per_member: Vec<Vec<T>>) -> Vec<(usize, T)> {
    per_member
        .into_iter()
        .enumerate()
        .flat_map(|(i, ms)| ms.into_iter().map(move |m| (i, m)))
        .collect()
}

/// Prefer the fleet's own verdict (with merged fleet-wide progress) over
/// whichever worker's error won the race to the pool.
fn fleet_err(guard: Option<&SharedGuard>, e: AlgebraError) -> AlgebraError {
    match guard.and_then(|g| g.verdict()) {
        Some(v) => AlgebraError::Guard(v),
        None => e,
    }
}

fn compiled_tree(
    store: &ObjectStore,
    class: ClassId,
    pattern: &TreePattern,
    cache: Option<&PatternCache>,
) -> Result<Arc<CompiledTreePattern>> {
    Ok(match cache {
        Some(c) => c.tree(pattern, class, store.class(class))?,
        None => Arc::new(pattern.compile(class, store.class(class))?),
    })
}

fn compiled_list(
    store: &ObjectStore,
    class: ClassId,
    re: &Re<Sym>,
    anchor_start: bool,
    anchor_end: bool,
    cache: Option<&PatternCache>,
) -> Result<Arc<ListPattern>> {
    Ok(match cache {
        Some(c) => c.list(re, anchor_start, anchor_end, class, store.class(class))?,
        None => Arc::new(ListPattern::compile(
            re.clone(),
            anchor_start,
            anchor_end,
            class,
            store.class(class),
        )?),
    })
}

/// `Set[Tree[T]]` — a database of trees.
#[derive(Debug, Default)]
pub struct TreeSet {
    members: Vec<Tree>,
}

impl TreeSet {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from member trees.
    pub fn from_trees(members: Vec<Tree>) -> Self {
        TreeSet { members }
    }

    /// Add a member.
    pub fn insert(&mut self, t: Tree) {
        self.members.push(t);
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member trees.
    pub fn members(&self) -> &[Tree] {
        &self.members
    }

    /// `select` mapped over members: each member yields its forest;
    /// members that lose every node disappear (set-level filtering and
    /// tree-level filtering compose).
    pub fn select(&self, store: &ObjectStore, p: &Pred) -> Vec<(usize, Vec<Tree>)> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, t)| (i, tree_ops::select(store, t, p)))
            .filter(|(_, forest)| !forest.is_empty())
            .collect()
    }

    /// [`select`](TreeSet::select) under an optional execution guard.
    pub fn select_guarded(
        &self,
        store: &ObjectStore,
        p: &Pred,
        guard: Option<&ExecGuard>,
    ) -> Result<Vec<(usize, Vec<Tree>)>> {
        let mut out = Vec::new();
        for (i, t) in self.members.iter().enumerate() {
            let forest = tree_ops::select_guarded(store, t, p, guard)?;
            if !forest.is_empty() {
                out.push((i, forest));
            }
        }
        Ok(out)
    }

    /// [`select`](TreeSet::select) on up to `threads` workers. Member
    /// order (and the empty-member filter) is preserved, so the answer
    /// is identical to the serial one.
    pub fn par_select(
        &self,
        store: &ObjectStore,
        p: &Pred,
        threads: usize,
    ) -> Vec<(usize, Vec<Tree>)> {
        exec::par_map(&self.members, threads, |_, t| tree_ops::select(store, t, p))
            .into_iter()
            .enumerate()
            .filter(|(_, forest)| !forest.is_empty())
            .collect()
    }

    /// `sub_select` mapped over members; results tagged with the member
    /// index so callers can navigate back.
    pub fn sub_select(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
    ) -> Result<Vec<(usize, Tree)>> {
        self.sub_select_guarded(store, pattern, cfg, None)
    }

    /// [`sub_select`](TreeSet::sub_select) under an optional execution
    /// guard.
    pub fn sub_select_guarded(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
    ) -> Result<Vec<(usize, Tree)>> {
        let mut out = Vec::new();
        for (i, t) in self.members.iter().enumerate() {
            for m in tree_ops::sub_select_guarded(store, t, pattern, cfg, guard)? {
                out.push((i, m));
            }
        }
        Ok(out)
    }

    /// [`sub_select`](TreeSet::sub_select) on up to `threads` workers
    /// under an optional fleet guard. Stability means the output is
    /// byte-identical to the serial path for every thread count.
    pub fn par_sub_select(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
        threads: usize,
        guard: Option<&SharedGuard>,
    ) -> Result<Vec<(usize, Tree)>> {
        let per = exec::try_par_map_guarded(&self.members, threads, guard, |_, t, g| {
            tree_ops::sub_select_guarded(store, t, pattern, cfg, g)
        })
        .map_err(|e| fleet_err(guard, e))?;
        Ok(tag_flatten(per))
    }

    /// [`sub_select`](TreeSet::sub_select) from an *uncompiled* pattern:
    /// compiled exactly once for the whole bulk call (optionally via a
    /// cross-call [`PatternCache`]), never per member.
    pub fn sub_select_pattern(
        &self,
        store: &ObjectStore,
        class: ClassId,
        pattern: &TreePattern,
        cfg: &MatchConfig,
        cache: Option<&PatternCache>,
    ) -> Result<Vec<(usize, Tree)>> {
        let compiled = compiled_tree(store, class, pattern, cache)?;
        self.sub_select(store, &compiled, cfg)
    }

    /// Parallel form of [`sub_select_pattern`](TreeSet::sub_select_pattern):
    /// one compilation, shared `&`-only across the worker fleet.
    #[allow(clippy::too_many_arguments)]
    pub fn par_sub_select_pattern(
        &self,
        store: &ObjectStore,
        class: ClassId,
        pattern: &TreePattern,
        cfg: &MatchConfig,
        threads: usize,
        guard: Option<&SharedGuard>,
        cache: Option<&PatternCache>,
    ) -> Result<Vec<(usize, Tree)>> {
        let compiled = compiled_tree(store, class, pattern, cache)?;
        self.par_sub_select(store, &compiled, cfg, threads, guard)
    }

    /// `split` mapped over members.
    pub fn split(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
    ) -> Result<Vec<(usize, SplitPieces)>> {
        self.split_guarded(store, pattern, cfg, None)
    }

    /// [`split`](TreeSet::split) under an optional execution guard.
    pub fn split_guarded(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
        guard: Option<&ExecGuard>,
    ) -> Result<Vec<(usize, SplitPieces)>> {
        let mut out = Vec::new();
        for (i, t) in self.members.iter().enumerate() {
            for p in split_pieces_guarded(store, t, pattern, cfg, guard)?.pieces {
                out.push((i, p));
            }
        }
        Ok(out)
    }

    /// [`split`](TreeSet::split) on up to `threads` workers under an
    /// optional fleet guard; same answer as serial, in member order.
    pub fn par_split(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
        threads: usize,
        guard: Option<&SharedGuard>,
    ) -> Result<Vec<(usize, SplitPieces)>> {
        let per = exec::try_par_map_guarded(&self.members, threads, guard, |_, t, g| {
            Ok(split_pieces_guarded(store, t, pattern, cfg, g)?.pieces)
        })
        .map_err(|e| fleet_err(guard, e))?;
        Ok(tag_flatten(per))
    }

    /// `apply` mapped over members (isomorphic rewrite of every tree).
    pub fn apply(&self, mut f: impl FnMut(Oid) -> Oid) -> TreeSet {
        TreeSet {
            members: self
                .members
                .iter()
                .map(|t| tree_ops::apply(t, &mut f))
                .collect(),
        }
    }

    /// [`apply`](TreeSet::apply) on up to `threads` workers. Requires
    /// `Fn` (not `FnMut`): the rewrite runs concurrently.
    pub fn par_apply(&self, f: impl Fn(Oid) -> Oid + Sync, threads: usize) -> TreeSet {
        TreeSet {
            members: exec::par_map(&self.members, threads, |_, t| tree_ops::apply(t, &f)),
        }
    }
}

impl FromIterator<Tree> for TreeSet {
    fn from_iter<I: IntoIterator<Item = Tree>>(iter: I) -> Self {
        TreeSet {
            members: iter.into_iter().collect(),
        }
    }
}

/// `Set[List[T]]` — a database of lists (the §6 music database shape).
#[derive(Debug, Default)]
pub struct ListSet {
    members: Vec<List>,
}

impl ListSet {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from member lists.
    pub fn from_lists(members: Vec<List>) -> Self {
        ListSet { members }
    }

    /// Add a member.
    pub fn insert(&mut self, l: List) {
        self.members.push(l);
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member lists.
    pub fn members(&self) -> &[List] {
        &self.members
    }

    /// Find every match in every member: "find this melody anywhere in
    /// the music database".
    pub fn find_matches(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
    ) -> Vec<(usize, ListMatch)> {
        self.members
            .iter()
            .enumerate()
            .flat_map(|(i, l)| {
                list_ops::find_matches(store, l, pattern, mode)
                    .into_iter()
                    .map(move |m| (i, m))
            })
            .collect()
    }

    /// [`find_matches`](ListSet::find_matches) under an optional
    /// execution guard.
    pub fn find_matches_guarded(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
        guard: Option<&ExecGuard>,
    ) -> Result<Vec<(usize, ListMatch)>> {
        let mut out = Vec::new();
        for (i, l) in self.members.iter().enumerate() {
            for m in list_ops::find_matches_guarded(store, l, pattern, mode, guard)? {
                out.push((i, m));
            }
        }
        Ok(out)
    }

    /// [`find_matches`](ListSet::find_matches) on up to `threads`
    /// workers under an optional fleet guard; results in member order,
    /// byte-identical to serial.
    pub fn par_find_matches(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
        threads: usize,
        guard: Option<&SharedGuard>,
    ) -> Result<Vec<(usize, ListMatch)>> {
        let per = exec::try_par_map_guarded(&self.members, threads, guard, |_, l, g| {
            list_ops::find_matches_guarded(store, l, pattern, mode, g)
        })
        .map_err(|e| fleet_err(guard, e))?;
        Ok(tag_flatten(per))
    }

    /// [`find_matches`](ListSet::find_matches) from an *uncompiled*
    /// pattern: the NFA is built exactly once per bulk call (optionally
    /// via a cross-call [`PatternCache`]), never per member.
    #[allow(clippy::too_many_arguments)]
    pub fn find_matches_pattern(
        &self,
        store: &ObjectStore,
        class: ClassId,
        re: &Re<Sym>,
        anchor_start: bool,
        anchor_end: bool,
        mode: MatchMode,
        cache: Option<&PatternCache>,
    ) -> Result<Vec<(usize, ListMatch)>> {
        let compiled = compiled_list(store, class, re, anchor_start, anchor_end, cache)?;
        Ok(self.find_matches(store, &compiled, mode))
    }

    /// `sub_select` mapped over members.
    pub fn sub_select(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
    ) -> Vec<(usize, List)> {
        self.members
            .iter()
            .enumerate()
            .flat_map(|(i, l)| {
                list_ops::sub_select(store, l, pattern, mode)
                    .into_iter()
                    .map(move |s| (i, s))
            })
            .collect()
    }

    /// [`sub_select`](ListSet::sub_select) under an optional execution
    /// guard.
    pub fn sub_select_guarded(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
        guard: Option<&ExecGuard>,
    ) -> Result<Vec<(usize, List)>> {
        let mut out = Vec::new();
        for (i, l) in self.members.iter().enumerate() {
            for s in list_ops::sub_select_guarded(store, l, pattern, mode, guard)? {
                out.push((i, s));
            }
        }
        Ok(out)
    }

    /// [`sub_select`](ListSet::sub_select) on up to `threads` workers
    /// under an optional fleet guard; results in member order,
    /// byte-identical to serial.
    pub fn par_sub_select(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
        threads: usize,
        guard: Option<&SharedGuard>,
    ) -> Result<Vec<(usize, List)>> {
        let per = exec::try_par_map_guarded(&self.members, threads, guard, |_, l, g| {
            list_ops::sub_select_guarded(store, l, pattern, mode, g)
        })
        .map_err(|e| fleet_err(guard, e))?;
        Ok(tag_flatten(per))
    }

    /// [`sub_select`](ListSet::sub_select) from an *uncompiled* pattern,
    /// compiled exactly once per bulk call.
    #[allow(clippy::too_many_arguments)]
    pub fn sub_select_pattern(
        &self,
        store: &ObjectStore,
        class: ClassId,
        re: &Re<Sym>,
        anchor_start: bool,
        anchor_end: bool,
        mode: MatchMode,
        cache: Option<&PatternCache>,
    ) -> Result<Vec<(usize, List)>> {
        let compiled = compiled_list(store, class, re, anchor_start, anchor_end, cache)?;
        Ok(self.sub_select(store, &compiled, mode))
    }

    /// Members containing at least one match — set-level `select` with a
    /// list-pattern predicate, the cross-bulk-type composition §1 asks
    /// for.
    pub fn select_members(&self, store: &ObjectStore, pattern: &ListPattern) -> Vec<usize> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                !list_ops::find_matches(store, l, pattern, MatchMode::Nonoverlapping).is_empty()
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// [`select_members`](ListSet::select_members) on up to `threads`
    /// workers; same members, same order.
    pub fn par_select_members(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        threads: usize,
    ) -> Vec<usize> {
        exec::par_map(&self.members, threads, |_, l| {
            !list_ops::find_matches(store, l, pattern, MatchMode::Nonoverlapping).is_empty()
        })
        .into_iter()
        .enumerate()
        .filter_map(|(i, hit)| hit.then_some(i))
        .collect()
    }
}

impl FromIterator<List> for ListSet {
    fn from_iter<I: IntoIterator<Item = List>>(iter: I) -> Self {
        ListSet {
            members: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::testutil::Fx as LFx;
    use crate::tree::testutil::Fx as TFx;
    use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern};
    use aqua_pattern::PredExpr;

    #[test]
    fn tree_set_sub_select_tags_members() {
        let mut fx = TFx::new();
        let set = TreeSet::from_trees(vec![fx.tree("r(u)"), fx.tree("r(x)"), fx.tree("u(u)")]);
        let cp = parse_tree_pattern("u", &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let hits = set
            .sub_select(&fx.store, &cp, &MatchConfig::default())
            .unwrap();
        let members: Vec<usize> = hits.iter().map(|(i, _)| *i).collect();
        assert_eq!(members, vec![0, 2, 2]);
    }

    #[test]
    fn tree_set_select_drops_empty_members() {
        let mut fx = TFx::new();
        let set = TreeSet::from_trees(vec![fx.tree("u(x)"), fx.tree("x")]);
        let pred = PredExpr::eq("label", "u")
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let kept = set.select(&fx.store, &pred);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, 0);
    }

    #[test]
    fn tree_set_split_and_apply() {
        let mut fx = TFx::new();
        let set: TreeSet = vec![fx.tree("r(u)"), fx.tree("u")].into_iter().collect();
        let cp = parse_tree_pattern("u", &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let pieces = set.split(&fx.store, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(pieces.len(), 2);
        for (i, p) in &pieces {
            assert!(p.reassemble().structural_eq(&set.members()[*i]));
        }
        let mapped = set.apply(|o| o);
        assert_eq!(mapped.len(), 2);
    }

    #[test]
    fn par_matches_serial_on_every_operator() {
        let mut fx = TFx::new();
        let set = TreeSet::from_trees(vec![
            fx.tree("r(u x)"),
            fx.tree("r(x)"),
            fx.tree("u(u u)"),
            fx.tree("x(u(x))"),
        ]);
        let cp = parse_tree_pattern("u", &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let cfg = MatchConfig::default();
        let serial = set.sub_select(&fx.store, &cp, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = set
                .par_sub_select(&fx.store, &cp, &cfg, threads, None)
                .unwrap();
            assert_eq!(par.len(), serial.len());
            for ((i, a), (j, b)) in par.iter().zip(&serial) {
                assert_eq!(i, j);
                assert!(a.structural_eq(b));
            }
        }
        let s_split = set.split(&fx.store, &cp, &cfg).unwrap();
        let p_split = set.par_split(&fx.store, &cp, &cfg, 3, None).unwrap();
        assert_eq!(s_split.len(), p_split.len());
        for ((i, a), (j, b)) in s_split.iter().zip(&p_split) {
            assert_eq!(i, j);
            assert!(a.reassemble().structural_eq(&b.reassemble()));
        }
        let pred = PredExpr::eq("label", "u")
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let s_sel = set.select(&fx.store, &pred);
        let p_sel = set.par_select(&fx.store, &pred, 4);
        assert_eq!(s_sel.len(), p_sel.len());
        for ((i, fa), (j, fb)) in s_sel.iter().zip(&p_sel) {
            assert_eq!(i, j);
            assert_eq!(fa.len(), fb.len());
        }
        let a = set.apply(|o| o);
        let b = set.par_apply(|o| o, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.members().iter().zip(b.members()) {
            assert!(x.structural_eq(y));
        }
    }

    #[test]
    fn pattern_entry_points_compile_once_via_cache() {
        let mut fx = TFx::new();
        let set = TreeSet::from_trees(vec![fx.tree("r(u)"), fx.tree("u(u)")]);
        let pattern = parse_tree_pattern("u", &fx.env()).unwrap();
        let cache = aqua_pattern::PatternCache::new();
        let cfg = MatchConfig::default();
        let a = set
            .sub_select_pattern(&fx.store, fx.class, &pattern, &cfg, Some(&cache))
            .unwrap();
        let b = set
            .par_sub_select_pattern(&fx.store, fx.class, &pattern, &cfg, 2, None, Some(&cache))
            .unwrap();
        assert_eq!(cache.misses(), 1, "one compile for both bulk calls");
        assert_eq!(a.len(), b.len());
        for ((i, x), (j, y)) in a.iter().zip(&b) {
            assert_eq!(i, j);
            assert!(x.structural_eq(y));
        }
    }

    #[test]
    fn par_fleet_budget_stops_bulk_call() {
        use aqua_guard::{Budget, GuardError, Resource};
        let mut fx = TFx::new();
        // Enough members/nodes that a 10-step budget cannot finish.
        let trees: Vec<_> = (0..6).map(|_| fx.tree("r(u(x u) x(u) u)")).collect();
        let set = TreeSet::from_trees(trees);
        let cp = parse_tree_pattern("u", &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let shared = SharedGuard::new(Budget::unlimited().with_steps(10));
        let err = set
            .par_sub_select(&fx.store, &cp, &MatchConfig::default(), 3, Some(&shared))
            .unwrap_err();
        match err.as_guard() {
            Some(GuardError::BudgetExceeded {
                resource: Resource::Steps,
                limit: 10,
                progress,
            }) => assert!(progress.steps > 10),
            other => panic!("expected fleet budget verdict, got {other:?}"),
        }
    }

    #[test]
    fn music_database_queries() {
        let mut fx = LFx::new();
        let db: ListSet = vec![fx.song("GAXYF"), fx.song("BBBB"), fx.song("ACDFAZZF")]
            .into_iter()
            .collect();
        let (re, s, e) = parse_list_pattern("[A ? ? F]", &fx.env()).unwrap();
        let p = ListPattern::compile(re, s, e, fx.class, fx.store.class(fx.class)).unwrap();

        // Matches across the whole database, tagged by song.
        let all = db.find_matches(&fx.store, &p, MatchMode::All);
        let songs: Vec<usize> = all.iter().map(|(i, _)| *i).collect();
        assert_eq!(songs, vec![0, 2, 2]);

        // Set-level select: which songs contain the melody at all?
        assert_eq!(db.select_members(&fx.store, &p), vec![0, 2]);

        // Phrase extraction across the database.
        let phrases = db.sub_select(&fx.store, &p, MatchMode::All);
        assert!(phrases.iter().all(|(_, ph)| ph.len() == 4));
    }
}
