//! Compositions of bulk types (paper §1).
//!
//! "Moreover, queries on arbitrary compositions of these bulk types
//! (e.g., `set[tree]`) could be handled more uniformly." The §6 music
//! database is itself such a composition — *a set of songs, each a
//! list of notes* — and a document store is a set of trees. This module
//! provides the composed collections with the ordered operators mapped
//! uniformly over their members:
//!
//! * [`TreeSet`] — `Set[Tree[T]]`: a collection of trees sharing one
//!   store, with `select` / `apply` / `sub_select` / `split` mapped over
//!   members (results tagged with the member index).
//! * [`ListSet`] — `Set[List[T]]`: same for lists (the music database).

use aqua_object::{ObjectStore, Oid};
use aqua_pattern::alphabet::Pred;
use aqua_pattern::list::{ListMatch, ListPattern, MatchMode};
use aqua_pattern::tree_ast::CompiledTreePattern;
use aqua_pattern::tree_match::MatchConfig;

use crate::error::Result;
use crate::list::{ops as list_ops, List};
use crate::tree::ops as tree_ops;
use crate::tree::split::{split_pieces, SplitPieces};
use crate::Tree;

/// `Set[Tree[T]]` — a database of trees.
#[derive(Debug, Default)]
pub struct TreeSet {
    members: Vec<Tree>,
}

impl TreeSet {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from member trees.
    pub fn from_trees(members: Vec<Tree>) -> Self {
        TreeSet { members }
    }

    /// Add a member.
    pub fn insert(&mut self, t: Tree) {
        self.members.push(t);
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member trees.
    pub fn members(&self) -> &[Tree] {
        &self.members
    }

    /// `select` mapped over members: each member yields its forest;
    /// members that lose every node disappear (set-level filtering and
    /// tree-level filtering compose).
    pub fn select(&self, store: &ObjectStore, p: &Pred) -> Vec<(usize, Vec<Tree>)> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, t)| (i, tree_ops::select(store, t, p)))
            .filter(|(_, forest)| !forest.is_empty())
            .collect()
    }

    /// `sub_select` mapped over members; results tagged with the member
    /// index so callers can navigate back.
    pub fn sub_select(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
    ) -> Result<Vec<(usize, Tree)>> {
        let mut out = Vec::new();
        for (i, t) in self.members.iter().enumerate() {
            for m in tree_ops::sub_select(store, t, pattern, cfg)? {
                out.push((i, m));
            }
        }
        Ok(out)
    }

    /// `split` mapped over members.
    pub fn split(
        &self,
        store: &ObjectStore,
        pattern: &CompiledTreePattern,
        cfg: &MatchConfig,
    ) -> Result<Vec<(usize, SplitPieces)>> {
        let mut out = Vec::new();
        for (i, t) in self.members.iter().enumerate() {
            for p in split_pieces(store, t, pattern, cfg)? {
                out.push((i, p));
            }
        }
        Ok(out)
    }

    /// `apply` mapped over members (isomorphic rewrite of every tree).
    pub fn apply(&self, mut f: impl FnMut(Oid) -> Oid) -> TreeSet {
        TreeSet {
            members: self
                .members
                .iter()
                .map(|t| tree_ops::apply(t, &mut f))
                .collect(),
        }
    }
}

impl FromIterator<Tree> for TreeSet {
    fn from_iter<I: IntoIterator<Item = Tree>>(iter: I) -> Self {
        TreeSet {
            members: iter.into_iter().collect(),
        }
    }
}

/// `Set[List[T]]` — a database of lists (the §6 music database shape).
#[derive(Debug, Default)]
pub struct ListSet {
    members: Vec<List>,
}

impl ListSet {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from member lists.
    pub fn from_lists(members: Vec<List>) -> Self {
        ListSet { members }
    }

    /// Add a member.
    pub fn insert(&mut self, l: List) {
        self.members.push(l);
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member lists.
    pub fn members(&self) -> &[List] {
        &self.members
    }

    /// Find every match in every member: "find this melody anywhere in
    /// the music database".
    pub fn find_matches(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
    ) -> Vec<(usize, ListMatch)> {
        self.members
            .iter()
            .enumerate()
            .flat_map(|(i, l)| {
                list_ops::find_matches(store, l, pattern, mode)
                    .into_iter()
                    .map(move |m| (i, m))
            })
            .collect()
    }

    /// `sub_select` mapped over members.
    pub fn sub_select(
        &self,
        store: &ObjectStore,
        pattern: &ListPattern,
        mode: MatchMode,
    ) -> Vec<(usize, List)> {
        self.members
            .iter()
            .enumerate()
            .flat_map(|(i, l)| {
                list_ops::sub_select(store, l, pattern, mode)
                    .into_iter()
                    .map(move |s| (i, s))
            })
            .collect()
    }

    /// Members containing at least one match — set-level `select` with a
    /// list-pattern predicate, the cross-bulk-type composition §1 asks
    /// for.
    pub fn select_members(&self, store: &ObjectStore, pattern: &ListPattern) -> Vec<usize> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                !list_ops::find_matches(store, l, pattern, MatchMode::Nonoverlapping).is_empty()
            })
            .map(|(i, _)| i)
            .collect()
    }
}

impl FromIterator<List> for ListSet {
    fn from_iter<I: IntoIterator<Item = List>>(iter: I) -> Self {
        ListSet {
            members: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::testutil::Fx as LFx;
    use crate::tree::testutil::Fx as TFx;
    use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern};
    use aqua_pattern::PredExpr;

    #[test]
    fn tree_set_sub_select_tags_members() {
        let mut fx = TFx::new();
        let set = TreeSet::from_trees(vec![fx.tree("r(u)"), fx.tree("r(x)"), fx.tree("u(u)")]);
        let cp = parse_tree_pattern("u", &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let hits = set
            .sub_select(&fx.store, &cp, &MatchConfig::default())
            .unwrap();
        let members: Vec<usize> = hits.iter().map(|(i, _)| *i).collect();
        assert_eq!(members, vec![0, 2, 2]);
    }

    #[test]
    fn tree_set_select_drops_empty_members() {
        let mut fx = TFx::new();
        let set = TreeSet::from_trees(vec![fx.tree("u(x)"), fx.tree("x")]);
        let pred = PredExpr::eq("label", "u")
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let kept = set.select(&fx.store, &pred);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, 0);
    }

    #[test]
    fn tree_set_split_and_apply() {
        let mut fx = TFx::new();
        let set: TreeSet = vec![fx.tree("r(u)"), fx.tree("u")].into_iter().collect();
        let cp = parse_tree_pattern("u", &fx.env())
            .unwrap()
            .compile(fx.class, fx.store.class(fx.class))
            .unwrap();
        let pieces = set.split(&fx.store, &cp, &MatchConfig::default()).unwrap();
        assert_eq!(pieces.len(), 2);
        for (i, p) in &pieces {
            assert!(p.reassemble().structural_eq(&set.members()[*i]));
        }
        let mapped = set.apply(|o| o);
        assert_eq!(mapped.len(), 2);
    }

    #[test]
    fn music_database_queries() {
        let mut fx = LFx::new();
        let db: ListSet = vec![fx.song("GAXYF"), fx.song("BBBB"), fx.song("ACDFAZZF")]
            .into_iter()
            .collect();
        let (re, s, e) = parse_list_pattern("[A ? ? F]", &fx.env()).unwrap();
        let p = ListPattern::compile(re, s, e, fx.class, fx.store.class(fx.class)).unwrap();

        // Matches across the whole database, tagged by song.
        let all = db.find_matches(&fx.store, &p, MatchMode::All);
        let songs: Vec<usize> = all.iter().map(|(i, _)| *i).collect();
        assert_eq!(songs, vec![0, 2, 2]);

        // Set-level select: which songs contain the melody at all?
        assert_eq!(db.select_members(&fx.store, &p), vec![0, 2]);

        // Phrase extraction across the database.
        let phrases = db.sub_select(&fx.store, &p, MatchMode::All);
        assert!(phrases.iter().all(|(_, ph)| ph.len() == 4));
    }
}
