//! AQUA set and multiset operators (paper §2, from \[19\]/\[32\]).
//!
//! The list/tree algebra generalizes AQUA's unordered operators: a set
//! is a tree/list with an empty edge set, and `select`/`apply` on such
//! degenerate trees behave exactly like their set counterparts (checked
//! in the integration suite). Equality is a *parameter* ([`EqKind`]) of
//! the operators that compare elements, per §2.

use aqua_object::{EqKind, ObjectStore, Oid};
use aqua_pattern::alphabet::Pred;

/// An AQUA set: unique elements under a chosen equality. Stored in
/// insertion order (AQUA sets are unordered; the order is an artifact
/// and is not observable through the algebra).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AquaSet {
    items: Vec<Oid>,
}

impl AquaSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from elements, deduplicating under `eq`.
    pub fn from_oids(store: &ObjectStore, eq: EqKind, oids: impl IntoIterator<Item = Oid>) -> Self {
        let mut s = AquaSet::new();
        for o in oids {
            s.insert(store, eq, o);
        }
        s
    }

    /// Insert an element; no-op when an `eq`-equal element is present.
    /// Returns whether the element was added.
    pub fn insert(&mut self, store: &ObjectStore, eq: EqKind, oid: Oid) -> bool {
        if self.contains(store, eq, oid) {
            return false;
        }
        self.items.push(oid);
        true
    }

    /// Membership under `eq`.
    pub fn contains(&self, store: &ObjectStore, eq: EqKind, oid: Oid) -> bool {
        self.items.iter().any(|&x| eq.eq(store, x, oid))
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The elements (iteration order is unspecified by the algebra).
    pub fn items(&self) -> &[Oid] {
        &self.items
    }

    /// `select(p)` — elements satisfying the alphabet-predicate.
    pub fn select(&self, store: &ObjectStore, p: &Pred) -> AquaSet {
        AquaSet {
            items: self
                .items
                .iter()
                .copied()
                .filter(|&o| p.eval(store, o))
                .collect(),
        }
    }

    /// `apply(f)` — image of the set under `f`, deduplicated under `eq`.
    pub fn apply(&self, store: &ObjectStore, eq: EqKind, mut f: impl FnMut(Oid) -> Oid) -> AquaSet {
        AquaSet::from_oids(store, eq, self.items.iter().map(|&o| f(o)))
    }

    /// `union(eq)` — equality is a parameter (paper §2).
    pub fn union(&self, store: &ObjectStore, eq: EqKind, other: &AquaSet) -> AquaSet {
        let mut out = self.clone();
        for &o in &other.items {
            out.insert(store, eq, o);
        }
        out
    }

    /// `intersect(eq)`.
    pub fn intersect(&self, store: &ObjectStore, eq: EqKind, other: &AquaSet) -> AquaSet {
        AquaSet {
            items: self
                .items
                .iter()
                .copied()
                .filter(|&o| other.contains(store, eq, o))
                .collect(),
        }
    }

    /// `difference(eq)`.
    pub fn difference(&self, store: &ObjectStore, eq: EqKind, other: &AquaSet) -> AquaSet {
        AquaSet {
            items: self
                .items
                .iter()
                .copied()
                .filter(|&o| !other.contains(store, eq, o))
                .collect(),
        }
    }

    /// `fold(z, f)` — structural fold; `split` is its order-preserving,
    /// pattern-based analogue for trees (paper §4, "Why Split?").
    pub fn fold<A>(&self, init: A, f: impl FnMut(A, Oid) -> A) -> A {
        self.items.iter().copied().fold(init, f)
    }
}

impl FromIterator<Oid> for AquaSet {
    /// Collect under identity equality.
    fn from_iter<I: IntoIterator<Item = Oid>>(iter: I) -> Self {
        let mut items: Vec<Oid> = Vec::new();
        for o in iter {
            if !items.contains(&o) {
                items.push(o);
            }
        }
        AquaSet { items }
    }
}

/// An AQUA multiset (bag): elements with multiplicities under identity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AquaBag {
    items: Vec<Oid>,
}

impl AquaBag {
    /// The empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from elements (duplicates kept).
    pub fn from_oids(oids: impl IntoIterator<Item = Oid>) -> Self {
        AquaBag {
            items: oids.into_iter().collect(),
        }
    }

    /// Insert an element (always grows the bag).
    pub fn insert(&mut self, oid: Oid) {
        self.items.push(oid);
    }

    /// Total number of elements, counting multiplicity.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Multiplicity of `oid` under `eq`.
    pub fn count(&self, store: &ObjectStore, eq: EqKind, oid: Oid) -> usize {
        self.items.iter().filter(|&&x| eq.eq(store, x, oid)).count()
    }

    /// The elements.
    pub fn items(&self) -> &[Oid] {
        &self.items
    }

    /// `select(p)`.
    pub fn select(&self, store: &ObjectStore, p: &Pred) -> AquaBag {
        AquaBag {
            items: self
                .items
                .iter()
                .copied()
                .filter(|&o| p.eval(store, o))
                .collect(),
        }
    }

    /// `apply(f)` — multiplicities preserved.
    pub fn apply(&self, mut f: impl FnMut(Oid) -> Oid) -> AquaBag {
        AquaBag {
            items: self.items.iter().map(|&o| f(o)).collect(),
        }
    }

    /// Additive union (bag union sums multiplicities).
    pub fn union(&self, other: &AquaBag) -> AquaBag {
        let mut items = self.items.clone();
        items.extend_from_slice(&other.items);
        AquaBag { items }
    }

    /// Collapse to a set under `eq`.
    pub fn to_set(&self, store: &ObjectStore, eq: EqKind) -> AquaSet {
        AquaSet::from_oids(store, eq, self.items.iter().copied())
    }

    /// `fold(z, f)`.
    pub fn fold<A>(&self, init: A, f: impl FnMut(A, Oid) -> A) -> A {
        self.items.iter().copied().fold(init, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, Value};
    use aqua_pattern::PredExpr;

    fn setup() -> (ObjectStore, ClassId, Vec<Oid>) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(ClassDef::new("P", vec![AttrDef::stored("v", AttrType::Int)]).unwrap())
            .unwrap();
        let oids = (0..4)
            .map(|i| s.insert_named("P", &[("v", Value::Int(i % 2))]).unwrap())
            .collect();
        (s, c, oids)
    }

    #[test]
    fn identity_set_semantics() {
        let (s, _, o) = setup();
        let set = AquaSet::from_oids(&s, EqKind::Identity, [o[0], o[0], o[1]]);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&s, EqKind::Identity, o[0]));
        assert!(!set.contains(&s, EqKind::Identity, o[2]));
    }

    #[test]
    fn equality_parameter_changes_results() {
        // o[0] and o[2] have equal values but different identities: under
        // Shallow equality they collapse, under Identity they do not.
        let (s, _, o) = setup();
        let id = AquaSet::from_oids(&s, EqKind::Identity, [o[0], o[2]]);
        assert_eq!(id.len(), 2);
        let shallow = AquaSet::from_oids(&s, EqKind::Shallow, [o[0], o[2]]);
        assert_eq!(shallow.len(), 1);
    }

    #[test]
    fn union_intersect_difference() {
        let (s, _, o) = setup();
        let a = AquaSet::from_oids(&s, EqKind::Identity, [o[0], o[1]]);
        let b = AquaSet::from_oids(&s, EqKind::Identity, [o[1], o[2]]);
        assert_eq!(a.union(&s, EqKind::Identity, &b).len(), 3);
        assert_eq!(a.intersect(&s, EqKind::Identity, &b).items(), &[o[1]]);
        assert_eq!(a.difference(&s, EqKind::Identity, &b).items(), &[o[0]]);
    }

    #[test]
    fn select_and_fold() {
        let (s, c, o) = setup();
        let set: AquaSet = o.iter().copied().collect();
        let p = PredExpr::eq("v", 1).compile(c, s.class(c)).unwrap();
        let sel = set.select(&s, &p);
        assert_eq!(sel.len(), 2);
        let n = set.fold(0usize, |acc, _| acc + 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn bag_multiplicities() {
        let (s, _, o) = setup();
        let bag = AquaBag::from_oids([o[0], o[0], o[1]]);
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.count(&s, EqKind::Identity, o[0]), 2);
        // Shallow equality sees o[2] as another copy of o[0]'s value.
        assert_eq!(bag.count(&s, EqKind::Shallow, o[2]), 2);
        let set = bag.to_set(&s, EqKind::Identity);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn bag_union_sums() {
        let (_, _, o) = setup();
        let a = AquaBag::from_oids([o[0]]);
        let b = AquaBag::from_oids([o[0], o[1]]);
        assert_eq!(a.union(&b).len(), 3);
    }

    #[test]
    fn apply_dedups_under_eq() {
        let (mut s, _, o) = setup();
        // Map everything to one target object: set collapses to size 1.
        let target = s.insert_named("P", &[("v", Value::Int(9))]).unwrap();
        let set: AquaSet = o.iter().copied().collect();
        let mapped = set.apply(&s, EqKind::Identity, |_| target);
        assert_eq!(mapped.len(), 1);
        let bag = AquaBag::from_oids(o.clone()).apply(|_| target);
        assert_eq!(bag.len(), 4);
    }
}
