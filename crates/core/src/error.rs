//! Error type for the algebra layer.

use std::fmt;

use aqua_guard::GuardError;
use aqua_object::ObjectError;
use aqua_pattern::PatternError;

/// Result alias for algebra operations.
pub type Result<T> = std::result::Result<T, AlgebraError>;

/// Errors raised by tree/list construction and the query operators.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// Propagated pattern-layer error.
    Pattern(PatternError),
    /// Propagated object-layer error.
    Object(ObjectError),
    /// A builder produced a malformed tree (cycle, reused node, dangling
    /// child reference).
    Malformed { msg: String },
    /// Execution was stopped by an execution guard (budget exhausted,
    /// deadline passed, or cancellation requested).
    Guard(GuardError),
}

impl AlgebraError {
    /// The guard error inside, if this is a guard stop.
    pub fn as_guard(&self) -> Option<&GuardError> {
        match self {
            AlgebraError::Guard(e) => Some(e),
            AlgebraError::Pattern(PatternError::Guard(e)) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Pattern(e) => write!(f, "{e}"),
            AlgebraError::Object(e) => write!(f, "{e}"),
            AlgebraError::Malformed { msg } => write!(f, "malformed tree: {msg}"),
            AlgebraError::Guard(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Pattern(e) => Some(e),
            AlgebraError::Object(e) => Some(e),
            AlgebraError::Malformed { .. } => None,
            AlgebraError::Guard(e) => Some(e),
        }
    }
}

impl From<GuardError> for AlgebraError {
    fn from(e: GuardError) -> Self {
        AlgebraError::Guard(e)
    }
}

impl From<PatternError> for AlgebraError {
    fn from(e: PatternError) -> Self {
        AlgebraError::Pattern(e)
    }
}

impl From<ObjectError> for AlgebraError {
    fn from(e: ObjectError) -> Self {
        AlgebraError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AlgebraError = PatternError::UnknownPredName { name: "x".into() }.into();
        assert!(e.to_string().contains("x"));
        let e: AlgebraError = ObjectError::NoSuchClass { class: "C".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = AlgebraError::Malformed {
            msg: "cycle".into(),
        };
        assert!(e.to_string().contains("cycle"));
    }
}
