//! The service error surface: shed submissions and classified failures.

use std::fmt;
use std::time::Duration;

use aqua_guard::ErrorClass;
use aqua_object::ObjectError;
use aqua_optimizer::OptError;

/// Result alias for service operations.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// A terminal verdict the service hands back instead of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control shed the submission: the queue was full (or the
    /// deadline expired while queued). The caller should back off for at
    /// least `retry_after_hint` before resubmitting.
    Rejected {
        /// Submissions queued at the moment of rejection.
        queue_depth: usize,
        /// Suggested minimum back-off before resubmitting.
        retry_after_hint: Duration,
    },
    /// The query ran (possibly several times) and failed.
    Failed {
        /// The terminal failure's class — [`ErrorClass::Transient`] here
        /// means the retry budget ran out before the fault cleared.
        class: ErrorClass,
        /// Execution attempts launched (≥ 1).
        attempts: usize,
        /// Guard steps spent across every attempt.
        steps: u64,
        /// Rendered terminal error.
        message: String,
    },
    /// Inline verification refused the answer: a split reassembly
    /// certificate failed the independent checker (or could not be
    /// emitted for a malformed decomposition). Never retried — the
    /// served bytes cannot be trusted — and always fed to the breaker
    /// as a backend fault.
    Integrity {
        /// The extent whose certificate failed.
        extent: String,
        /// What the checker reported.
        detail: String,
    },
}

impl ServiceError {
    /// The failure class ([`ErrorClass::Resource`] for shed submissions:
    /// the scarce resource was a queue slot).
    pub fn class(&self) -> ErrorClass {
        match self {
            ServiceError::Rejected { .. } => ErrorClass::Resource,
            ServiceError::Failed { class, .. } => *class,
            ServiceError::Integrity { .. } => ErrorClass::Permanent,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Rejected {
                queue_depth,
                retry_after_hint,
            } => write!(
                f,
                "submission shed: queue depth {queue_depth}, retry after {retry_after_hint:?}"
            ),
            ServiceError::Failed {
                class,
                attempts,
                steps,
                message,
            } => write!(
                f,
                "query failed ({class}) after {attempts} attempt{}, {steps} steps: {message}",
                if *attempts == 1 { "" } else { "s" }
            ),
            ServiceError::Integrity { extent, detail } => {
                write!(f, "integrity violation in {extent}: {detail}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Classify an execution error for the retry policy. Guard verdicts keep
/// their own class (budget/deadline → `Resource`, cancellation →
/// `Permanent`); injected store faults are `Transient` (the §4 probes
/// are idempotent, so re-running one is always safe); everything else —
/// compilation errors, missing indexes, malformed trees — is `Permanent`
/// and retrying cannot help.
pub fn classify(err: &OptError) -> ErrorClass {
    if let Some(g) = err.as_guard() {
        return g.class();
    }
    match err {
        OptError::Object(ObjectError::Injected { .. }) => ErrorClass::Transient,
        OptError::Algebra(aqua_algebra::AlgebraError::Object(ObjectError::Injected { .. })) => {
            ErrorClass::Transient
        }
        _ => ErrorClass::Permanent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_guard::{Budget, ExecGuard};

    #[test]
    fn classification_covers_the_taxonomy() {
        let g = ExecGuard::new(Budget::unlimited().with_steps(0));
        let resource = OptError::Guard(g.step().unwrap_err());
        assert_eq!(classify(&resource), ErrorClass::Resource);
        let transient = OptError::Object(ObjectError::Injected {
            point: "store.page".into(),
            msg: "io".into(),
        });
        assert_eq!(classify(&transient), ErrorClass::Transient);
        let permanent = OptError::MissingIndex { attr: "d".into() };
        assert_eq!(classify(&permanent), ErrorClass::Permanent);
    }

    #[test]
    fn display_carries_the_facts() {
        let e = ServiceError::Rejected {
            queue_depth: 9,
            retry_after_hint: Duration::from_millis(5),
        };
        assert_eq!(e.class(), ErrorClass::Resource);
        let s = e.to_string();
        assert!(s.contains("depth 9"));
        assert!(
            s.contains("5ms"),
            "shed callers must see the computed backoff: {s}"
        );
        let e = ServiceError::Failed {
            class: ErrorClass::Transient,
            attempts: 3,
            steps: 40,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("3 attempts") && s.contains("40 steps") && s.contains("boom"));
    }
}
