//! # aqua-service — the resilient query front end
//!
//! Every other crate in this workspace is a bare library call: a caller
//! under load gets no queueing, no deadline, no retry, no blast-radius
//! control. This crate composes the guard substrate (`aqua-guard`), the
//! pool (`aqua-exec`), and the metrics layer (`aqua-obs`) into the
//! serving-layer patterns a production query service needs:
//!
//! * **Admission control** ([`admission`]) — a bounded submission queue
//!   (depth *and* bytes) with per-tenant concurrency caps; overload is
//!   shed in O(1) with a typed [`ServiceError::Rejected`] carrying a
//!   back-off hint.
//! * **Deadline propagation** — one absolute
//!   [`Deadline`](aqua_guard::Deadline) inside the request's
//!   [`Budget`](aqua_guard::Budget) bounds queueing, every retry
//!   attempt, and every backoff sleep; each engine stage observes it at
//!   its existing guard checkpoints.
//! * **Classified retries** ([`retry`]) — failures carry an
//!   [`ErrorClass`](aqua_guard::ErrorClass); only `Transient` ones
//!   (injected store faults — the paper's §4 probes are idempotent, so
//!   re-running is always safe) are retried, with seeded
//!   decorrelated-jitter backoff and the *remaining* step budget, never
//!   a fresh one.
//! * **Circuit breaking** ([`breaker`]) — per-plan-class rolling failure
//!   windows trip open and serve degraded (partial, truncation-flagged)
//!   responses until a half-open probe on a submission-count clock
//!   proves the fault cleared.
//! * **Inline answer verification** — a per-request (or per-tenant)
//!   `verify` flag makes [`QueryService::tree_split`] emit a reassembly
//!   certificate per decomposition and revalidate it with the
//!   independent `aqua-check` crate before releasing the response; any
//!   mismatch is a typed [`ServiceError::Integrity`] that is never
//!   retried and always counts against the backend's breaker.
//!
//! Everything is deterministic under test: no wall-clock in any decision
//! except the deadline itself, no global RNG, and the chaos harness in
//! `tests-int` replays seeded fault storms exactly.

pub mod admission;
pub mod breaker;
pub mod error;
pub mod retry;
mod service;

pub use admission::{Admission, AdmissionConfig, Permit};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Dispatch, Transition};
pub use error::{classify, Result, ServiceError};
pub use retry::{Backoff, RetryPolicy};
pub use service::{
    PlanClass, QueryService, Request, Response, ResponseMeta, ServiceConfig, SplitServe, Truncation,
};

/// Failpoint fired before each execution attempt dispatches — models a
/// transient fault at the service/store boundary (nothing spent yet).
pub const SERVICE_DISPATCH_PROBE: &str = "service.dispatch";

/// Failpoint fired after plan execution, before the response is
/// assembled — models a transient fault that strikes *after* real work
/// was done, so a retry must resume from the remaining budget.
pub const SERVICE_COMMIT_PROBE: &str = "service.commit";
